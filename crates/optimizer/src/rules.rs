//! The rewrite rules. Each rule is a pure AST transform keyed to the
//! layer-4 performance lint it discharges; the engine in `lib.rs` prices
//! and safety-gates every application, so rules here only have to be
//! *plausibly* sound — a rule whose instance diverges is refused by the
//! gate, never executed.

use crate::support::*;
use aldsp_catalog::stats::CatalogStats;
use aldsp_core::ir::{PreparedBody, Rsn, TExprKind};
use aldsp_core::{OptimizeLevel, PreparedQuery};
use aldsp_xquery::ast::{Clause, Expr, Program};
use std::collections::BTreeSet;

/// Everything a rule may consult.
pub struct RuleContext<'a> {
    /// The stage-2 IR the program was generated from.
    pub prepared: &'a PreparedQuery,
    /// Statistics for cardinality and uniqueness decisions.
    pub stats: &'a CatalogStats,
    /// Requested aggressiveness.
    pub level: OptimizeLevel,
}

/// One rewrite rule.
pub struct Rule {
    /// Stable rule name, shown in traces.
    pub name: &'static str,
    /// The layer-4 lint the rule discharges.
    pub lint: &'static str,
    /// The transform: mutates the program in place and returns a
    /// description of what changed, or `None` when nothing applied.
    pub apply: fn(&mut Program, &RuleContext) -> Option<String>,
}

/// The rule pipeline, in application order: structural reorders first
/// (they change which clause is innermost), then the redundancy
/// eliminations, then pushdown/hoisting over the settled clause order,
/// then the `let` cleanups over whatever the other rules left behind.
pub const PIPELINE: &[Rule] = &[
    Rule {
        name: "join_reorder",
        lint: "P001/P007",
        apply: join_reorder,
    },
    Rule {
        name: "distinct_elimination",
        lint: "P003",
        apply: distinct_elimination,
    },
    Rule {
        name: "orderby_prune",
        lint: "P004",
        apply: orderby_prune,
    },
    Rule {
        name: "predicate_pushdown",
        lint: "P002",
        apply: predicate_pushdown,
    },
    Rule {
        name: "invariant_hoist",
        lint: "P008",
        apply: invariant_hoist,
    },
    Rule {
        name: "let_inline",
        lint: "A103",
        apply: let_inline,
    },
    Rule {
        name: "dead_let_elimination",
        lint: "A103",
        apply: dead_let_elimination,
    },
];

/// P001/P007: reorders a leading run of *independent* `for` clauses by
/// ascending estimated cardinality, so the cheapest stream drives the
/// nested loop and larger sources are re-evaluated fewer times. Sound
/// only up to row order, so it requires [`OptimizeLevel::Full`] and a
/// query with no ORDER BY anywhere (SQL leaves such row order
/// unspecified; the layer-5 validator compares bags for these queries).
fn join_reorder(program: &mut Program, cx: &RuleContext) -> Option<String> {
    if cx.level < OptimizeLevel::Full || !cx.prepared.order_by.is_empty() {
        return None;
    }
    let mut has_order_by = false;
    each_expr(&program.body, &mut |e| {
        if let Expr::Flwor(f) = e {
            if f.clauses.iter().any(|c| matches!(c, Clause::OrderBy(_))) {
                has_order_by = true;
            }
        }
    });
    if has_order_by {
        return None;
    }
    let mut notes: Vec<String> = Vec::new();
    let stats = cx.stats;
    for_each_flwor_mut(program, &mut |flwor| {
        if flwor
            .clauses
            .iter()
            .any(|c| matches!(c, Clause::GroupBy(_)))
        {
            return;
        }
        let bound = flwor_bound_vars(flwor);
        let mut k = 0;
        while k < flwor.clauses.len() && matches!(flwor.clauses[k], Clause::For { .. }) {
            k += 1;
        }
        if k < 2 {
            return;
        }
        let independent = flwor.clauses[..k].iter().all(|c| {
            let Clause::For { source, .. } = c else {
                return false;
            };
            !uses_context(source) && free_vars(source).is_disjoint(&bound)
        });
        if !independent {
            return;
        }
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| {
            let card = |i: usize| {
                let Clause::For { source, .. } = &flwor.clauses[i] else {
                    unreachable!("leading run is all for clauses");
                };
                source_cardinality(source, stats)
            };
            card(a)
                .partial_cmp(&card(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        if order.iter().enumerate().all(|(i, &o)| i == o) {
            return;
        }
        let mut run: Vec<Option<Clause>> = flwor.clauses.drain(..k).map(Some).collect();
        let reordered: Vec<Clause> = order
            .iter()
            .map(|&o| run[o].take().expect("each index used once"))
            .collect();
        let vars: Vec<String> = reordered
            .iter()
            .filter_map(|c| match c {
                Clause::For { var, .. } => Some(var.clone()),
                _ => None,
            })
            .collect();
        for clause in reordered.into_iter().rev() {
            flwor.clauses.insert(0, clause);
        }
        notes.push(format!(
            "reordered {k} independent for clauses by ascending cardinality ({})",
            vars.join(", ")
        ));
    });
    if notes.is_empty() {
        None
    } else {
        Some(notes.join("; "))
    }
}

/// P003: removes `fn-bea:distinct-records(...)` when the prepared query
/// is a non-grouped single-table DISTINCT select projecting a
/// declared-unique column — every row is already distinct, so the
/// de-duplication pass (a full sort/hash of the result) is pure waste.
/// Requires exactly one such call in the program so the rewrite cannot
/// touch a set-operation's de-duplication by accident.
fn distinct_elimination(program: &mut Program, cx: &RuleContext) -> Option<String> {
    let PreparedBody::Select(select) = &cx.prepared.body else {
        return None;
    };
    if !select.distinct || select.grouped || select.from.len() != 1 {
        return None;
    }
    let Rsn::Table { entry, .. } = &select.from[0] else {
        return None;
    };
    let table = &entry.schema.table_name;
    let unique_column = select.items.iter().find_map(|item| {
        if let TExprKind::Column { column, .. } = &item.expr.kind {
            if cx.stats.column(table, column).unique {
                return Some(column.clone());
            }
        }
        None
    })?;
    let mut calls = 0usize;
    each_expr(&program.body, &mut |e| {
        if matches!(e, Expr::FunctionCall { name, .. } if name == "fn-bea:distinct-records") {
            calls += 1;
        }
    });
    if calls != 1 {
        return None;
    }
    let mut replaced = false;
    each_expr_mut(&mut program.body, &mut |e| {
        if let Expr::FunctionCall { name, args } = e {
            if name == "fn-bea:distinct-records" && args.len() == 1 {
                *e = args.pop().expect("one argument");
                replaced = true;
            }
        }
    });
    replaced.then(|| {
        format!("removed distinct-records: projected {table}.{unique_column} is declared unique")
    })
}

/// P004: truncates an `order by` to its leading key when that key is a
/// declared-unique column of a single-table query — ties cannot occur,
/// so the remaining key evaluations (and their casts) per row are dead
/// work. Mirrors the layer-4 `check_order_by` conditions exactly.
fn orderby_prune(program: &mut Program, cx: &RuleContext) -> Option<String> {
    let query = cx.prepared;
    if query.order_by.len() < 2 {
        return None;
    }
    let PreparedBody::Select(select) = &query.body else {
        return None;
    };
    if select.from.len() != 1 || select.from[0].range_vars().len() != 1 {
        return None;
    }
    let first = query.order_by[0].column;
    let item = select.items.iter().find(|i| i.output == first)?;
    let Rsn::Table { range_var, entry } = &select.from[0] else {
        return None;
    };
    let TExprKind::Column {
        range_var: col_rv,
        column,
    } = &item.expr.kind
    else {
        return None;
    };
    if col_rv != range_var || !cx.stats.column(&entry.schema.table_name, column).unique {
        return None;
    }
    // The one order-by clause with the full key count is the statement's;
    // anything else (e.g. a subquery's) is left alone.
    let want = query.order_by.len();
    let mut sites = 0usize;
    each_expr(&program.body, &mut |e| {
        if let Expr::Flwor(f) = e {
            for clause in &f.clauses {
                if matches!(clause, Clause::OrderBy(specs) if specs.len() == want) {
                    sites += 1;
                }
            }
        }
    });
    if sites != 1 {
        return None;
    }
    let mut pruned = 0usize;
    for_each_flwor_mut(program, &mut |flwor| {
        for clause in &mut flwor.clauses {
            if let Clause::OrderBy(specs) = clause {
                if specs.len() == want {
                    pruned = specs.len() - 1;
                    specs.truncate(1);
                }
            }
        }
    });
    (pruned > 0).then(|| {
        format!("pruned {pruned} order-by key(s) after unique leading key {col_rv}.{column}")
    })
}

/// P002: splits each `where` into its conjuncts and anchors every
/// conjunct immediately after the last clause binding any variable it
/// needs, so predicates filter the tuple stream before later `for`
/// clauses multiply it. Conjuncts never move across a `group by` or
/// `order by` (those reshape the stream), and never out of their FLWOR.
fn predicate_pushdown(program: &mut Program, _cx: &RuleContext) -> Option<String> {
    let mut moved = 0usize;
    for_each_flwor_mut(program, &mut |flwor| {
        let len = flwor.clauses.len();
        // Variables bound at each clause index, and the barrier indices a
        // predicate may not cross.
        let binder_of: Vec<Vec<String>> = flwor
            .clauses
            .iter()
            .map(|c| match c {
                Clause::For { var, .. } | Clause::Let { var, .. } => vec![var.clone()],
                Clause::GroupBy(g) => {
                    let mut v = vec![g.partition_var.clone()];
                    v.extend(g.keys.iter().map(|(_, var)| var.clone()));
                    v
                }
                _ => Vec::new(),
            })
            .collect();
        let mut wants_move = false;
        let target_of = |conjunct: &Expr, index: usize| -> usize {
            if uses_context(conjunct) {
                return index;
            }
            let needed = free_vars(conjunct);
            let mut target = 0usize;
            for (j, vars) in binder_of.iter().enumerate().take(index) {
                if vars.iter().any(|v| needed.contains(v)) {
                    target = j + 1;
                }
                if matches!(flwor.clauses[j], Clause::GroupBy(_) | Clause::OrderBy(_)) {
                    target = target.max(j + 1);
                }
            }
            target
        };
        for (i, clause) in flwor.clauses.iter().enumerate() {
            if let Clause::Where(predicate) = clause {
                let mut conjuncts = Vec::new();
                split_conjuncts(predicate.clone(), &mut conjuncts);
                if conjuncts.iter().any(|c| target_of(c, i) < i) {
                    wants_move = true;
                }
            }
        }
        if !wants_move {
            return;
        }
        // slot[p] holds the pushed conjuncts that go immediately before
        // the original clause at index p.
        let mut slots: Vec<Vec<Expr>> = vec![Vec::new(); len + 1];
        let mut kept: Vec<Option<Clause>> = Vec::with_capacity(len);
        for (i, clause) in flwor.clauses.iter().enumerate() {
            match clause {
                Clause::Where(predicate) => {
                    let mut conjuncts = Vec::new();
                    split_conjuncts(predicate.clone(), &mut conjuncts);
                    for conjunct in conjuncts {
                        let target = target_of(&conjunct, i);
                        if target < i {
                            moved += 1;
                        }
                        slots[target.min(i)].push(conjunct);
                    }
                    kept.push(None);
                }
                other => kept.push(Some(other.clone())),
            }
        }
        let mut rebuilt = Vec::with_capacity(len + moved);
        for (p, clause) in kept.into_iter().enumerate() {
            rebuilt.extend(slots[p].drain(..).map(Clause::Where));
            if let Some(clause) = clause {
                rebuilt.push(clause);
            }
        }
        rebuilt.extend(slots[len].drain(..).map(Clause::Where));
        flwor.clauses = rebuilt;
    });
    (moved > 0).then(|| format!("pushed {moved} where conjunct(s) to their binding clause"))
}

/// P008: hoists loop-invariant work out of per-tuple scope. Two shapes:
/// a `for` source past the first clause (re-evaluated once per upstream
/// tuple by the evaluator) and a quantifier source inside a `where`
/// (re-evaluated per tuple) move into a `let` at clause position 0 —
/// evaluated exactly once — when they reference no variable bound by the
/// FLWOR, never use the context item, and are expensive enough to matter.
/// Hoisted bindings are named in the `HX` zone of the paper's
/// `var<ctx><zone><n>` discipline (`var0HX1`, ...).
fn invariant_hoist(program: &mut Program, _cx: &RuleContext) -> Option<String> {
    let mut names: BTreeSet<String> = binding_names(program).into_iter().collect();
    let mut counter = 0usize;
    let mut hoisted = 0usize;
    for_each_flwor_mut(program, &mut |flwor| {
        let bound = flwor_bound_vars(flwor);
        let mut hoists: Vec<Clause> = Vec::new();
        let mut fresh = |names: &mut BTreeSet<String>| loop {
            counter += 1;
            let name = format!("var0HX{counter}");
            if names.insert(name.clone()) {
                return name;
            }
        };
        // A `group by` reshapes the tuple stream; whether earlier
        // bindings survive it is the evaluator's business, so hoisted
        // lets never serve clauses past the first group clause.
        let barrier = flwor
            .clauses
            .iter()
            .position(|c| matches!(c, Clause::GroupBy(_)))
            .unwrap_or(usize::MAX);
        for (i, clause) in flwor.clauses.iter_mut().enumerate() {
            if i >= barrier {
                break;
            }
            match clause {
                Clause::For { source, .. }
                    if i > 0
                        && is_expensive(source)
                        && !uses_context(source)
                        && free_vars(source).is_disjoint(&bound) =>
                {
                    let name = fresh(&mut names);
                    let value = std::mem::replace(source, Expr::VarRef(name.clone()));
                    hoists.push(Clause::Let { var: name, value });
                    hoisted += 1;
                }
                Clause::Where(predicate) => {
                    each_expr_mut(predicate, &mut |e| {
                        if let Expr::Quantified { source, .. } = e {
                            if is_expensive(source)
                                && !uses_context(source)
                                && free_vars(source).is_disjoint(&bound)
                            {
                                let name = fresh(&mut names);
                                let value =
                                    std::mem::replace(&mut **source, Expr::VarRef(name.clone()));
                                hoists.push(Clause::Let { var: name, value });
                                hoisted += 1;
                            }
                        }
                    });
                }
                _ => {}
            }
        }
        if !hoists.is_empty() {
            flwor.clauses.splice(0..0, hoists);
        }
    });
    (hoisted > 0).then(|| format!("hoisted {hoisted} loop-invariant source(s) to let"))
}

/// Uses of `$name` across a clause, including a `group` clause's source
/// variable (a name use that is not an expression).
fn clause_uses(clause: &Clause, name: &str) -> usize {
    match clause {
        Clause::For { source, .. } => count_var_uses(source, name),
        Clause::Let { value, .. } => count_var_uses(value, name),
        Clause::Where(p) => count_var_uses(p, name),
        Clause::GroupBy(g) => {
            let keys: usize = g.keys.iter().map(|(k, _)| count_var_uses(k, name)).sum();
            keys + usize::from(g.source_var == name)
        }
        Clause::OrderBy(specs) => specs.iter().map(|s| count_var_uses(&s.key, name)).sum(),
    }
}

fn substitute_in_clause(clause: &mut Clause, name: &str, replacement: &Expr) {
    match clause {
        Clause::For { source, .. } => substitute_var(source, name, replacement),
        Clause::Let { value, .. } => substitute_var(value, name, replacement),
        Clause::Where(p) => substitute_var(p, name, replacement),
        Clause::GroupBy(g) => {
            for (k, _) in &mut g.keys {
                substitute_var(k, name, replacement);
            }
            if g.source_var == name {
                if let Expr::VarRef(new_name) = replacement {
                    g.source_var = new_name.clone();
                }
            }
        }
        Clause::OrderBy(specs) => {
            for spec in specs {
                substitute_var(&mut spec.key, name, replacement);
            }
        }
    }
}

/// A103 (as a fix): inlines `let $v := <trivial>` — a bare variable or
/// literal — into its uses and drops the binding. Capture safety is by
/// global name uniqueness: the rule only runs when `$v` and every
/// variable the value references are bound exactly once program-wide, so
/// no substitution can be captured by a shadowing binder.
fn let_inline(program: &mut Program, _cx: &RuleContext) -> Option<String> {
    let names = binding_names(program);
    let mut inlined: Vec<String> = Vec::new();
    for_each_flwor_mut(program, &mut |flwor| {
        let mut i = 0;
        while i < flwor.clauses.len() {
            let Clause::Let { var, value } = &flwor.clauses[i] else {
                i += 1;
                continue;
            };
            let trivial = matches!(value, Expr::VarRef(_) | Expr::Literal(_));
            let capture_safe =
                bound_once(&names, var) && free_vars(value).iter().all(|v| bound_once(&names, v));
            if !trivial || !capture_safe {
                i += 1;
                continue;
            }
            let var = var.clone();
            let value = value.clone();
            let uses: usize = flwor.clauses[i + 1..]
                .iter()
                .map(|c| clause_uses(c, &var))
                .sum::<usize>()
                + count_var_uses(&flwor.ret, &var);
            let group_source_use = flwor.clauses[i + 1..]
                .iter()
                .any(|c| matches!(c, Clause::GroupBy(g) if g.source_var == var));
            let substitutable_everywhere = matches!(value, Expr::VarRef(_))
                || (!group_source_use
                    && flwor.clauses[i + 1..].iter().all(|c| match c {
                        Clause::For { source, .. } => substitutable(source, &var, &value),
                        Clause::Let { value: v, .. } => substitutable(v, &var, &value),
                        Clause::Where(p) => substitutable(p, &var, &value),
                        Clause::GroupBy(g) => {
                            g.keys.iter().all(|(k, _)| substitutable(k, &var, &value))
                        }
                        Clause::OrderBy(specs) => {
                            specs.iter().all(|s| substitutable(&s.key, &var, &value))
                        }
                    })
                    && substitutable(&flwor.ret, &var, &value));
            if uses == 0 || !substitutable_everywhere {
                i += 1;
                continue;
            }
            for clause in &mut flwor.clauses[i + 1..] {
                substitute_in_clause(clause, &var, &value);
            }
            substitute_var(&mut flwor.ret, &var, &value);
            flwor.clauses.remove(i);
            inlined.push(var);
        }
    });
    (!inlined.is_empty()).then(|| format!("inlined trivial let(s) ${}", inlined.join(", $")))
}

/// A103 (as a fix): removes `let` bindings with zero references in the
/// rest of their FLWOR — each was still evaluated once per tuple. Global
/// name uniqueness again guards the use count.
fn dead_let_elimination(program: &mut Program, _cx: &RuleContext) -> Option<String> {
    let names = binding_names(program);
    let mut removed: Vec<String> = Vec::new();
    for_each_flwor_mut(program, &mut |flwor| {
        let mut i = 0;
        while i < flwor.clauses.len() {
            let Clause::Let { var, .. } = &flwor.clauses[i] else {
                i += 1;
                continue;
            };
            if !bound_once(&names, var) {
                i += 1;
                continue;
            }
            let var = var.clone();
            let uses: usize = flwor.clauses[i + 1..]
                .iter()
                .map(|c| clause_uses(c, &var))
                .sum::<usize>()
                + count_var_uses(&flwor.ret, &var);
            if uses == 0 {
                flwor.clauses.remove(i);
                removed.push(var);
            } else {
                i += 1;
            }
        }
    });
    (!removed.is_empty()).then(|| format!("removed dead let(s) ${}", removed.join(", $")))
}
