//! # aldsp-relational — in-memory relational engine
//!
//! Two roles (DESIGN.md §2):
//!
//! 1. **Substrate**: physical data services in the platform wrap relational
//!    sources; here, those sources are in-memory tables from this crate,
//!    exposed to the XQuery evaluator as data-service functions returning
//!    flat XML.
//! 2. **Oracle**: the engine executes the *same* `aldsp-sql` AST directly,
//!    with SQL-92 semantics (three-valued logic, bag set-operations, NULL
//!    handling), so differential tests can check that a translated XQuery
//!    computes exactly what the SQL would have (paper correctness goal,
//!    §3.2 (i)).
//!
//! Modules:
//! * [`value`] — runtime SQL values with 3VL comparison and promotion
//!   arithmetic.
//! * [`sqltype`] — the shared SQL type table: AST-type-name → catalog
//!   type, and typed decoding of transported text cells (consumed by the
//!   driver's result sets and the analyzer's type pass).
//! * [`like`] — SQL `LIKE` pattern matching with `ESCAPE`.
//! * [`relation`] — materialized relations (ordered columns + rows).
//! * [`database`] — named tables.
//! * [`eval`] — scalar expression evaluation with correlation scopes.
//! * [`exec`] — the query executor (joins, grouping, set ops, ordering).

pub mod database;
pub mod eval;
pub mod exec;
pub mod like;
pub mod relation;
pub mod sqltype;
pub mod value;

pub use database::{Database, Table};
pub use exec::{execute_query, ExecError};
pub use relation::{ColumnInfo, Relation};
pub use sqltype::{column_type_from_name, decode_cell, type_name_to_column};
pub use value::SqlValue;
