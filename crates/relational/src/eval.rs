//! Scalar expression evaluation with SQL three-valued logic and
//! correlation scopes.
//!
//! Evaluation happens relative to a [`Scope`] — the current row of the
//! current relation, chained to outer rows so correlated subqueries can see
//! enclosing range variables (the oracle-side counterpart of the paper's
//! context chain, §3.4.3).

use crate::database::Database;
use crate::exec::{execute_body_scoped, ExecError};
use crate::like::like_match;
use crate::relation::Relation;
use crate::value::{ArithOp, SqlValue};
use aldsp_sql::{
    BinaryOp, ColumnRef, CompareOp, Expr, FunctionArgs, Literal, Quantifier, TrimSide, UnaryOp,
};
use std::cmp::Ordering;

/// Evaluation environment: the database (for subqueries) and statement
/// parameters.
pub struct EvalContext<'a> {
    /// Tables for subquery execution.
    pub db: &'a Database,
    /// Bound `?` parameter values, by ordinal.
    pub params: &'a [SqlValue],
}

/// A row binding, chained outward for correlation.
#[derive(Clone, Copy)]
pub struct Scope<'a> {
    /// The relation the row belongs to.
    pub relation: &'a Relation,
    /// The current row.
    pub row: &'a [SqlValue],
    /// Enclosing query's scope, if any.
    pub parent: Option<&'a Scope<'a>>,
}

impl<'a> Scope<'a> {
    /// Resolves a column reference, walking outward through enclosing
    /// scopes (SQL-92 correlation rules: innermost match wins; ambiguity
    /// within one scope is an error).
    pub fn resolve(&self, column: &ColumnRef) -> Result<SqlValue, ExecError> {
        let matches = self
            .relation
            .find_columns(column.qualifier.as_deref(), &column.name);
        match matches.as_slice() {
            [i] => Ok(self.row[*i].clone()),
            [] => match self.parent {
                Some(parent) => parent.resolve(column),
                None => Err(ExecError::new(format!("unknown column {column}"))),
            },
            _ => Err(ExecError::new(format!("ambiguous column {column}"))),
        }
    }
}

/// Evaluates `expr` to a value. Predicates yield `Bool`/`Null` (UNKNOWN).
pub fn eval_expr(
    ctx: &EvalContext<'_>,
    scope: &Scope<'_>,
    expr: &Expr,
) -> Result<SqlValue, ExecError> {
    match expr {
        Expr::Column(c) => scope.resolve(c),
        Expr::Literal(l) => Ok(literal_value(l)),
        Expr::Parameter(ordinal) => ctx
            .params
            .get(*ordinal)
            .cloned()
            .ok_or_else(|| ExecError::new(format!("parameter {} not bound", ordinal + 1))),
        Expr::Unary { op, expr } => {
            let v = eval_expr(ctx, scope, expr)?;
            match op {
                UnaryOp::Plus => Ok(v),
                UnaryOp::Neg => match v {
                    SqlValue::Null => Ok(SqlValue::Null),
                    SqlValue::Int(i) => i
                        .checked_neg()
                        .map(SqlValue::Int)
                        .ok_or_else(|| ExecError::new("integer overflow")),
                    SqlValue::Decimal(d) => Ok(SqlValue::Decimal(-d)),
                    SqlValue::Double(d) => Ok(SqlValue::Double(-d)),
                    other => Err(ExecError::new(format!("cannot negate {other:?}"))),
                },
                UnaryOp::Not => Ok(truth_to_value(truth(&v)?.map(|b| !b))),
            }
        }
        Expr::Binary { left, op, right } => eval_binary(ctx, scope, left, *op, right),
        Expr::Function { name, args } => eval_function(ctx, scope, name, args),
        Expr::Case {
            operand,
            branches,
            else_result,
        } => {
            for (when, then) in branches {
                let matched = match operand {
                    // Simple CASE compares operand = when.
                    Some(op_expr) => {
                        let lhs = eval_expr(ctx, scope, op_expr)?;
                        let rhs = eval_expr(ctx, scope, when)?;
                        compare_values(&lhs, &rhs)?.map(|o| o == Ordering::Equal)
                    }
                    // Searched CASE evaluates the predicate.
                    None => truth(&eval_expr(ctx, scope, when)?)?,
                };
                if matched == Some(true) {
                    return eval_expr(ctx, scope, then);
                }
            }
            match else_result {
                Some(e) => eval_expr(ctx, scope, e),
                None => Ok(SqlValue::Null),
            }
        }
        Expr::Cast { expr, target } => {
            let v = eval_expr(ctx, scope, expr)?;
            v.cast_to(type_name_to_column(*target))
                .map_err(|e| ExecError::new(e.message))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(ctx, scope, expr)?;
            Ok(SqlValue::Bool(v.is_null() != *negated))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_expr(ctx, scope, expr)?;
            let lo = eval_expr(ctx, scope, low)?;
            let hi = eval_expr(ctx, scope, high)?;
            let ge_lo = compare_values(&v, &lo)?.map(|o| o != Ordering::Less);
            let le_hi = compare_values(&v, &hi)?.map(|o| o != Ordering::Greater);
            let t = and3(ge_lo, le_hi);
            Ok(truth_to_value(negate_if(t, *negated)))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(ctx, scope, expr)?;
            let mut saw_unknown = false;
            for item in list {
                let candidate = eval_expr(ctx, scope, item)?;
                match compare_values(&v, &candidate)? {
                    Some(Ordering::Equal) => {
                        return Ok(truth_to_value(negate_if(Some(true), *negated)))
                    }
                    Some(_) => {}
                    None => saw_unknown = true,
                }
            }
            let t = if saw_unknown { None } else { Some(false) };
            Ok(truth_to_value(negate_if(t, *negated)))
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let v = eval_expr(ctx, scope, expr)?;
            let rel = execute_body_scoped(ctx.db, query, ctx.params, Some(scope))?;
            require_arity(&rel, 1, "IN subquery")?;
            let mut saw_unknown = false;
            for row in &rel.rows {
                match compare_values(&v, &row[0])? {
                    Some(Ordering::Equal) => {
                        return Ok(truth_to_value(negate_if(Some(true), *negated)))
                    }
                    Some(_) => {}
                    None => saw_unknown = true,
                }
            }
            let t = if saw_unknown { None } else { Some(false) };
            Ok(truth_to_value(negate_if(t, *negated)))
        }
        Expr::Exists { query, negated } => {
            let rel = execute_body_scoped(ctx.db, query, ctx.params, Some(scope))?;
            Ok(SqlValue::Bool(rel.rows.is_empty() == *negated))
        }
        Expr::ScalarSubquery(query) => {
            let rel = execute_body_scoped(ctx.db, query, ctx.params, Some(scope))?;
            require_arity(&rel, 1, "scalar subquery")?;
            match rel.rows.len() {
                0 => Ok(SqlValue::Null),
                1 => Ok(rel.rows[0][0].clone()),
                n => Err(ExecError::new(format!("scalar subquery returned {n} rows"))),
            }
        }
        Expr::Quantified {
            expr,
            op,
            quantifier,
            query,
        } => {
            let v = eval_expr(ctx, scope, expr)?;
            let rel = execute_body_scoped(ctx.db, query, ctx.params, Some(scope))?;
            require_arity(&rel, 1, "quantified subquery")?;
            let mut any_true = false;
            let mut any_false = false;
            let mut any_unknown = false;
            for row in &rel.rows {
                match compare_with_op(&v, *op, &row[0])? {
                    Some(true) => any_true = true,
                    Some(false) => any_false = true,
                    None => any_unknown = true,
                }
            }
            // SQL-92 quantified comparison truth tables: ANY is an OR over
            // the rows, ALL is an AND; empty subquery → FALSE for ANY,
            // TRUE for ALL.
            let t = match quantifier {
                Quantifier::Any => {
                    if any_true {
                        Some(true)
                    } else if any_unknown {
                        None
                    } else {
                        Some(false)
                    }
                }
                Quantifier::All => {
                    if any_false {
                        Some(false)
                    } else if any_unknown {
                        None
                    } else {
                        Some(true)
                    }
                }
            };
            Ok(truth_to_value(t))
        }
        Expr::Like {
            expr,
            pattern,
            escape,
            negated,
        } => {
            let v = eval_expr(ctx, scope, expr)?;
            let p = eval_expr(ctx, scope, pattern)?;
            let esc = match escape {
                Some(e) => {
                    let ev = eval_expr(ctx, scope, e)?;
                    match ev {
                        SqlValue::Null => return Ok(SqlValue::Null),
                        SqlValue::Str(s) if s.chars().count() == 1 => s.chars().next(),
                        other => {
                            return Err(ExecError::new(format!(
                                "ESCAPE must be a single character, got {other:?}"
                            )))
                        }
                    }
                }
                None => None,
            };
            match (&v, &p) {
                (SqlValue::Null, _) | (_, SqlValue::Null) => Ok(SqlValue::Null),
                _ => {
                    let matched = like_match(&v.display_text(), &p.display_text(), esc)
                        .map_err(|e| ExecError::new(e.message))?;
                    Ok(SqlValue::Bool(matched != *negated))
                }
            }
        }
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            let s = eval_expr(ctx, scope, expr)?;
            let st = eval_expr(ctx, scope, start)?;
            let len = match length {
                Some(l) => Some(eval_expr(ctx, scope, l)?),
                None => None,
            };
            if s.is_null() || st.is_null() || len.as_ref().is_some_and(|l| l.is_null()) {
                return Ok(SqlValue::Null);
            }
            let text = s.display_text();
            let start_pos = int_of(&st, "SUBSTRING start")?;
            let length_n = match &len {
                Some(l) => {
                    let n = int_of(l, "SUBSTRING length")?;
                    if n < 0 {
                        return Err(ExecError::new("negative SUBSTRING length"));
                    }
                    Some(n)
                }
                None => None,
            };
            Ok(SqlValue::Str(sql_substring(&text, start_pos, length_n)))
        }
        Expr::Trim {
            side,
            trim_chars,
            expr,
        } => {
            let v = eval_expr(ctx, scope, expr)?;
            if v.is_null() {
                return Ok(SqlValue::Null);
            }
            let pad = match trim_chars {
                Some(c) => {
                    let cv = eval_expr(ctx, scope, c)?;
                    if cv.is_null() {
                        return Ok(SqlValue::Null);
                    }
                    let s = cv.display_text();
                    let mut chars = s.chars();
                    match (chars.next(), chars.next()) {
                        (Some(ch), None) => ch,
                        _ => {
                            return Err(ExecError::new("TRIM character must be a single character"))
                        }
                    }
                }
                None => ' ',
            };
            let text = v.display_text();
            let trimmed = match side {
                TrimSide::Both => text.trim_matches(pad),
                TrimSide::Leading => text.trim_start_matches(pad),
                TrimSide::Trailing => text.trim_end_matches(pad),
            };
            Ok(SqlValue::Str(trimmed.to_string()))
        }
        Expr::Position { needle, haystack } => {
            let n = eval_expr(ctx, scope, needle)?;
            let h = eval_expr(ctx, scope, haystack)?;
            if n.is_null() || h.is_null() {
                return Ok(SqlValue::Null);
            }
            let needle_text = n.display_text();
            let haystack_text = h.display_text();
            // SQL POSITION is 1-based; 0 means not found; empty needle → 1.
            let pos = if needle_text.is_empty() {
                1
            } else {
                match haystack_text.find(&needle_text) {
                    Some(byte) => haystack_text[..byte].chars().count() as i64 + 1,
                    None => 0,
                }
            };
            Ok(SqlValue::Int(pos))
        }
    }
}

fn eval_binary(
    ctx: &EvalContext<'_>,
    scope: &Scope<'_>,
    left: &Expr,
    op: BinaryOp,
    right: &Expr,
) -> Result<SqlValue, ExecError> {
    match op {
        BinaryOp::And => {
            let l = truth(&eval_expr(ctx, scope, left)?)?;
            // Short circuit: FALSE AND x is FALSE without evaluating x
            // (also avoids spurious division-by-zero style errors).
            if l == Some(false) {
                return Ok(SqlValue::Bool(false));
            }
            let r = truth(&eval_expr(ctx, scope, right)?)?;
            Ok(truth_to_value(and3(l, r)))
        }
        BinaryOp::Or => {
            let l = truth(&eval_expr(ctx, scope, left)?)?;
            if l == Some(true) {
                return Ok(SqlValue::Bool(true));
            }
            let r = truth(&eval_expr(ctx, scope, right)?)?;
            Ok(truth_to_value(or3(l, r)))
        }
        BinaryOp::Compare(c) => {
            let l = eval_expr(ctx, scope, left)?;
            let r = eval_expr(ctx, scope, right)?;
            Ok(truth_to_value(compare_with_op(&l, c, &r)?))
        }
        BinaryOp::Concat => {
            let l = eval_expr(ctx, scope, left)?;
            let r = eval_expr(ctx, scope, right)?;
            Ok(l.concat(&r))
        }
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
            let l = eval_expr(ctx, scope, left)?;
            let r = eval_expr(ctx, scope, right)?;
            let arith_op = match op {
                BinaryOp::Add => ArithOp::Add,
                BinaryOp::Sub => ArithOp::Sub,
                BinaryOp::Mul => ArithOp::Mul,
                _ => ArithOp::Div,
            };
            l.arith(arith_op, &r).map_err(|e| ExecError::new(e.message))
        }
    }
}

fn eval_function(
    ctx: &EvalContext<'_>,
    scope: &Scope<'_>,
    name: &str,
    args: &FunctionArgs,
) -> Result<SqlValue, ExecError> {
    if aldsp_sql::is_aggregate_function(name) {
        return Err(ExecError::new(format!(
            "aggregate {name} used outside grouping context"
        )));
    }
    let arg_exprs = match args {
        FunctionArgs::Star => {
            return Err(ExecError::new(format!("{name}(*) is not a scalar call")))
        }
        FunctionArgs::List { args, .. } => args,
    };
    let mut values = Vec::with_capacity(arg_exprs.len());
    for a in arg_exprs {
        values.push(eval_expr(ctx, scope, a)?);
    }
    scalar_function(name, &values)
}

/// Evaluates a scalar function over already-computed argument values
/// (shared with the XQuery-side function map tests).
pub fn scalar_function(name: &str, values: &[SqlValue]) -> Result<SqlValue, ExecError> {
    let arity = |n: usize| -> Result<(), ExecError> {
        if values.len() == n {
            Ok(())
        } else {
            Err(ExecError::new(format!(
                "{name} expects {n} argument(s), got {}",
                values.len()
            )))
        }
    };
    match name {
        "UPPER" | "UCASE" => {
            arity(1)?;
            Ok(map_string(&values[0], |s| s.to_uppercase()))
        }
        "LOWER" | "LCASE" => {
            arity(1)?;
            Ok(map_string(&values[0], |s| s.to_lowercase()))
        }
        "CHAR_LENGTH" | "CHARACTER_LENGTH" | "LENGTH" => {
            arity(1)?;
            Ok(match &values[0] {
                SqlValue::Null => SqlValue::Null,
                v => SqlValue::Int(v.display_text().chars().count() as i64),
            })
        }
        "ABS" => {
            arity(1)?;
            Ok(match &values[0] {
                SqlValue::Null => SqlValue::Null,
                SqlValue::Int(i) => SqlValue::Int(i.abs()),
                SqlValue::Decimal(d) => SqlValue::Decimal(d.abs()),
                SqlValue::Double(d) => SqlValue::Double(d.abs()),
                other => return Err(ExecError::new(format!("ABS of non-number {other:?}"))),
            })
        }
        "ROUND" | "FLOOR" | "CEILING" => {
            arity(1)?;
            let f = |d: f64| match name {
                "ROUND" => d.round(),
                "FLOOR" => d.floor(),
                _ => d.ceil(),
            };
            Ok(match &values[0] {
                SqlValue::Null => SqlValue::Null,
                SqlValue::Int(i) => SqlValue::Int(*i),
                SqlValue::Decimal(d) => SqlValue::Decimal(f(*d)),
                SqlValue::Double(d) => SqlValue::Double(f(*d)),
                other => return Err(ExecError::new(format!("{name} of non-number {other:?}"))),
            })
        }
        "MOD" => {
            arity(2)?;
            match (&values[0], &values[1]) {
                (SqlValue::Null, _) | (_, SqlValue::Null) => Ok(SqlValue::Null),
                (SqlValue::Int(a), SqlValue::Int(b)) => {
                    if *b == 0 {
                        Err(ExecError::new("MOD by zero"))
                    } else {
                        Ok(SqlValue::Int(a % b))
                    }
                }
                (a, b) => Err(ExecError::new(format!("MOD of non-integers {a:?}, {b:?}"))),
            }
        }
        "CONCAT" => {
            if values.len() < 2 {
                return Err(ExecError::new("CONCAT expects at least 2 arguments"));
            }
            let mut acc = values[0].clone();
            for v in &values[1..] {
                acc = acc.concat(v);
            }
            Ok(acc)
        }
        "COALESCE" => {
            if values.is_empty() {
                return Err(ExecError::new("COALESCE expects at least 1 argument"));
            }
            Ok(values
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(SqlValue::Null))
        }
        "NULLIF" => {
            arity(2)?;
            match compare_values(&values[0], &values[1])? {
                Some(Ordering::Equal) => Ok(SqlValue::Null),
                _ => Ok(values[0].clone()),
            }
        }
        other => Err(ExecError::new(format!("unknown function {other}"))),
    }
}

fn map_string(v: &SqlValue, f: impl FnOnce(&str) -> String) -> SqlValue {
    match v {
        SqlValue::Null => SqlValue::Null,
        other => SqlValue::Str(f(&other.display_text())),
    }
}

/// SQL SUBSTRING semantics: 1-based, start may be ≤ 0 (window clips).
fn sql_substring(text: &str, start: i64, length: Option<i64>) -> String {
    let chars: Vec<char> = text.chars().collect();
    let end_exclusive = match length {
        Some(l) => start.saturating_add(l),
        None => i64::MAX,
    };
    let from = (start.max(1) - 1).min(chars.len() as i64) as usize;
    let to = (end_exclusive - 1).clamp(0, chars.len() as i64) as usize;
    if from >= to {
        String::new()
    } else {
        chars[from..to].iter().collect()
    }
}

fn int_of(v: &SqlValue, what: &str) -> Result<i64, ExecError> {
    match v {
        SqlValue::Int(i) => Ok(*i),
        SqlValue::Decimal(d) | SqlValue::Double(d) => Ok(*d as i64),
        other => Err(ExecError::new(format!(
            "{what} must be numeric, got {other:?}"
        ))),
    }
}

fn require_arity(rel: &Relation, n: usize, what: &str) -> Result<(), ExecError> {
    if rel.arity() == n {
        Ok(())
    } else {
        Err(ExecError::new(format!(
            "{what} must return {n} column(s), returned {}",
            rel.arity()
        )))
    }
}

/// Converts a predicate value into three-valued truth.
pub fn truth(v: &SqlValue) -> Result<Option<bool>, ExecError> {
    match v {
        SqlValue::Null => Ok(None),
        SqlValue::Bool(b) => Ok(Some(*b)),
        other => Err(ExecError::new(format!(
            "predicate evaluated to non-boolean {other:?}"
        ))),
    }
}

/// Converts three-valued truth into a value.
pub fn truth_to_value(t: Option<bool>) -> SqlValue {
    match t {
        Some(b) => SqlValue::Bool(b),
        None => SqlValue::Null,
    }
}

/// Kleene AND.
pub fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

/// Kleene OR.
pub fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn negate_if(t: Option<bool>, negate: bool) -> Option<bool> {
    if negate {
        t.map(|b| !b)
    } else {
        t
    }
}

/// Comparison returning 3VL ordering.
pub fn compare_values(a: &SqlValue, b: &SqlValue) -> Result<Option<Ordering>, ExecError> {
    a.compare(b).map_err(|e| ExecError::new(e.message))
}

/// Applies a comparison operator with 3VL.
pub fn compare_with_op(
    a: &SqlValue,
    op: CompareOp,
    b: &SqlValue,
) -> Result<Option<bool>, ExecError> {
    let ord = compare_values(a, b)?;
    Ok(ord.map(|o| match op {
        CompareOp::Eq => o == Ordering::Equal,
        CompareOp::NotEq => o != Ordering::Equal,
        CompareOp::Lt => o == Ordering::Less,
        CompareOp::LtEq => o != Ordering::Greater,
        CompareOp::Gt => o == Ordering::Greater,
        CompareOp::GtEq => o != Ordering::Less,
    }))
}

fn literal_value(l: &Literal) -> SqlValue {
    match l {
        Literal::Integer(i) => SqlValue::Int(*i),
        Literal::Decimal(d) => SqlValue::Decimal(*d),
        Literal::Double(d) => SqlValue::Double(*d),
        Literal::String(s) => SqlValue::Str(s.clone()),
        Literal::Date(d) => SqlValue::Date(d.clone()),
        Literal::Null => SqlValue::Null,
    }
}

pub use crate::sqltype::type_name_to_column;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kleene_tables() {
        assert_eq!(and3(Some(true), None), None);
        assert_eq!(and3(Some(false), None), Some(false));
        assert_eq!(or3(Some(true), None), Some(true));
        assert_eq!(or3(Some(false), None), None);
        assert_eq!(or3(None, None), None);
    }

    #[test]
    fn substring_window_clips() {
        assert_eq!(sql_substring("hello", 2, Some(2)), "el");
        assert_eq!(sql_substring("hello", 0, Some(3)), "he"); // window [0,3)
        assert_eq!(sql_substring("hello", -2, Some(4)), "h"); // window [-2,2)
        assert_eq!(sql_substring("hello", 4, None), "lo");
        assert_eq!(sql_substring("hello", 10, None), "");
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(
            scalar_function("UPPER", &[SqlValue::Str("joe".into())]).unwrap(),
            SqlValue::Str("JOE".into())
        );
        assert_eq!(
            scalar_function("CHAR_LENGTH", &[SqlValue::Str("héllo".into())]).unwrap(),
            SqlValue::Int(5)
        );
        assert_eq!(
            scalar_function("COALESCE", &[SqlValue::Null, SqlValue::Int(2)]).unwrap(),
            SqlValue::Int(2)
        );
        assert_eq!(
            scalar_function("NULLIF", &[SqlValue::Int(1), SqlValue::Int(1)]).unwrap(),
            SqlValue::Null
        );
        assert_eq!(
            scalar_function("MOD", &[SqlValue::Int(7), SqlValue::Int(3)]).unwrap(),
            SqlValue::Int(1)
        );
        assert!(scalar_function("NO_SUCH_FN", &[]).is_err());
    }

    #[test]
    fn null_string_functions_propagate() {
        assert_eq!(
            scalar_function("UPPER", &[SqlValue::Null]).unwrap(),
            SqlValue::Null
        );
    }
}
