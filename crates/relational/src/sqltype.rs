//! The one SQL type table: name-level and value-level conversions that
//! were previously duplicated between this crate's evaluator and the
//! driver's result-set decoding.
//!
//! Three conversions live here:
//!
//! * [`type_name_to_column`] — AST type names (`CAST(x AS t)`) to catalog
//!   column types. Used by the expression evaluator and the executor's
//!   output-typing pass.
//! * [`decode_cell`] — one transported text cell (either transport's
//!   payload) to a typed [`SqlValue`], driven by the column's declared
//!   type. Used by the driver's `ResultSet` builders.
//! * [`parse_double`] — the XML-Schema lexical space for doubles
//!   (`INF`/`-INF`/`NaN` plus ordinary numerals), shared by
//!   [`decode_cell`] and any caller that reads serialized `xs:double`.

use crate::value::SqlValue;
use aldsp_catalog::SqlColumnType;
use aldsp_sql::SqlTypeName;

/// Maps AST type names to catalog column types.
pub fn type_name_to_column(t: SqlTypeName) -> SqlColumnType {
    match t {
        SqlTypeName::Smallint => SqlColumnType::Smallint,
        SqlTypeName::Integer => SqlColumnType::Integer,
        SqlTypeName::Bigint => SqlColumnType::Bigint,
        SqlTypeName::Decimal => SqlColumnType::Decimal,
        SqlTypeName::Real => SqlColumnType::Real,
        SqlTypeName::Double => SqlColumnType::Double,
        SqlTypeName::Char => SqlColumnType::Char,
        SqlTypeName::Varchar => SqlColumnType::Varchar,
        SqlTypeName::Date => SqlColumnType::Date,
    }
}

/// Parses a reported SQL type name (the `ResultSetMetaData` spelling,
/// [`SqlColumnType::sql_name`]) back to the column type — the inverse the
/// analyzer's metadata cross-check uses. `None` for unknown names.
pub fn column_type_from_name(name: &str) -> Option<SqlColumnType> {
    use SqlColumnType as T;
    Some(match name {
        "SMALLINT" => T::Smallint,
        "INTEGER" => T::Integer,
        "BIGINT" => T::Bigint,
        "DECIMAL" => T::Decimal,
        "REAL" => T::Real,
        "DOUBLE" => T::Double,
        "CHAR" => T::Char,
        "VARCHAR" => T::Varchar,
        "DATE" => T::Date,
        "BOOLEAN" => T::Boolean,
        _ => return None,
    })
}

/// Decodes one transported cell into a typed value. `None` is the absent
/// cell (SQL NULL in both transports); text cells are interpreted per the
/// declared column type, untyped columns stay strings. The error is a
/// plain message; the driver wraps it in its own error type.
pub fn decode_cell(
    cell: Option<String>,
    sql_type: Option<SqlColumnType>,
) -> Result<SqlValue, String> {
    let Some(text) = cell else {
        return Ok(SqlValue::Null);
    };
    use SqlColumnType as T;
    let value = match sql_type {
        None | Some(T::Char) | Some(T::Varchar) => SqlValue::Str(text),
        Some(T::Smallint) | Some(T::Integer) | Some(T::Bigint) => SqlValue::Int(
            text.trim()
                .parse()
                .map_err(|_| format!("bad integer `{text}`"))?,
        ),
        Some(T::Decimal) => SqlValue::Decimal(
            text.trim()
                .parse()
                .map_err(|_| format!("bad decimal `{text}`"))?,
        ),
        Some(T::Real) | Some(T::Double) => SqlValue::Double(parse_double(&text)?),
        Some(T::Date) => SqlValue::Date(text),
        Some(T::Boolean) => match text.trim() {
            "true" | "1" => SqlValue::Bool(true),
            "false" | "0" => SqlValue::Bool(false),
            other => return Err(format!("bad boolean `{other}`")),
        },
    };
    Ok(value)
}

/// Parses the `xs:double` lexical space (`INF`, `-INF`, `NaN`, numerals).
pub fn parse_double(text: &str) -> Result<f64, String> {
    match text.trim() {
        "INF" => Ok(f64::INFINITY),
        "-INF" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        t => t.parse().map_err(|_| format!("bad double `{text}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_name_map_is_total() {
        use SqlTypeName as N;
        for t in [
            N::Smallint,
            N::Integer,
            N::Bigint,
            N::Decimal,
            N::Real,
            N::Double,
            N::Char,
            N::Varchar,
            N::Date,
        ] {
            // Every AST type name lands on a catalog type whose canonical
            // SQL spelling round-trips through the catalog's own table.
            let col = type_name_to_column(t);
            assert!(!col.sql_name().is_empty());
        }
    }

    #[test]
    fn name_roundtrip_is_total() {
        use SqlColumnType as T;
        for t in [
            T::Smallint,
            T::Integer,
            T::Bigint,
            T::Decimal,
            T::Real,
            T::Double,
            T::Char,
            T::Varchar,
            T::Date,
            T::Boolean,
        ] {
            assert_eq!(column_type_from_name(t.sql_name()), Some(t));
        }
        assert_eq!(column_type_from_name("BLOB"), None);
    }

    #[test]
    fn decode_cell_types_and_nulls() {
        assert_eq!(
            decode_cell(None, Some(SqlColumnType::Integer)),
            Ok(SqlValue::Null)
        );
        assert_eq!(
            decode_cell(Some("55".into()), Some(SqlColumnType::Integer)),
            Ok(SqlValue::Int(55))
        );
        assert_eq!(
            decode_cell(Some("a".into()), None),
            Ok(SqlValue::Str("a".into()))
        );
        assert_eq!(
            decode_cell(Some("INF".into()), Some(SqlColumnType::Double)),
            Ok(SqlValue::Double(f64::INFINITY))
        );
        assert!(decode_cell(Some("x".into()), Some(SqlColumnType::Decimal)).is_err());
        assert!(decode_cell(Some("maybe".into()), Some(SqlColumnType::Boolean)).is_err());
    }

    #[test]
    fn double_lexical_space() {
        assert_eq!(parse_double(" -INF "), Ok(f64::NEG_INFINITY));
        assert!(parse_double("NaN").unwrap().is_nan());
        assert_eq!(parse_double("1.5"), Ok(1.5));
        assert!(parse_double("one").is_err());
    }
}
