//! SQL `LIKE` pattern matching.
//!
//! `%` matches any run (possibly empty), `_` matches exactly one character,
//! and the optional `ESCAPE` character makes the following pattern
//! character literal. Matching works on characters, not bytes.

/// Errors in the pattern itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LikeError {
    /// What was wrong with the pattern.
    pub message: String,
}

impl std::fmt::Display for LikeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LikeError {}

/// One parsed pattern element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PatternToken {
    AnyRun,
    AnyOne,
    Literal(char),
}

/// Compiles a LIKE pattern, applying the escape character if given.
fn compile(pattern: &str, escape: Option<char>) -> Result<Vec<PatternToken>, LikeError> {
    let mut tokens = Vec::new();
    let mut chars = pattern.chars();
    while let Some(c) = chars.next() {
        if Some(c) == escape {
            match chars.next() {
                Some(next) => tokens.push(PatternToken::Literal(next)),
                None => {
                    return Err(LikeError {
                        message: "LIKE pattern ends with escape character".into(),
                    })
                }
            }
        } else if c == '%' {
            // Collapse adjacent % runs.
            if tokens.last() != Some(&PatternToken::AnyRun) {
                tokens.push(PatternToken::AnyRun);
            }
        } else if c == '_' {
            tokens.push(PatternToken::AnyOne);
        } else {
            tokens.push(PatternToken::Literal(c));
        }
    }
    Ok(tokens)
}

/// Returns whether `text` matches `pattern` under SQL LIKE rules.
pub fn like_match(text: &str, pattern: &str, escape: Option<char>) -> Result<bool, LikeError> {
    let tokens = compile(pattern, escape)?;
    let chars: Vec<char> = text.chars().collect();
    Ok(matches_from(&chars, 0, &tokens, 0))
}

fn matches_from(text: &[char], ti: usize, tokens: &[PatternToken], pi: usize) -> bool {
    if pi == tokens.len() {
        return ti == text.len();
    }
    match tokens[pi] {
        PatternToken::Literal(c) => {
            ti < text.len() && text[ti] == c && matches_from(text, ti + 1, tokens, pi + 1)
        }
        PatternToken::AnyOne => ti < text.len() && matches_from(text, ti + 1, tokens, pi + 1),
        PatternToken::AnyRun => {
            // Try every split point; tail-first keeps common suffix
            // patterns (`%xyz`) cheap.
            (ti..=text.len()).any(|next| matches_from(text, next, tokens, pi + 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(text: &str, pattern: &str) -> bool {
        like_match(text, pattern, None).unwrap()
    }

    #[test]
    fn literal_match() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "abd"));
        assert!(!m("abc", "ab"));
    }

    #[test]
    fn percent_wildcard() {
        assert!(m("abcdef", "a%f"));
        assert!(m("af", "a%f"));
        assert!(m("anything", "%"));
        assert!(m("", "%"));
        assert!(!m("abc", "a%d"));
    }

    #[test]
    fn underscore_wildcard() {
        assert!(m("abc", "a_c"));
        assert!(!m("ac", "a_c"));
        assert!(m("abc", "___"));
        assert!(!m("ab", "___"));
    }

    #[test]
    fn combined_wildcards() {
        assert!(m("customer", "c%_r"));
        assert!(m("Sue", "S%"));
        assert!(!m("Joe", "S%"));
    }

    #[test]
    fn escape_makes_wildcards_literal() {
        assert!(like_match("50%", "50!%", Some('!')).unwrap());
        assert!(!like_match("50x", "50!%", Some('!')).unwrap());
        assert!(like_match("a_b", "a!_b", Some('!')).unwrap());
        assert!(!like_match("axb", "a!_b", Some('!')).unwrap());
    }

    #[test]
    fn trailing_escape_is_error() {
        assert!(like_match("x", "x!", Some('!')).is_err());
    }

    #[test]
    fn adjacent_percents_collapse() {
        assert!(m("abc", "a%%c"));
    }

    #[test]
    fn unicode_counts_characters() {
        assert!(m("héllo", "h_llo"));
    }
}
