//! Materialized relations — the working value of the executor.

use crate::value::SqlValue;
use aldsp_catalog::SqlColumnType;

/// Metadata for one output column of a relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnInfo {
    /// The column's (output) name.
    pub name: String,
    /// The range variable / table the column came from, when it still has
    /// one (columns of expressions don't).
    pub qualifier: Option<String>,
    /// Declared or inferred type; `None` when unknown (e.g. NULL literal).
    pub sql_type: Option<SqlColumnType>,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

impl ColumnInfo {
    /// Creates a column description.
    pub fn new(
        name: impl Into<String>,
        qualifier: Option<String>,
        sql_type: Option<SqlColumnType>,
        nullable: bool,
    ) -> ColumnInfo {
        ColumnInfo {
            name: name.into(),
            qualifier,
            sql_type,
            nullable,
        }
    }
}

/// A materialized relation: column metadata plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    /// Column descriptions, in order.
    pub columns: Vec<ColumnInfo>,
    /// Rows; each row has exactly `columns.len()` values.
    pub rows: Vec<Vec<SqlValue>>,
}

impl Relation {
    /// An empty relation with the given columns.
    pub fn with_columns(columns: Vec<ColumnInfo>) -> Relation {
        Relation {
            columns,
            rows: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Finds columns matching a (possibly qualified) reference. Returns
    /// the indices of every match — the caller decides whether >1 is an
    /// ambiguity error.
    pub fn find_columns(&self, qualifier: Option<&str>, name: &str) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name == name
                    && match qualifier {
                        None => true,
                        Some(q) => c.qualifier.as_deref() == Some(q),
                    }
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all columns belonging to `qualifier` (for `T.*`).
    pub fn columns_of(&self, qualifier: &str) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.qualifier.as_deref() == Some(qualifier))
            .map(|(i, _)| i)
            .collect()
    }

    /// Cross product with another relation (used by comma FROM lists and
    /// as the base step of join evaluation).
    pub fn cross_join(&self, other: &Relation) -> Relation {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        let mut rows = Vec::with_capacity(self.rows.len() * other.rows.len());
        for left in &self.rows {
            for right in &other.rows {
                let mut row = left.clone();
                row.extend(right.iter().cloned());
                rows.push(row);
            }
        }
        Relation { columns, rows }
    }

    /// A row of all NULLs matching this relation's arity (outer-join
    /// padding).
    pub fn null_row(&self) -> Vec<SqlValue> {
        vec![SqlValue::Null; self.arity()]
    }

    /// A canonical duplicate-elimination key for a row.
    pub fn row_key(row: &[SqlValue]) -> String {
        let mut key = String::new();
        for v in row {
            key.push_str(&v.group_key());
            key.push('\u{1}');
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        Relation {
            columns: vec![
                ColumnInfo::new("ID", Some("T".into()), Some(SqlColumnType::Integer), false),
                ColumnInfo::new("NAME", Some("T".into()), Some(SqlColumnType::Varchar), true),
                ColumnInfo::new("ID", Some("U".into()), Some(SqlColumnType::Integer), false),
            ],
            rows: vec![vec![
                SqlValue::Int(1),
                SqlValue::Str("a".into()),
                SqlValue::Int(2),
            ]],
        }
    }

    #[test]
    fn qualified_lookup() {
        let r = rel();
        assert_eq!(r.find_columns(Some("T"), "ID"), vec![0]);
        assert_eq!(r.find_columns(Some("U"), "ID"), vec![2]);
    }

    #[test]
    fn unqualified_lookup_reports_all_matches() {
        let r = rel();
        assert_eq!(r.find_columns(None, "ID"), vec![0, 2]);
        assert_eq!(r.find_columns(None, "NAME"), vec![1]);
        assert!(r.find_columns(None, "MISSING").is_empty());
    }

    #[test]
    fn qualified_wildcard_indices() {
        let r = rel();
        assert_eq!(r.columns_of("T"), vec![0, 1]);
        assert_eq!(r.columns_of("U"), vec![2]);
    }

    #[test]
    fn cross_join_shapes() {
        let a = Relation {
            columns: vec![ColumnInfo::new(
                "X",
                None,
                Some(SqlColumnType::Integer),
                false,
            )],
            rows: vec![vec![SqlValue::Int(1)], vec![SqlValue::Int(2)]],
        };
        let b = Relation {
            columns: vec![ColumnInfo::new(
                "Y",
                None,
                Some(SqlColumnType::Integer),
                false,
            )],
            rows: vec![vec![SqlValue::Int(10)], vec![SqlValue::Int(20)]],
        };
        let c = a.cross_join(&b);
        assert_eq!(c.arity(), 2);
        assert_eq!(c.rows.len(), 4);
        assert_eq!(c.rows[3], vec![SqlValue::Int(2), SqlValue::Int(20)]);
    }

    #[test]
    fn row_keys_collapse_numeric_types() {
        let a = vec![SqlValue::Int(1), SqlValue::Null];
        let b = vec![SqlValue::Decimal(1.0), SqlValue::Null];
        assert_eq!(Relation::row_key(&a), Relation::row_key(&b));
    }
}
