//! Named tables — the physical layer behind data services.

use crate::relation::{ColumnInfo, Relation};
use crate::value::SqlValue;
use aldsp_catalog::TableSchema;
use std::collections::HashMap;

/// A stored table: its schema plus rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema (shared with the catalog layer).
    pub schema: TableSchema,
    /// Stored rows.
    pub rows: Vec<Vec<SqlValue>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Appends a row after checking its arity.
    ///
    /// # Panics
    /// Panics when the row arity does not match the schema — this is a
    /// data-loading programming error, not a runtime condition.
    pub fn insert(&mut self, row: Vec<SqlValue>) {
        assert_eq!(
            row.len(),
            self.schema.columns.len(),
            "row arity mismatch for table {}",
            self.schema.table_name
        );
        self.rows.push(row);
    }

    /// Materializes the table as a [`Relation`], with every column
    /// qualified by `qualifier` (the range variable in the FROM clause).
    pub fn scan(&self, qualifier: &str) -> Relation {
        let columns = self
            .schema
            .columns
            .iter()
            .map(|c| {
                ColumnInfo::new(
                    c.name.clone(),
                    Some(qualifier.to_string()),
                    Some(c.sql_type),
                    c.nullable,
                )
            })
            .collect();
        Relation {
            columns,
            rows: self.rows.clone(),
        }
    }
}

/// A collection of named tables. Lookup is by bare table name — the
/// catalog layer resolves qualified SQL names down to these.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Adds (or replaces) a table.
    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.schema.table_name.clone(), table);
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable lookup (data loading).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Table names (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_catalog::{ColumnMeta, SqlColumnType};

    fn schema() -> TableSchema {
        TableSchema {
            table_name: "T".into(),
            row_element: "T".into(),
            namespace: "ld:P/T".into(),
            schema_location: "ld:P/schemas/T.xsd".into(),
            columns: vec![
                ColumnMeta::new("ID", SqlColumnType::Integer, false),
                ColumnMeta::new("NAME", SqlColumnType::Varchar, true),
            ],
        }
    }

    #[test]
    fn scan_qualifies_columns() {
        let mut t = Table::new(schema());
        t.insert(vec![SqlValue::Int(1), SqlValue::Str("a".into())]);
        let r = t.scan("X");
        assert_eq!(r.columns[0].qualifier.as_deref(), Some("X"));
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(schema());
        t.insert(vec![SqlValue::Int(1)]);
    }

    #[test]
    fn database_lookup() {
        let mut db = Database::new();
        db.add_table(Table::new(schema()));
        assert!(db.table("T").is_some());
        assert!(db.table("U").is_none());
        db.table_mut("T")
            .unwrap()
            .insert(vec![SqlValue::Int(1), SqlValue::Null]);
        assert_eq!(db.table("T").unwrap().rows.len(), 1);
    }
}
