//! Runtime SQL values.
//!
//! The representation deliberately parallels `aldsp_xml::Atomic` (integers
//! are `i64`, decimals are `f64`, dates are ISO strings) so that the
//! relational oracle and the XQuery evaluator agree bit-for-bit in
//! differential tests — see DESIGN.md §2 on the decimal substitution.

use aldsp_catalog::SqlColumnType;
use aldsp_xml::Atomic;
use std::cmp::Ordering;
use std::fmt;

/// A runtime SQL value. `Null` is a first-class member (SQL's three-valued
/// logic needs it everywhere).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// SMALLINT/INTEGER/BIGINT.
    Int(i64),
    /// DECIMAL/NUMERIC (f64-backed, see crate docs).
    Decimal(f64),
    /// REAL/DOUBLE.
    Double(f64),
    /// CHAR/VARCHAR.
    Str(String),
    /// BOOLEAN.
    Bool(bool),
    /// DATE in ISO `YYYY-MM-DD` form.
    Date(String),
}

/// Errors raised during evaluation (type mismatches, overflow, bad casts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ValueError {}

fn err(message: impl Into<String>) -> ValueError {
    ValueError {
        message: message.into(),
    }
}

impl SqlValue {
    /// True for NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// The value's dynamic SQL type; `None` for NULL (untyped).
    pub fn sql_type(&self) -> Option<SqlColumnType> {
        match self {
            SqlValue::Null => None,
            SqlValue::Int(_) => Some(SqlColumnType::Bigint),
            SqlValue::Decimal(_) => Some(SqlColumnType::Decimal),
            SqlValue::Double(_) => Some(SqlColumnType::Double),
            SqlValue::Str(_) => Some(SqlColumnType::Varchar),
            SqlValue::Bool(_) => Some(SqlColumnType::Boolean),
            SqlValue::Date(_) => Some(SqlColumnType::Date),
        }
    }

    /// Numeric view for promotion arithmetic.
    fn as_f64(&self) -> Option<f64> {
        match self {
            SqlValue::Int(i) => Some(*i as f64),
            SqlValue::Decimal(d) | SqlValue::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// SQL comparison. NULL compared with anything is `None` (UNKNOWN);
    /// incomparable types are an error.
    pub fn compare(&self, other: &SqlValue) -> Result<Option<Ordering>, ValueError> {
        use SqlValue::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(None),
            (Int(a), Int(b)) => Ok(Some(a.cmp(b))),
            (Str(a), Str(b)) => Ok(Some(a.cmp(b))),
            (Bool(a), Bool(b)) => Ok(Some(a.cmp(b))),
            (Date(a), Date(b)) => Ok(Some(a.cmp(b))),
            // Dates meet strings when literals are compared to DATE
            // columns in tools that skip the DATE keyword.
            (Date(a), Str(b)) | (Str(a), Date(b)) => Ok(Some(a.cmp(b))),
            _ => {
                let a = self
                    .as_f64()
                    .ok_or_else(|| err(format!("cannot compare {self:?} with {other:?}")))?;
                let b = other
                    .as_f64()
                    .ok_or_else(|| err(format!("cannot compare {self:?} with {other:?}")))?;
                Ok(a.partial_cmp(&b))
            }
        }
    }

    /// Total ordering for ORDER BY and grouping keys: NULL sorts lowest
    /// ("empty least", matching XQuery's default and therefore the
    /// translated queries).
    pub fn sort_cmp(&self, other: &SqlValue) -> Ordering {
        use SqlValue::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            _ => self
                .compare(other)
                .ok()
                .flatten()
                .unwrap_or(Ordering::Equal),
        }
    }

    /// Grouping/duplicate-elimination equality: NULLs are equal to each
    /// other (SQL's "not distinct from"), values equal per [`SqlValue::compare`].
    pub fn group_eq(&self, other: &SqlValue) -> bool {
        match (self, other) {
            (SqlValue::Null, SqlValue::Null) => true,
            (SqlValue::Null, _) | (_, SqlValue::Null) => false,
            _ => self.compare(other).ok().flatten() == Some(Ordering::Equal),
        }
    }

    /// A key string for hashing groups/duplicates consistently with
    /// [`SqlValue::group_eq`]: numeric values of equal magnitude collapse.
    pub fn group_key(&self) -> String {
        match self {
            SqlValue::Null => "\u{0}N".to_string(),
            SqlValue::Int(i) => format!("n{}", *i as f64),
            SqlValue::Decimal(d) | SqlValue::Double(d) => format!("n{d}"),
            SqlValue::Str(s) => format!("s{s}"),
            SqlValue::Bool(b) => format!("b{b}"),
            SqlValue::Date(d) => format!("d{d}"),
        }
    }

    /// Arithmetic with SQL type promotion: Int⊕Int→Int (`/` truncates
    /// toward zero), anything involving Double→Double, else Decimal.
    pub fn arith(&self, op: ArithOp, other: &SqlValue) -> Result<SqlValue, ValueError> {
        use SqlValue::*;
        if self.is_null() || other.is_null() {
            return Ok(Null);
        }
        match (self, other) {
            (Int(a), Int(b)) => {
                let result = match op {
                    ArithOp::Add => a.checked_add(*b),
                    ArithOp::Sub => a.checked_sub(*b),
                    ArithOp::Mul => a.checked_mul(*b),
                    ArithOp::Div => {
                        if *b == 0 {
                            return Err(err("division by zero"));
                        }
                        a.checked_div(*b)
                    }
                };
                result.map(Int).ok_or_else(|| err("integer overflow"))
            }
            _ => {
                let a = self
                    .as_f64()
                    .ok_or_else(|| err(format!("non-numeric operand {self:?}")))?;
                let b = other
                    .as_f64()
                    .ok_or_else(|| err(format!("non-numeric operand {other:?}")))?;
                let r = match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => {
                        if b == 0.0 {
                            return Err(err("division by zero"));
                        }
                        a / b
                    }
                };
                let double = matches!(self, Double(_)) || matches!(other, Double(_));
                Ok(if double { Double(r) } else { Decimal(r) })
            }
        }
    }

    /// String concatenation (`||`); NULL-propagating, non-strings use
    /// their display form (tools rely on implicit char conversion).
    pub fn concat(&self, other: &SqlValue) -> SqlValue {
        if self.is_null() || other.is_null() {
            return SqlValue::Null;
        }
        SqlValue::Str(format!("{}{}", self.display_text(), other.display_text()))
    }

    /// The text a result set shows for this value ("NULL" never appears —
    /// null checks happen before display).
    pub fn display_text(&self) -> String {
        match self {
            SqlValue::Null => String::new(),
            SqlValue::Int(i) => i.to_string(),
            SqlValue::Decimal(d) => aldsp_xml::atomic::format_decimal(*d),
            SqlValue::Double(d) => aldsp_xml::atomic::format_double(*d),
            SqlValue::Str(s) => s.clone(),
            SqlValue::Bool(b) => b.to_string(),
            SqlValue::Date(d) => d.clone(),
        }
    }

    /// Converts to the XML atomic the data-service layer would return for
    /// this value; `None` for NULL (element absent).
    pub fn to_atomic(&self) -> Option<Atomic> {
        match self {
            SqlValue::Null => None,
            SqlValue::Int(i) => Some(Atomic::Integer(*i)),
            SqlValue::Decimal(d) => Some(Atomic::Decimal(*d)),
            SqlValue::Double(d) => Some(Atomic::Double(*d)),
            SqlValue::Str(s) => Some(Atomic::String(s.clone())),
            SqlValue::Bool(b) => Some(Atomic::Boolean(*b)),
            SqlValue::Date(d) => Some(Atomic::Date(d.clone())),
        }
    }

    /// Converts back from an XML atomic (driver result parsing).
    pub fn from_atomic(a: &Atomic) -> SqlValue {
        match a {
            Atomic::Integer(i) => SqlValue::Int(*i),
            Atomic::Decimal(d) => SqlValue::Decimal(*d),
            Atomic::Double(d) => SqlValue::Double(*d),
            Atomic::String(s) => SqlValue::Str(s.clone()),
            Atomic::Boolean(b) => SqlValue::Bool(*b),
            Atomic::Date(d) => SqlValue::Date(d.clone()),
            // Untyped content arriving from the XML layer reads as text.
            Atomic::Untyped(s) => SqlValue::Str(s.clone()),
        }
    }

    /// CAST to a SQL type class.
    pub fn cast_to(&self, target: SqlColumnType) -> Result<SqlValue, ValueError> {
        use SqlColumnType as T;
        if self.is_null() {
            return Ok(SqlValue::Null);
        }
        let fail = || err(format!("cannot cast {self:?} to {}", target.sql_name()));
        match target {
            T::Smallint | T::Integer | T::Bigint => match self {
                SqlValue::Int(i) => Ok(SqlValue::Int(*i)),
                SqlValue::Decimal(d) | SqlValue::Double(d) => Ok(SqlValue::Int(*d as i64)),
                SqlValue::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(SqlValue::Int)
                    .map_err(|_| fail()),
                SqlValue::Bool(b) => Ok(SqlValue::Int(i64::from(*b))),
                _ => Err(fail()),
            },
            T::Decimal => match self {
                SqlValue::Int(i) => Ok(SqlValue::Decimal(*i as f64)),
                SqlValue::Decimal(d) | SqlValue::Double(d) => Ok(SqlValue::Decimal(*d)),
                SqlValue::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(SqlValue::Decimal)
                    .map_err(|_| fail()),
                _ => Err(fail()),
            },
            T::Real | T::Double => match self {
                SqlValue::Int(i) => Ok(SqlValue::Double(*i as f64)),
                SqlValue::Decimal(d) | SqlValue::Double(d) => Ok(SqlValue::Double(*d)),
                SqlValue::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(SqlValue::Double)
                    .map_err(|_| fail()),
                _ => Err(fail()),
            },
            T::Char | T::Varchar => Ok(SqlValue::Str(self.display_text())),
            T::Date => match self {
                SqlValue::Date(d) => Ok(SqlValue::Date(d.clone())),
                SqlValue::Str(s) if aldsp_xml::atomic::is_iso_date(s.trim()) => {
                    Ok(SqlValue::Date(s.trim().to_string()))
                }
                _ => Err(fail()),
            },
            T::Boolean => match self {
                SqlValue::Bool(b) => Ok(SqlValue::Bool(*b)),
                SqlValue::Int(i) => Ok(SqlValue::Bool(*i != 0)),
                _ => Err(fail()),
            },
        }
    }
}

/// The four arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Null => f.write_str("NULL"),
            other => f.write_str(&other.display_text()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(
            SqlValue::Null
                .arith(ArithOp::Add, &SqlValue::Int(1))
                .unwrap(),
            SqlValue::Null
        );
    }

    #[test]
    fn integer_division_truncates() {
        assert_eq!(
            SqlValue::Int(7)
                .arith(ArithOp::Div, &SqlValue::Int(2))
                .unwrap(),
            SqlValue::Int(3)
        );
        assert_eq!(
            SqlValue::Int(-7)
                .arith(ArithOp::Div, &SqlValue::Int(2))
                .unwrap(),
            SqlValue::Int(-3)
        );
    }

    #[test]
    fn division_by_zero_is_error() {
        assert!(SqlValue::Int(1)
            .arith(ArithOp::Div, &SqlValue::Int(0))
            .is_err());
        assert!(SqlValue::Decimal(1.0)
            .arith(ArithOp::Div, &SqlValue::Decimal(0.0))
            .is_err());
    }

    #[test]
    fn promotion_int_decimal_double() {
        assert_eq!(
            SqlValue::Int(1)
                .arith(ArithOp::Add, &SqlValue::Decimal(0.5))
                .unwrap(),
            SqlValue::Decimal(1.5)
        );
        assert_eq!(
            SqlValue::Decimal(1.0)
                .arith(ArithOp::Mul, &SqlValue::Double(2.0))
                .unwrap(),
            SqlValue::Double(2.0)
        );
    }

    #[test]
    fn null_comparison_is_unknown() {
        assert_eq!(SqlValue::Null.compare(&SqlValue::Int(1)).unwrap(), None);
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            SqlValue::Int(2).compare(&SqlValue::Decimal(2.0)).unwrap(),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn incomparable_types_error() {
        assert!(SqlValue::Int(1)
            .compare(&SqlValue::Str("1".into()))
            .is_err());
    }

    #[test]
    fn sort_null_first() {
        let mut values = [SqlValue::Int(2), SqlValue::Null, SqlValue::Int(1)];
        values.sort_by(|a, b| a.sort_cmp(b));
        assert_eq!(values[0], SqlValue::Null);
        assert_eq!(values[1], SqlValue::Int(1));
    }

    #[test]
    fn group_semantics_nulls_equal() {
        assert!(SqlValue::Null.group_eq(&SqlValue::Null));
        assert!(!SqlValue::Null.group_eq(&SqlValue::Int(0)));
        assert!(SqlValue::Int(1).group_eq(&SqlValue::Decimal(1.0)));
        assert_eq!(
            SqlValue::Int(1).group_key(),
            SqlValue::Decimal(1.0).group_key()
        );
    }

    #[test]
    fn concat_behaviour() {
        assert_eq!(
            SqlValue::Str("a".into()).concat(&SqlValue::Int(1)),
            SqlValue::Str("a1".into())
        );
        assert_eq!(
            SqlValue::Str("a".into()).concat(&SqlValue::Null),
            SqlValue::Null
        );
    }

    #[test]
    fn casts() {
        assert_eq!(
            SqlValue::Str(" 42 ".into())
                .cast_to(SqlColumnType::Integer)
                .unwrap(),
            SqlValue::Int(42)
        );
        assert_eq!(
            SqlValue::Decimal(3.9)
                .cast_to(SqlColumnType::Integer)
                .unwrap(),
            SqlValue::Int(3)
        );
        assert_eq!(
            SqlValue::Int(3).cast_to(SqlColumnType::Varchar).unwrap(),
            SqlValue::Str("3".into())
        );
        assert!(SqlValue::Str("x".into())
            .cast_to(SqlColumnType::Date)
            .is_err());
        assert_eq!(
            SqlValue::Null.cast_to(SqlColumnType::Integer).unwrap(),
            SqlValue::Null
        );
    }

    #[test]
    fn atomic_roundtrip() {
        for v in [
            SqlValue::Int(5),
            SqlValue::Decimal(1.5),
            SqlValue::Double(2.5),
            SqlValue::Str("x".into()),
            SqlValue::Bool(true),
            SqlValue::Date("2006-07-05".into()),
        ] {
            let a = v.to_atomic().unwrap();
            assert_eq!(SqlValue::from_atomic(&a), v);
        }
        assert_eq!(SqlValue::Null.to_atomic(), None);
    }

    #[test]
    fn overflow_is_error() {
        assert!(SqlValue::Int(i64::MAX)
            .arith(ArithOp::Add, &SqlValue::Int(1))
            .is_err());
    }
}
