//! The SQL query executor — the differential-testing oracle.
//!
//! Executes the `aldsp-sql` AST directly over in-memory tables with SQL-92
//! semantics. No optimization: plans are evaluated naively (nested loops,
//! full materialization), because the oracle's only job is to be obviously
//! correct.

use crate::database::Database;
use crate::eval::{eval_expr, truth, EvalContext, Scope};
use crate::relation::{ColumnInfo, Relation};
use crate::value::SqlValue;
use aldsp_catalog::SqlColumnType;
use aldsp_sql::{
    ColumnRef, Expr, FunctionArgs, JoinKind, Literal, OrderItem, Query, QueryBody, Select,
    SelectItem, SetOp, TableRef,
};
use std::collections::HashMap;
use std::fmt;

/// Execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Human-readable description.
    pub message: String,
}

impl ExecError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> ExecError {
        ExecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ExecError {}

/// Executes a top-level query.
pub fn execute_query(
    db: &Database,
    query: &Query,
    params: &[SqlValue],
) -> Result<Relation, ExecError> {
    execute_body_scoped(db, query, params, None)
}

/// Executes a query with an optional enclosing scope (correlated
/// subqueries). Public for use by the expression evaluator.
pub fn execute_body_scoped(
    db: &Database,
    query: &Query,
    params: &[SqlValue],
    outer: Option<&Scope<'_>>,
) -> Result<Relation, ExecError> {
    let ctx = EvalContext { db, params };
    let mut relation = execute_body(&ctx, &query.body, outer)?;
    if !query.order_by.is_empty() {
        sort_relation(&ctx, &mut relation, &query.order_by, outer)?;
    }
    Ok(relation)
}

fn execute_body(
    ctx: &EvalContext<'_>,
    body: &QueryBody,
    outer: Option<&Scope<'_>>,
) -> Result<Relation, ExecError> {
    match body {
        QueryBody::Select(select) => execute_select(ctx, select, outer),
        QueryBody::SetOp {
            left,
            op,
            all,
            right,
        } => {
            let l = execute_body(ctx, left, outer)?;
            let r = execute_body(ctx, right, outer)?;
            if l.arity() != r.arity() {
                return Err(ExecError::new(format!(
                    "set operands have different arity: {} vs {}",
                    l.arity(),
                    r.arity()
                )));
            }
            Ok(apply_set_op(l, r, *op, *all))
        }
    }
}

/// Bag-semantics set operations (SQL-92 §7.10): plain forms eliminate
/// duplicates, ALL forms operate on multiplicities.
fn apply_set_op(left: Relation, right: Relation, op: SetOp, all: bool) -> Relation {
    let columns = left.columns.clone();
    let count = |rel: &Relation| {
        let mut m: HashMap<String, usize> = HashMap::new();
        for row in &rel.rows {
            *m.entry(Relation::row_key(row)).or_insert(0) += 1;
        }
        m
    };
    let rows = match (op, all) {
        (SetOp::Union, true) => {
            let mut rows = left.rows;
            rows.extend(right.rows);
            rows
        }
        (SetOp::Union, false) => {
            let mut seen = HashMap::new();
            let mut rows = Vec::new();
            for row in left.rows.into_iter().chain(right.rows) {
                if seen.insert(Relation::row_key(&row), ()).is_none() {
                    rows.push(row);
                }
            }
            rows
        }
        (SetOp::Intersect, all) => {
            let mut right_counts = count(&right);
            let mut seen: HashMap<String, ()> = HashMap::new();
            let mut rows = Vec::new();
            for row in left.rows {
                let key = Relation::row_key(&row);
                match right_counts.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        if all {
                            *n -= 1;
                            rows.push(row);
                        } else if seen.insert(key, ()).is_none() {
                            rows.push(row);
                        }
                    }
                    _ => {}
                }
            }
            rows
        }
        (SetOp::Except, all) => {
            let mut right_counts = count(&right);
            let mut seen: HashMap<String, ()> = HashMap::new();
            let mut rows = Vec::new();
            for row in left.rows {
                let key = Relation::row_key(&row);
                match right_counts.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        if all {
                            *n -= 1;
                        }
                        // Plain EXCEPT: suppressed entirely.
                    }
                    _ => {
                        // ALL keeps every leftover; plain EXCEPT keeps the
                        // first occurrence only.
                        if all || seen.insert(key, ()).is_none() {
                            rows.push(row);
                        }
                    }
                }
            }
            rows
        }
    };
    Relation { columns, rows }
}

fn execute_select(
    ctx: &EvalContext<'_>,
    select: &Select,
    outer: Option<&Scope<'_>>,
) -> Result<Relation, ExecError> {
    // FROM: cross join the comma list.
    let mut from_rel: Option<Relation> = None;
    for table_ref in &select.from {
        let r = execute_table_ref(ctx, table_ref, outer)?;
        from_rel = Some(match from_rel {
            None => r,
            Some(acc) => acc.cross_join(&r),
        });
    }
    let from_rel = from_rel.ok_or_else(|| ExecError::new("FROM clause is empty"))?;

    // WHERE.
    let mut filtered_rows = Vec::new();
    for row in &from_rel.rows {
        let keep = match &select.where_clause {
            None => true,
            Some(predicate) => {
                let scope = Scope {
                    relation: &from_rel,
                    row,
                    parent: outer,
                };
                truth(&eval_expr(ctx, &scope, predicate)?)? == Some(true)
            }
        };
        if keep {
            filtered_rows.push(row.clone());
        }
    }
    let filtered = Relation {
        columns: from_rel.columns.clone(),
        rows: filtered_rows,
    };

    let has_aggregates = select_has_aggregates(select);
    let mut projected = if !select.group_by.is_empty() || has_aggregates {
        project_grouped(ctx, select, &filtered, outer)?
    } else {
        project_rows(ctx, select, &filtered, outer)?
    };

    if select.distinct {
        let mut seen = HashMap::new();
        projected
            .rows
            .retain(|row| seen.insert(Relation::row_key(row), ()).is_none());
    }
    Ok(projected)
}

fn select_has_aggregates(select: &Select) -> bool {
    let in_items = select.items.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        _ => false,
    });
    in_items
        || select
            .having
            .as_ref()
            .is_some_and(|h| h.contains_aggregate())
}

fn execute_table_ref(
    ctx: &EvalContext<'_>,
    table_ref: &TableRef,
    outer: Option<&Scope<'_>>,
) -> Result<Relation, ExecError> {
    match table_ref {
        TableRef::Table { name, alias } => {
            let table = ctx
                .db
                .table(name.base())
                .ok_or_else(|| ExecError::new(format!("unknown table {name}")))?;
            let qualifier = alias.as_deref().unwrap_or(name.base());
            Ok(table.scan(qualifier))
        }
        TableRef::Derived { query, alias } => {
            let mut rel = execute_body_scoped(ctx.db, query, ctx.params, outer)?;
            // Re-qualify every output column with the range variable.
            for col in &mut rel.columns {
                col.qualifier = Some(alias.clone());
            }
            Ok(rel)
        }
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => {
            let l = execute_table_ref(ctx, left, outer)?;
            let r = execute_table_ref(ctx, right, outer)?;
            execute_join(ctx, l, r, *kind, on.as_ref(), outer)
        }
    }
}

fn execute_join(
    ctx: &EvalContext<'_>,
    left: Relation,
    right: Relation,
    kind: JoinKind,
    on: Option<&Expr>,
    outer: Option<&Scope<'_>>,
) -> Result<Relation, ExecError> {
    let mut columns = left.columns.clone();
    columns.extend(right.columns.iter().cloned());
    let combined = Relation::with_columns(columns);

    let matches_on = |joined: &[SqlValue]| -> Result<bool, ExecError> {
        match on {
            None => Ok(true),
            Some(predicate) => {
                let scope = Scope {
                    relation: &combined,
                    row: joined,
                    parent: outer,
                };
                Ok(truth(&eval_expr(ctx, &scope, predicate)?)? == Some(true))
            }
        }
    };

    let mut rows = Vec::new();
    let mut right_matched = vec![false; right.rows.len()];
    for left_row in &left.rows {
        let mut matched = false;
        for (ri, right_row) in right.rows.iter().enumerate() {
            let mut joined = left_row.clone();
            joined.extend(right_row.iter().cloned());
            if matches_on(&joined)? {
                matched = true;
                right_matched[ri] = true;
                rows.push(joined);
            }
        }
        if !matched && matches!(kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
            let mut padded = left_row.clone();
            padded.extend(right.null_row());
            rows.push(padded);
        }
    }
    if matches!(kind, JoinKind::RightOuter | JoinKind::FullOuter) {
        for (ri, right_row) in right.rows.iter().enumerate() {
            if !right_matched[ri] {
                let mut padded = left.null_row();
                padded.extend(right_row.iter().cloned());
                rows.push(padded);
            }
        }
    }
    Ok(Relation {
        columns: combined.columns,
        rows,
    })
}

// ---- projection -------------------------------------------------------

/// Expands select items into `(expr, output name, qualifier)` triples,
/// resolving wildcards against the FROM relation.
fn expand_items(
    select: &Select,
    from_rel: &Relation,
) -> Result<Vec<(Expr, String, Option<String>)>, ExecError> {
    let mut out = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                for col in &from_rel.columns {
                    out.push((
                        Expr::Column(ColumnRef {
                            qualifier: col.qualifier.clone(),
                            name: col.name.clone(),
                        }),
                        col.name.clone(),
                        col.qualifier.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let indices = from_rel.columns_of(q);
                if indices.is_empty() {
                    return Err(ExecError::new(format!("unknown range variable {q}")));
                }
                for i in indices {
                    let col = &from_rel.columns[i];
                    out.push((
                        Expr::Column(ColumnRef::qualified(q.clone(), col.name.clone())),
                        col.name.clone(),
                        Some(q.clone()),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let (name, qualifier) = match (alias, expr) {
                    (Some(a), _) => (a.clone(), None),
                    (None, Expr::Column(c)) => (c.name.clone(), c.qualifier.clone()),
                    (None, _) => (format!("EXPR{}", out.len() + 1), None),
                };
                out.push((expr.clone(), name, qualifier));
            }
        }
    }
    Ok(out)
}

fn project_rows(
    ctx: &EvalContext<'_>,
    select: &Select,
    filtered: &Relation,
    outer: Option<&Scope<'_>>,
) -> Result<Relation, ExecError> {
    let items = expand_items(select, filtered)?;
    let columns = items
        .iter()
        .map(|(expr, name, qualifier)| {
            ColumnInfo::new(
                name.clone(),
                qualifier.clone(),
                infer_expr_type(expr, filtered),
                true,
            )
        })
        .collect();
    let mut rows = Vec::with_capacity(filtered.rows.len());
    for row in &filtered.rows {
        let scope = Scope {
            relation: filtered,
            row,
            parent: outer,
        };
        let mut out_row = Vec::with_capacity(items.len());
        for (expr, _, _) in &items {
            out_row.push(eval_expr(ctx, &scope, expr)?);
        }
        rows.push(out_row);
    }
    Ok(Relation { columns, rows })
}

// ---- grouping ---------------------------------------------------------

fn project_grouped(
    ctx: &EvalContext<'_>,
    select: &Select,
    filtered: &Relation,
    outer: Option<&Scope<'_>>,
) -> Result<Relation, ExecError> {
    let items = expand_items(select, filtered)?;

    // Wildcards are illegal in a grouped query unless every FROM column is
    // a group key; simplest correct behaviour is to validate item-by-item
    // during rewriting below.

    // Group rows by key values.
    let mut groups: Vec<(Vec<SqlValue>, Vec<Vec<SqlValue>>)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for row in &filtered.rows {
        let scope = Scope {
            relation: filtered,
            row,
            parent: outer,
        };
        let mut keys = Vec::with_capacity(select.group_by.len());
        for k in &select.group_by {
            keys.push(eval_expr(ctx, &scope, k)?);
        }
        let key_str = Relation::row_key(&keys);
        match index.get(&key_str) {
            Some(&g) => groups[g].1.push(row.clone()),
            None => {
                index.insert(key_str, groups.len());
                groups.push((keys, vec![row.clone()]));
            }
        }
    }
    // No GROUP BY but aggregates: one group over everything, even empty.
    if select.group_by.is_empty() && groups.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let columns: Vec<ColumnInfo> = items
        .iter()
        .map(|(expr, name, qualifier)| {
            ColumnInfo::new(
                name.clone(),
                qualifier.clone(),
                infer_expr_type(expr, filtered),
                true,
            )
        })
        .collect();

    let mut rows = Vec::with_capacity(groups.len());
    for (keys, group_rows) in &groups {
        // HAVING.
        if let Some(having) = &select.having {
            let v = eval_grouped(ctx, select, filtered, keys, group_rows, having, outer)?;
            if truth(&v)? != Some(true) {
                continue;
            }
        }
        let mut out_row = Vec::with_capacity(items.len());
        for (expr, _, _) in &items {
            out_row.push(eval_grouped(
                ctx, select, filtered, keys, group_rows, expr, outer,
            )?);
        }
        rows.push(out_row);
    }
    Ok(Relation { columns, rows })
}

/// Evaluates an expression in grouped context: group-key subexpressions
/// become their key values, aggregate calls are computed over the group's
/// rows, and anything else recurses structurally. A bare column that is
/// neither a group key nor inside an aggregate is a semantic error
/// (SQL-92's GROUP BY rule — the paper's `SELECT EMPNO ... GROUP BY
/// EMPNAME` example, §3.4.3).
fn eval_grouped(
    ctx: &EvalContext<'_>,
    select: &Select,
    from_rel: &Relation,
    keys: &[SqlValue],
    group_rows: &[Vec<SqlValue>],
    expr: &Expr,
    outer: Option<&Scope<'_>>,
) -> Result<SqlValue, ExecError> {
    // Group key match (structural, with qualifier leniency for columns).
    for (i, key_expr) in select.group_by.iter().enumerate() {
        if exprs_match_lenient(expr, key_expr) {
            return Ok(keys[i].clone());
        }
    }
    // Aggregate call: compute over the group.
    if expr.is_aggregate_call() {
        return eval_aggregate(ctx, from_rel, group_rows, expr, outer);
    }
    match expr {
        Expr::Column(c) => Err(ExecError::new(format!(
            "column {c} must appear in GROUP BY or inside an aggregate"
        ))),
        Expr::Literal(_) | Expr::Parameter(_) => {
            let scope = empty_scope(from_rel);
            eval_expr(ctx, &scope_with_parent(&scope, outer), expr)
        }
        Expr::Unary { op, expr: inner } => {
            let v = eval_grouped(ctx, select, from_rel, keys, group_rows, inner, outer)?;
            eval_on_values(
                ctx,
                from_rel,
                outer,
                &Expr::Unary {
                    op: *op,
                    expr: Box::new(value_to_literal_expr(&v)),
                },
            )
        }
        Expr::Binary { left, op, right } => {
            let l = eval_grouped(ctx, select, from_rel, keys, group_rows, left, outer)?;
            let r = eval_grouped(ctx, select, from_rel, keys, group_rows, right, outer)?;
            eval_on_values(
                ctx,
                from_rel,
                outer,
                &Expr::Binary {
                    left: Box::new(value_to_literal_expr(&l)),
                    op: *op,
                    right: Box::new(value_to_literal_expr(&r)),
                },
            )
        }
        Expr::Function { name, args } => match args {
            FunctionArgs::Star => Err(ExecError::new(format!("{name}(*) is not scalar"))),
            FunctionArgs::List { distinct, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(eval_grouped(
                        ctx, select, from_rel, keys, group_rows, a, outer,
                    )?);
                }
                let rebuilt = Expr::Function {
                    name: name.clone(),
                    args: FunctionArgs::List {
                        distinct: *distinct,
                        args: values.iter().map(value_to_literal_expr).collect(),
                    },
                };
                eval_on_values(ctx, from_rel, outer, &rebuilt)
            }
        },
        Expr::Case {
            operand,
            branches,
            else_result,
        } => {
            let g = |e: &Expr| eval_grouped(ctx, select, from_rel, keys, group_rows, e, outer);
            let rebuilt = Expr::Case {
                operand: match operand {
                    Some(o) => Some(Box::new(value_to_literal_expr(&g(o)?))),
                    None => None,
                },
                branches: branches
                    .iter()
                    .map(|(w, t)| {
                        Ok((value_to_literal_expr(&g(w)?), value_to_literal_expr(&g(t)?)))
                    })
                    .collect::<Result<_, ExecError>>()?,
                else_result: match else_result {
                    Some(e) => Some(Box::new(value_to_literal_expr(&g(e)?))),
                    None => None,
                },
            };
            eval_on_values(ctx, from_rel, outer, &rebuilt)
        }
        Expr::Cast {
            expr: inner,
            target,
        } => {
            let v = eval_grouped(ctx, select, from_rel, keys, group_rows, inner, outer)?;
            eval_on_values(
                ctx,
                from_rel,
                outer,
                &Expr::Cast {
                    expr: Box::new(value_to_literal_expr(&v)),
                    target: *target,
                },
            )
        }
        Expr::IsNull {
            expr: inner,
            negated,
        } => {
            let v = eval_grouped(ctx, select, from_rel, keys, group_rows, inner, outer)?;
            Ok(SqlValue::Bool(v.is_null() != *negated))
        }
        // Remaining predicate forms in HAVING: rebuild over computed
        // operand values where the operands are grouped expressions.
        Expr::Between {
            expr: e,
            low,
            high,
            negated,
        } => {
            let g = |x: &Expr| eval_grouped(ctx, select, from_rel, keys, group_rows, x, outer);
            let rebuilt = Expr::Between {
                expr: Box::new(value_to_literal_expr(&g(e)?)),
                low: Box::new(value_to_literal_expr(&g(low)?)),
                high: Box::new(value_to_literal_expr(&g(high)?)),
                negated: *negated,
            };
            eval_on_values(ctx, from_rel, outer, &rebuilt)
        }
        Expr::InList {
            expr: e,
            list,
            negated,
        } => {
            let g = |x: &Expr| eval_grouped(ctx, select, from_rel, keys, group_rows, x, outer);
            let rebuilt = Expr::InList {
                expr: Box::new(value_to_literal_expr(&g(e)?)),
                list: list
                    .iter()
                    .map(|x| Ok(value_to_literal_expr(&g(x)?)))
                    .collect::<Result<_, ExecError>>()?,
                negated: *negated,
            };
            eval_on_values(ctx, from_rel, outer, &rebuilt)
        }
        Expr::Like {
            expr: e,
            pattern,
            escape,
            negated,
        } => {
            let g = |x: &Expr| eval_grouped(ctx, select, from_rel, keys, group_rows, x, outer);
            let rebuilt = Expr::Like {
                expr: Box::new(value_to_literal_expr(&g(e)?)),
                pattern: Box::new(value_to_literal_expr(&g(pattern)?)),
                escape: match escape {
                    Some(x) => Some(Box::new(value_to_literal_expr(&g(x)?))),
                    None => None,
                },
                negated: *negated,
            };
            eval_on_values(ctx, from_rel, outer, &rebuilt)
        }
        Expr::Substring {
            expr: e,
            start,
            length,
        } => {
            let g = |x: &Expr| eval_grouped(ctx, select, from_rel, keys, group_rows, x, outer);
            let rebuilt = Expr::Substring {
                expr: Box::new(value_to_literal_expr(&g(e)?)),
                start: Box::new(value_to_literal_expr(&g(start)?)),
                length: match length {
                    Some(x) => Some(Box::new(value_to_literal_expr(&g(x)?))),
                    None => None,
                },
            };
            eval_on_values(ctx, from_rel, outer, &rebuilt)
        }
        Expr::Trim {
            side,
            trim_chars,
            expr: e,
        } => {
            let g = |x: &Expr| eval_grouped(ctx, select, from_rel, keys, group_rows, x, outer);
            let rebuilt = Expr::Trim {
                side: *side,
                trim_chars: match trim_chars {
                    Some(x) => Some(Box::new(value_to_literal_expr(&g(x)?))),
                    None => None,
                },
                expr: Box::new(value_to_literal_expr(&g(e)?)),
            };
            eval_on_values(ctx, from_rel, outer, &rebuilt)
        }
        Expr::Position { needle, haystack } => {
            let g = |x: &Expr| eval_grouped(ctx, select, from_rel, keys, group_rows, x, outer);
            let rebuilt = Expr::Position {
                needle: Box::new(value_to_literal_expr(&g(needle)?)),
                haystack: Box::new(value_to_literal_expr(&g(haystack)?)),
            };
            eval_on_values(ctx, from_rel, outer, &rebuilt)
        }
        // Subqueries in grouped context see the outer scope only.
        Expr::ScalarSubquery(_)
        | Expr::Exists { .. }
        | Expr::InSubquery { .. }
        | Expr::Quantified { .. } => {
            let scope = empty_scope(from_rel);
            eval_expr(ctx, &scope_with_parent(&scope, outer), expr)
        }
    }
}

/// Evaluates an expression containing no column references (operands have
/// been replaced with literal values).
fn eval_on_values(
    ctx: &EvalContext<'_>,
    from_rel: &Relation,
    outer: Option<&Scope<'_>>,
    expr: &Expr,
) -> Result<SqlValue, ExecError> {
    let scope = empty_scope(from_rel);
    eval_expr(ctx, &scope_with_parent(&scope, outer), expr)
}

/// A scope over an empty zero-column relation: column lookups never match
/// locally and fall through to the parent (used where operands have already
/// been reduced to literal values).
fn empty_scope(_from_rel: &Relation) -> Scope<'static> {
    static EMPTY_ROW: &[SqlValue] = &[];
    static EMPTY_RELATION: std::sync::OnceLock<Relation> = std::sync::OnceLock::new();
    Scope {
        relation: EMPTY_RELATION.get_or_init(Relation::default),
        row: EMPTY_ROW,
        parent: None,
    }
}

fn scope_with_parent<'a>(scope: &Scope<'a>, parent: Option<&'a Scope<'a>>) -> Scope<'a> {
    Scope {
        relation: scope.relation,
        row: scope.row,
        parent,
    }
}

/// Wraps a computed value back into a literal expression so rebuilt nodes
/// can reuse the ordinary evaluator.
fn value_to_literal_expr(v: &SqlValue) -> Expr {
    match v {
        SqlValue::Null => Expr::Literal(Literal::Null),
        SqlValue::Int(i) => Expr::Literal(Literal::Integer(*i)),
        SqlValue::Decimal(d) => Expr::Literal(Literal::Decimal(*d)),
        SqlValue::Double(d) => Expr::Literal(Literal::Double(*d)),
        SqlValue::Str(s) => Expr::Literal(Literal::String(s.clone())),
        SqlValue::Date(d) => Expr::Literal(Literal::Date(d.clone())),
        SqlValue::Bool(b) => {
            // No boolean literal in SQL-92; encode as 1=1 / 1=0.
            let lit = if *b { 1 } else { 0 };
            Expr::Binary {
                left: Box::new(Expr::Literal(Literal::Integer(lit))),
                op: aldsp_sql::BinaryOp::Compare(aldsp_sql::CompareOp::Eq),
                right: Box::new(Expr::Literal(Literal::Integer(1))),
            }
        }
    }
}

/// Structural equality with qualifier leniency: `GROUP BY T.C` matches a
/// select item `C` (and vice versa) when names agree.
fn exprs_match_lenient(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Column(ca), Expr::Column(cb)) => {
            ca.name == cb.name
                && (ca.qualifier == cb.qualifier
                    || ca.qualifier.is_none()
                    || cb.qualifier.is_none())
        }
        _ => a == b,
    }
}

fn eval_aggregate(
    ctx: &EvalContext<'_>,
    from_rel: &Relation,
    group_rows: &[Vec<SqlValue>],
    expr: &Expr,
    outer: Option<&Scope<'_>>,
) -> Result<SqlValue, ExecError> {
    let Expr::Function { name, args } = expr else {
        unreachable!("caller checked is_aggregate_call");
    };
    // COUNT(*): the group's cardinality.
    let (distinct, arg) = match args {
        FunctionArgs::Star => {
            return Ok(SqlValue::Int(group_rows.len() as i64));
        }
        FunctionArgs::List { distinct, args } => {
            if args.len() != 1 {
                return Err(ExecError::new(format!(
                    "{name} expects exactly one argument"
                )));
            }
            (*distinct, &args[0])
        }
    };

    // Evaluate the argument per row, dropping NULLs (SQL-92 aggregates
    // ignore NULL inputs).
    let mut values = Vec::with_capacity(group_rows.len());
    for row in group_rows {
        let scope = Scope {
            relation: from_rel,
            row,
            parent: outer,
        };
        let v = eval_expr(ctx, &scope, arg)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut seen = HashMap::new();
        values.retain(|v| seen.insert(v.group_key(), ()).is_none());
    }

    match name.as_str() {
        "COUNT" => Ok(SqlValue::Int(values.len() as i64)),
        "MIN" | "MAX" => {
            let mut best: Option<SqlValue> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match v.compare(&b).map_err(|e| ExecError::new(e.message))? {
                            Some(std::cmp::Ordering::Less) => name == "MIN",
                            Some(std::cmp::Ordering::Greater) => name == "MAX",
                            _ => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(SqlValue::Null))
        }
        "SUM" | "AVG" => {
            if values.is_empty() {
                return Ok(SqlValue::Null);
            }
            let mut all_int = true;
            let mut any_double = false;
            let mut int_sum: i64 = 0;
            let mut f_sum: f64 = 0.0;
            for v in &values {
                match v {
                    SqlValue::Int(i) => {
                        int_sum = int_sum
                            .checked_add(*i)
                            .ok_or_else(|| ExecError::new("SUM overflow"))?;
                        f_sum += *i as f64;
                    }
                    SqlValue::Decimal(d) => {
                        all_int = false;
                        f_sum += d;
                    }
                    SqlValue::Double(d) => {
                        all_int = false;
                        any_double = true;
                        f_sum += d;
                    }
                    other => {
                        return Err(ExecError::new(format!(
                            "{name} over non-numeric value {other:?}"
                        )))
                    }
                }
            }
            if name == "SUM" {
                Ok(if all_int {
                    SqlValue::Int(int_sum)
                } else if any_double {
                    SqlValue::Double(f_sum)
                } else {
                    SqlValue::Decimal(f_sum)
                })
            } else {
                let avg = f_sum / values.len() as f64;
                Ok(if any_double {
                    SqlValue::Double(avg)
                } else {
                    SqlValue::Decimal(avg)
                })
            }
        }
        other => Err(ExecError::new(format!("unknown aggregate {other}"))),
    }
}

// ---- ordering ---------------------------------------------------------

/// Sorts the output relation. SQL-92 restricts ORDER BY keys to output
/// columns: by ordinal, by output name, or by an expression over output
/// columns.
fn sort_relation(
    ctx: &EvalContext<'_>,
    relation: &mut Relation,
    order_by: &[OrderItem],
    outer: Option<&Scope<'_>>,
) -> Result<(), ExecError> {
    // Precompute sort keys per row.
    let mut keyed: Vec<(Vec<SqlValue>, Vec<SqlValue>)> = Vec::with_capacity(relation.rows.len());
    let rows = std::mem::take(&mut relation.rows);
    for row in rows {
        let mut keys = Vec::with_capacity(order_by.len());
        for item in order_by {
            let key = match &item.expr {
                // Ordinal.
                Expr::Literal(Literal::Integer(n)) => {
                    let idx = *n;
                    if idx < 1 || idx as usize > relation.arity() {
                        return Err(ExecError::new(format!(
                            "ORDER BY ordinal {idx} out of range"
                        )));
                    }
                    row[idx as usize - 1].clone()
                }
                expr => {
                    let scope = Scope {
                        relation,
                        row: &row,
                        parent: outer,
                    };
                    eval_expr(ctx, &scope, expr)?
                }
            };
            keys.push(key);
        }
        keyed.push((keys, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, item) in order_by.iter().enumerate() {
            let ord = ka[i].sort_cmp(&kb[i]);
            let ord = if item.ascending { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    relation.rows = keyed.into_iter().map(|(_, row)| row).collect();
    Ok(())
}

// ---- type inference for result metadata --------------------------------

/// Best-effort output type inference for result-set metadata. `None` when
/// the type cannot be determined statically (e.g. NULL literal).
pub fn infer_expr_type(expr: &Expr, from_rel: &Relation) -> Option<SqlColumnType> {
    use aldsp_sql::BinaryOp;
    match expr {
        Expr::Column(c) => {
            let found = from_rel.find_columns(c.qualifier.as_deref(), &c.name);
            match found.as_slice() {
                [i] => from_rel.columns[*i].sql_type,
                _ => None,
            }
        }
        Expr::Literal(Literal::Integer(_)) => Some(SqlColumnType::Integer),
        Expr::Literal(Literal::Decimal(_)) => Some(SqlColumnType::Decimal),
        Expr::Literal(Literal::Double(_)) => Some(SqlColumnType::Double),
        Expr::Literal(Literal::String(_)) => Some(SqlColumnType::Varchar),
        Expr::Literal(Literal::Date(_)) => Some(SqlColumnType::Date),
        Expr::Literal(Literal::Null) | Expr::Parameter(_) => None,
        Expr::Unary { expr, .. } => infer_expr_type(expr, from_rel),
        Expr::Binary { left, op, right } => match op {
            BinaryOp::Concat => Some(SqlColumnType::Varchar),
            BinaryOp::And | BinaryOp::Or | BinaryOp::Compare(_) => Some(SqlColumnType::Boolean),
            _ => {
                let l = infer_expr_type(left, from_rel)?;
                let r = infer_expr_type(right, from_rel)?;
                Some(promote(l, r))
            }
        },
        Expr::Function { name, args } => match name.as_str() {
            "COUNT" => Some(SqlColumnType::Bigint),
            "SUM" | "MIN" | "MAX" => match args {
                FunctionArgs::List { args, .. } => {
                    args.first().and_then(|a| infer_expr_type(a, from_rel))
                }
                FunctionArgs::Star => Some(SqlColumnType::Bigint),
            },
            "AVG" => Some(SqlColumnType::Decimal),
            "UPPER" | "LOWER" | "UCASE" | "LCASE" | "CONCAT" => Some(SqlColumnType::Varchar),
            "CHAR_LENGTH" | "CHARACTER_LENGTH" | "LENGTH" | "MOD" => Some(SqlColumnType::Integer),
            "ABS" | "ROUND" | "FLOOR" | "CEILING" => match args {
                FunctionArgs::List { args, .. } => {
                    args.first().and_then(|a| infer_expr_type(a, from_rel))
                }
                FunctionArgs::Star => None,
            },
            _ => None,
        },
        Expr::Case {
            branches,
            else_result,
            ..
        } => branches
            .iter()
            .map(|(_, t)| t)
            .chain(else_result.iter().map(|b| &**b))
            .find_map(|e| infer_expr_type(e, from_rel)),
        Expr::Cast { target, .. } => Some(crate::eval::type_name_to_column(*target)),
        Expr::IsNull { .. }
        | Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Exists { .. }
        | Expr::Quantified { .. }
        | Expr::Like { .. } => Some(SqlColumnType::Boolean),
        Expr::ScalarSubquery(_) => None,
        Expr::Substring { .. } | Expr::Trim { .. } => Some(SqlColumnType::Varchar),
        Expr::Position { .. } => Some(SqlColumnType::Integer),
    }
}

fn promote(a: SqlColumnType, b: SqlColumnType) -> SqlColumnType {
    use SqlColumnType as T;
    if a == T::Double || b == T::Double || a == T::Real || b == T::Real {
        T::Double
    } else if a == T::Decimal || b == T::Decimal {
        T::Decimal
    } else {
        T::Integer
    }
}
