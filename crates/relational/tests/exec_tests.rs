//! End-to-end tests of the relational executor: parse SQL-92 text, execute
//! over in-memory tables, check rows. These pin down the oracle the
//! differential tests trust.

use aldsp_catalog::{ColumnMeta, SqlColumnType, TableSchema};
use aldsp_relational::{execute_query, Database, Relation, SqlValue, Table};
use aldsp_sql::parse_select;

fn schema(name: &str, cols: &[(&str, SqlColumnType, bool)]) -> TableSchema {
    TableSchema {
        table_name: name.into(),
        row_element: name.into(),
        namespace: format!("ld:Test/{name}"),
        schema_location: format!("ld:Test/schemas/{name}.xsd"),
        columns: cols
            .iter()
            .map(|(n, t, nullable)| ColumnMeta::new(*n, *t, *nullable))
            .collect(),
    }
}

/// The paper's little universe: CUSTOMERS, ORDERS, PAYMENTS.
fn test_db() -> Database {
    let mut db = Database::new();

    let mut customers = Table::new(schema(
        "CUSTOMERS",
        &[
            ("CUSTOMERID", SqlColumnType::Integer, false),
            ("CUSTOMERNAME", SqlColumnType::Varchar, true),
        ],
    ));
    for (id, name) in [
        (55, Some("Joe")),
        (23, Some("Sue")),
        (7, None),
        (42, Some("Ann")),
    ] {
        customers.insert(vec![
            SqlValue::Int(id),
            name.map(|n| SqlValue::Str(n.into()))
                .unwrap_or(SqlValue::Null),
        ]);
    }
    db.add_table(customers);

    let mut orders = Table::new(schema(
        "ORDERS",
        &[
            ("ORDERID", SqlColumnType::Integer, false),
            ("CUSTID", SqlColumnType::Integer, false),
            ("AMOUNT", SqlColumnType::Decimal, true),
        ],
    ));
    for (oid, cid, amount) in [
        (1, 55, Some(10.5)),
        (2, 55, Some(20.0)),
        (3, 23, Some(5.25)),
        (4, 23, None),
        (5, 99, Some(1.0)), // dangling customer
    ] {
        orders.insert(vec![
            SqlValue::Int(oid),
            SqlValue::Int(cid),
            amount.map(SqlValue::Decimal).unwrap_or(SqlValue::Null),
        ]);
    }
    db.add_table(orders);

    let mut payments = Table::new(schema(
        "PAYMENTS",
        &[
            ("CUSTID", SqlColumnType::Integer, false),
            ("PAYMENT", SqlColumnType::Decimal, false),
        ],
    ));
    for (cid, p) in [(55, 100.0), (23, 50.0), (23, 25.0)] {
        payments.insert(vec![SqlValue::Int(cid), SqlValue::Decimal(p)]);
    }
    db.add_table(payments);

    db
}

fn run(sql: &str) -> Relation {
    let q = parse_select(sql).unwrap();
    execute_query(&test_db(), &q, &[]).unwrap()
}

fn run_params(sql: &str, params: &[SqlValue]) -> Relation {
    let q = parse_select(sql).unwrap();
    execute_query(&test_db(), &q, params).unwrap()
}

fn ints(rel: &Relation, col: usize) -> Vec<i64> {
    rel.rows
        .iter()
        .map(|r| match &r[col] {
            SqlValue::Int(i) => *i,
            other => panic!("expected int, got {other:?}"),
        })
        .collect()
}

#[test]
fn simple_select_star() {
    let r = run("SELECT * FROM CUSTOMERS");
    assert_eq!(r.arity(), 2);
    assert_eq!(r.rows.len(), 4);
    assert_eq!(r.columns[0].name, "CUSTOMERID");
}

#[test]
fn where_filters_with_3vl() {
    // NULL name row is neither matched nor its negation.
    let r = run("SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERNAME = 'Sue'");
    assert_eq!(ints(&r, 0), vec![23]);
    let r2 = run("SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERNAME <> 'Sue'");
    assert_eq!(r2.rows.len(), 2); // Joe, Ann — NULL row excluded
}

#[test]
fn aliases_rename_columns() {
    let r = run("SELECT CUSTOMERID ID, CUSTOMERNAME NAME FROM CUSTOMERS");
    assert_eq!(r.columns[0].name, "ID");
    assert_eq!(r.columns[1].name, "NAME");
}

#[test]
fn order_by_name_and_ordinal() {
    let by_name = run("SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERID");
    assert_eq!(ints(&by_name, 0), vec![7, 23, 42, 55]);
    let by_ordinal = run("SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS ORDER BY 1 DESC");
    assert_eq!(ints(&by_ordinal, 0), vec![55, 42, 23, 7]);
}

#[test]
fn order_by_nulls_sort_least() {
    let r = run("SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERNAME");
    assert_eq!(r.rows[0][0], SqlValue::Null);
    let r = run("SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERNAME DESC");
    assert_eq!(r.rows[3][0], SqlValue::Null);
}

#[test]
fn inner_join() {
    let r = run(
        "SELECT CUSTOMERS.CUSTOMERNAME, ORDERS.ORDERID FROM CUSTOMERS \
         INNER JOIN ORDERS ON CUSTOMERS.CUSTOMERID = ORDERS.CUSTID ORDER BY ORDERS.ORDERID",
    );
    assert_eq!(r.rows.len(), 4); // order 5 dangles
}

#[test]
fn left_outer_join_pads_nulls() {
    // Paper Example 9.
    let r = run(
        "SELECT CUSTOMERS.CUSTOMERID, PAYMENTS.PAYMENT FROM CUSTOMERS \
         LEFT OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID \
         ORDER BY CUSTOMERS.CUSTOMERID, PAYMENTS.PAYMENT",
    );
    // 7→null, 23→25, 23→50, 42→null, 55→100
    assert_eq!(r.rows.len(), 5);
    assert_eq!(r.rows[0][0], SqlValue::Int(7));
    assert_eq!(r.rows[0][1], SqlValue::Null);
    assert_eq!(r.rows[1], vec![SqlValue::Int(23), SqlValue::Decimal(25.0)]);
}

#[test]
fn right_outer_join_mirrors_left() {
    let r = run("SELECT CUSTOMERS.CUSTOMERID, ORDERS.ORDERID FROM ORDERS \
         RIGHT OUTER JOIN CUSTOMERS ON CUSTOMERS.CUSTOMERID = ORDERS.CUSTID \
         ORDER BY CUSTOMERS.CUSTOMERID, ORDERS.ORDERID");
    // Every customer appears; 7 and 42 with NULL order ids.
    assert_eq!(r.rows.len(), 6);
}

#[test]
fn full_outer_join_pads_both_sides() {
    let r = run(
        "SELECT CUSTOMERS.CUSTOMERID, ORDERS.ORDERID FROM CUSTOMERS \
         FULL OUTER JOIN ORDERS ON CUSTOMERS.CUSTOMERID = ORDERS.CUSTID",
    );
    // 4 matched orders + 2 unmatched customers + 1 unmatched order = 7.
    assert_eq!(r.rows.len(), 7);
    let null_left = r.rows.iter().filter(|row| row[0] == SqlValue::Null).count();
    assert_eq!(null_left, 1);
}

#[test]
fn cross_join_counts() {
    let r = run("SELECT * FROM CUSTOMERS CROSS JOIN PAYMENTS");
    assert_eq!(r.rows.len(), 12);
    let implicit = run("SELECT * FROM CUSTOMERS, PAYMENTS");
    assert_eq!(implicit.rows.len(), 12);
}

#[test]
fn derived_table_with_alias() {
    // Paper Example 7.
    let r = run(
        "SELECT INFO.ID, INFO.NAME FROM (SELECT CUSTOMERID ID, CUSTOMERNAME NAME \
         FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10 ORDER BY INFO.ID",
    );
    assert_eq!(ints(&r, 0), vec![23, 42, 55]);
}

#[test]
fn group_by_with_aggregates() {
    let r = run("SELECT CUSTID, COUNT(*), SUM(AMOUNT) FROM ORDERS GROUP BY CUSTID ORDER BY CUSTID");
    assert_eq!(r.rows.len(), 3);
    // CUSTID 23: two orders, one NULL amount → SUM skips it.
    assert_eq!(r.rows[0][0], SqlValue::Int(23));
    assert_eq!(r.rows[0][1], SqlValue::Int(2));
    assert_eq!(r.rows[0][2], SqlValue::Decimal(5.25));
}

#[test]
fn aggregates_without_group_by() {
    let r = run("SELECT COUNT(*), MIN(CUSTOMERID), MAX(CUSTOMERID) FROM CUSTOMERS");
    assert_eq!(r.rows.len(), 1);
    assert_eq!(
        r.rows[0],
        vec![SqlValue::Int(4), SqlValue::Int(7), SqlValue::Int(55)]
    );
}

#[test]
fn aggregates_over_empty_input() {
    let r = run("SELECT COUNT(*), SUM(CUSTOMERID) FROM CUSTOMERS WHERE CUSTOMERID > 1000");
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0], vec![SqlValue::Int(0), SqlValue::Null]);
}

#[test]
fn count_column_skips_nulls() {
    let r = run("SELECT COUNT(CUSTOMERNAME), COUNT(*) FROM CUSTOMERS");
    assert_eq!(r.rows[0], vec![SqlValue::Int(3), SqlValue::Int(4)]);
}

#[test]
fn count_distinct() {
    let r = run("SELECT COUNT(DISTINCT CUSTID) FROM ORDERS");
    assert_eq!(r.rows[0], vec![SqlValue::Int(3)]);
}

#[test]
fn having_filters_groups() {
    let r = run("SELECT CUSTID FROM ORDERS GROUP BY CUSTID HAVING COUNT(*) > 1 ORDER BY CUSTID");
    assert_eq!(ints(&r, 0), vec![23, 55]);
}

#[test]
fn group_by_expression_reuse() {
    // ORDER BY must reference output columns in SQL-92, hence the ordinal.
    let r = run("SELECT CUSTID + 1, COUNT(*) FROM ORDERS GROUP BY CUSTID + 1 ORDER BY 1");
    assert_eq!(ints(&r, 0), vec![24, 56, 100]);
}

#[test]
fn ungrouped_column_in_select_is_error() {
    // Paper §3.4.3's semantic example.
    let q = parse_select("SELECT CUSTOMERNAME FROM CUSTOMERS GROUP BY CUSTOMERID").unwrap();
    let err = execute_query(&test_db(), &q, &[]).unwrap_err();
    assert!(err.message.contains("GROUP BY"), "{}", err.message);
}

#[test]
fn distinct_eliminates_duplicates() {
    let r = run("SELECT DISTINCT CUSTID FROM ORDERS ORDER BY CUSTID");
    assert_eq!(ints(&r, 0), vec![23, 55, 99]);
}

#[test]
fn union_and_union_all() {
    let r = run("SELECT CUSTID FROM ORDERS UNION SELECT CUSTID FROM PAYMENTS ORDER BY CUSTID");
    assert_eq!(ints(&r, 0), vec![23, 55, 99]);
    let all =
        run("SELECT CUSTID FROM ORDERS UNION ALL SELECT CUSTID FROM PAYMENTS ORDER BY CUSTID");
    assert_eq!(all.rows.len(), 8);
}

#[test]
fn intersect_and_except() {
    let r = run("SELECT CUSTID FROM ORDERS INTERSECT SELECT CUSTID FROM PAYMENTS ORDER BY CUSTID");
    assert_eq!(ints(&r, 0), vec![23, 55]);
    let e = run("SELECT CUSTID FROM ORDERS EXCEPT SELECT CUSTID FROM PAYMENTS");
    assert_eq!(ints(&e, 0), vec![99]);
}

#[test]
fn except_all_multiplicity() {
    // ORDERS custids: 55,55,23,23,99. PAYMENTS custids: 55,23,23.
    let r = run("SELECT CUSTID FROM ORDERS EXCEPT ALL SELECT CUSTID FROM PAYMENTS ORDER BY CUSTID");
    assert_eq!(ints(&r, 0), vec![55, 99]);
}

#[test]
fn intersect_all_multiplicity() {
    let r =
        run("SELECT CUSTID FROM ORDERS INTERSECT ALL SELECT CUSTID FROM PAYMENTS ORDER BY CUSTID");
    assert_eq!(ints(&r, 0), vec![23, 23, 55]);
}

#[test]
fn in_subquery() {
    let r = run("SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID IN \
         (SELECT CUSTID FROM PAYMENTS) ORDER BY CUSTOMERID");
    assert_eq!(ints(&r, 0), vec![23, 55]);
}

#[test]
fn not_in_with_nulls_is_unknown() {
    // NOT IN over a list containing NULL filters everything.
    let r = run("SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID NOT IN (55, NULL)");
    assert_eq!(r.rows.len(), 0);
}

#[test]
fn exists_correlated() {
    let r = run("SELECT CUSTOMERNAME FROM CUSTOMERS WHERE EXISTS \
         (SELECT ORDERID FROM ORDERS WHERE ORDERS.CUSTID = CUSTOMERS.CUSTOMERID) \
         ORDER BY CUSTOMERNAME");
    assert_eq!(r.rows.len(), 2); // Joe, Sue
}

#[test]
fn scalar_subquery_correlated() {
    let r = run("SELECT CUSTOMERID, (SELECT SUM(PAYMENT) FROM PAYMENTS \
         WHERE PAYMENTS.CUSTID = CUSTOMERS.CUSTOMERID) FROM CUSTOMERS ORDER BY CUSTOMERID");
    assert_eq!(r.rows[0][1], SqlValue::Null); // customer 7, no payments
    assert_eq!(r.rows[1][1], SqlValue::Decimal(75.0)); // customer 23
}

#[test]
fn quantified_any_all() {
    let any = run("SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID > ANY \
         (SELECT CUSTID FROM PAYMENTS) ORDER BY CUSTOMERID");
    assert_eq!(ints(&any, 0), vec![42, 55]); // > 23
    let all = run("SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID >= ALL \
         (SELECT CUSTID FROM PAYMENTS)");
    assert_eq!(ints(&all, 0), vec![55]);
}

#[test]
fn between_like_isnull() {
    let r = run("SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID BETWEEN 20 AND 50 ORDER BY 1");
    assert_eq!(ints(&r, 0), vec![23, 42]);
    let l = run("SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERNAME LIKE '_o%'");
    assert_eq!(l.rows.len(), 1); // Joe
    let n = run("SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERNAME IS NULL");
    assert_eq!(ints(&n, 0), vec![7]);
}

#[test]
fn case_and_cast_and_functions() {
    let r = run(
        "SELECT CASE WHEN CUSTOMERID > 40 THEN 'big' ELSE 'small' END, \
         CAST(CUSTOMERID AS VARCHAR(10)), UPPER(CUSTOMERNAME) \
         FROM CUSTOMERS WHERE CUSTOMERID = 55",
    );
    assert_eq!(
        r.rows[0],
        vec![
            SqlValue::Str("big".into()),
            SqlValue::Str("55".into()),
            SqlValue::Str("JOE".into())
        ]
    );
}

#[test]
fn string_specials() {
    let r = run(
        "SELECT SUBSTRING(CUSTOMERNAME FROM 1 FOR 2), POSITION('o' IN CUSTOMERNAME), \
         CHAR_LENGTH(CUSTOMERNAME) FROM CUSTOMERS WHERE CUSTOMERID = 55",
    );
    assert_eq!(
        r.rows[0],
        vec![
            SqlValue::Str("Jo".into()),
            SqlValue::Int(2),
            SqlValue::Int(3)
        ]
    );
}

#[test]
fn concat_operator_and_function() {
    let r = run(
        "SELECT CUSTOMERNAME || '-' || CUSTOMERID, CONCAT(CUSTOMERNAME, '!') \
         FROM CUSTOMERS WHERE CUSTOMERID = 23",
    );
    assert_eq!(
        r.rows[0],
        vec![SqlValue::Str("Sue-23".into()), SqlValue::Str("Sue!".into())]
    );
}

#[test]
fn parameters_bind_by_ordinal() {
    let r = run_params(
        "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID > ? AND CUSTOMERID < ?",
        &[SqlValue::Int(10), SqlValue::Int(50)],
    );
    let mut got = ints(&r, 0);
    got.sort_unstable();
    assert_eq!(got, vec![23, 42]);
}

#[test]
fn arithmetic_in_projection() {
    let r = run("SELECT CUSTOMERID * 2 + 1 FROM CUSTOMERS WHERE CUSTOMERID = 7");
    assert_eq!(r.rows[0][0], SqlValue::Int(15));
}

#[test]
fn division_by_zero_errors() {
    let q = parse_select("SELECT CUSTOMERID / 0 FROM CUSTOMERS").unwrap();
    assert!(execute_query(&test_db(), &q, &[])
        .unwrap_err()
        .message
        .contains("division by zero"));
}

#[test]
fn ambiguous_column_is_error() {
    let q = parse_select(
        "SELECT CUSTID FROM ORDERS INNER JOIN PAYMENTS ON ORDERS.CUSTID = PAYMENTS.CUSTID",
    )
    .unwrap();
    let err = execute_query(&test_db(), &q, &[]).unwrap_err();
    assert!(err.message.contains("ambiguous"), "{}", err.message);
}

#[test]
fn qualified_wildcard() {
    let r =
        run("SELECT ORDERS.* FROM ORDERS INNER JOIN PAYMENTS ON ORDERS.CUSTID = PAYMENTS.CUSTID");
    assert_eq!(r.arity(), 3);
}

#[test]
fn self_join_with_aliases() {
    let r = run(
        "SELECT A.CUSTOMERID, B.CUSTOMERID FROM CUSTOMERS A, CUSTOMERS B \
         WHERE A.CUSTOMERID < B.CUSTOMERID",
    );
    assert_eq!(r.rows.len(), 6); // C(4,2) pairs
}

#[test]
fn avg_returns_decimal() {
    let r = run("SELECT AVG(CUSTOMERID) FROM CUSTOMERS");
    assert_eq!(
        r.rows[0][0],
        SqlValue::Decimal((55 + 23 + 7 + 42) as f64 / 4.0)
    );
}

#[test]
fn nested_set_ops_with_parens() {
    let r = run(
        "(SELECT CUSTID FROM ORDERS UNION SELECT CUSTID FROM PAYMENTS) \
         EXCEPT SELECT CUSTOMERID FROM CUSTOMERS ORDER BY 1",
    );
    assert_eq!(ints(&r, 0), vec![99]);
}

#[test]
fn unknown_table_is_error() {
    let q = parse_select("SELECT * FROM NO_SUCH_TABLE").unwrap();
    assert!(execute_query(&test_db(), &q, &[]).is_err());
}

#[test]
fn unknown_column_is_error() {
    let q = parse_select("SELECT NO_SUCH_COLUMN FROM CUSTOMERS").unwrap();
    assert!(execute_query(&test_db(), &q, &[]).is_err());
}
