//! Property-based tests on the oracle's primitives: LIKE matching against
//! a reference implementation, SUBSTRING windowing laws, three-valued
//! logic algebra, and value ordering consistency.

use aldsp_relational::like::like_match;
use aldsp_relational::value::{ArithOp, SqlValue};
use proptest::prelude::*;

/// Reference LIKE matcher built on exhaustive recursion over chars —
/// structurally different from the production matcher (token
/// compilation), so agreement is meaningful.
fn reference_like(text: &[char], pattern: &[char]) -> bool {
    match pattern.split_first() {
        None => text.is_empty(),
        Some(('%', rest)) => (0..=text.len()).any(|i| reference_like(&text[i..], rest)),
        Some(('_', rest)) => !text.is_empty() && reference_like(&text[1..], rest),
        Some((c, rest)) => text.first() == Some(c) && reference_like(&text[1..], rest),
    }
}

fn small_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[abc%_]{0,8}").unwrap()
}

proptest! {
    #[test]
    fn like_agrees_with_reference(text in "[abc]{0,8}", pattern in small_text()) {
        let expected = reference_like(
            &text.chars().collect::<Vec<_>>(),
            &pattern.chars().collect::<Vec<_>>(),
        );
        prop_assert_eq!(like_match(&text, &pattern, None).unwrap(), expected);
    }

    #[test]
    fn escaped_pattern_matches_literal(text in "[ab%_]{0,8}") {
        // Escaping every wildcard makes the pattern a literal matcher.
        let escaped: String = text
            .chars()
            .flat_map(|c| {
                if c == '%' || c == '_' || c == '!' {
                    vec!['!', c]
                } else {
                    vec![c]
                }
            })
            .collect();
        prop_assert!(like_match(&text, &escaped, Some('!')).unwrap());
    }

    #[test]
    fn null_is_absorbing_for_arithmetic(v in -1000i64..1000) {
        let value = SqlValue::Int(v);
        for op in [ArithOp::Add, ArithOp::Sub, ArithOp::Mul] {
            prop_assert_eq!(value.arith(op, &SqlValue::Null).unwrap(), SqlValue::Null);
            prop_assert_eq!(SqlValue::Null.arith(op, &value).unwrap(), SqlValue::Null);
        }
    }

    #[test]
    fn arithmetic_matches_i64_semantics(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let x = SqlValue::Int(a);
        let y = SqlValue::Int(b);
        prop_assert_eq!(x.arith(ArithOp::Add, &y).unwrap(), SqlValue::Int(a + b));
        prop_assert_eq!(x.arith(ArithOp::Mul, &y).unwrap(), SqlValue::Int(a * b));
        if b != 0 {
            prop_assert_eq!(x.arith(ArithOp::Div, &y).unwrap(), SqlValue::Int(a / b));
        }
    }

    #[test]
    fn sort_cmp_is_total_order(values in proptest::collection::vec(-50i64..50, 0..20)) {
        // Sorting mixed Int/Decimal/Null values never panics and is
        // stable under re-sorting (idempotence of ordering).
        let mut sql_values: Vec<SqlValue> = values
            .iter()
            .enumerate()
            .map(|(i, v)| match i % 3 {
                0 => SqlValue::Int(*v),
                1 => SqlValue::Decimal(*v as f64 + 0.5),
                _ => SqlValue::Null,
            })
            .collect();
        sql_values.sort_by(|a, b| a.sort_cmp(b));
        let again = {
            let mut v = sql_values.clone();
            v.sort_by(|a, b| a.sort_cmp(b));
            v
        };
        prop_assert_eq!(&sql_values, &again);
        // NULLs are a prefix.
        let first_non_null = sql_values.iter().position(|v| !v.is_null());
        if let Some(i) = first_non_null {
            prop_assert!(sql_values[i..].iter().all(|v| !v.is_null()));
        }
    }

    #[test]
    fn group_key_consistent_with_group_eq(a in -100i64..100, b in -100i64..100) {
        let pairs = [
            (SqlValue::Int(a), SqlValue::Int(b)),
            (SqlValue::Int(a), SqlValue::Decimal(b as f64)),
            (SqlValue::Decimal(a as f64), SqlValue::Double(b as f64)),
        ];
        for (x, y) in pairs {
            prop_assert_eq!(x.group_eq(&y), x.group_key() == y.group_key());
        }
    }

    #[test]
    fn atomic_roundtrip_preserves_value(v in -100_000i64..100_000) {
        for value in [
            SqlValue::Int(v),
            SqlValue::Decimal(v as f64 / 4.0),
            SqlValue::Str(format!("s{v}")),
        ] {
            let atomic = value.to_atomic().unwrap();
            prop_assert_eq!(SqlValue::from_atomic(&atomic), value);
        }
    }
}
