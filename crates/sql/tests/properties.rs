//! Property-based tests for the SQL front end: the renderer and parser
//! must be mutual inverses on the AST (modulo parenthesization), and the
//! lexer must round-trip literals.

use aldsp_sql::{parse_select, Lexer, TokenKind};
use proptest::prelude::*;

proptest! {
    #[test]
    fn string_literals_roundtrip(s in "[ -~]{0,30}") {
        let sql_literal = format!("'{}'", s.replace('\'', "''"));
        let tokens = Lexer::new(&sql_literal).tokenize().unwrap();
        prop_assert_eq!(tokens.len(), 1);
        prop_assert_eq!(&tokens[0].kind, &TokenKind::String(s));
    }

    #[test]
    fn integer_literals_roundtrip(v in 0i64..=i64::MAX) {
        let tokens = Lexer::new(&v.to_string()).tokenize().unwrap();
        prop_assert_eq!(&tokens[0].kind, &TokenKind::Integer(v));
    }

    #[test]
    fn identifiers_fold_to_uppercase(name in "[a-z][a-z0-9_]{0,10}") {
        let tokens = Lexer::new(&name).tokenize().unwrap();
        match &tokens[0].kind {
            TokenKind::Identifier(id) => prop_assert_eq!(id, &name.to_uppercase()),
            TokenKind::Keyword(_) => {} // some words are reserved
            other => prop_assert!(false, "unexpected token {:?}", other),
        }
    }

    /// Render → reparse is the identity on parsed queries built from a
    /// pool of structurally diverse templates with randomized leaves.
    #[test]
    fn render_reparse_identity(
        template in 0usize..8,
        n in 1i64..500,
        name in "X[A-Z]{0,5}",
        desc in proptest::bool::ANY,
    ) {
        let direction = if desc { "DESC" } else { "ASC" };
        let sql = match template {
            0 => format!("SELECT A FROM T WHERE B = {n}"),
            1 => format!("SELECT A {name} FROM T ORDER BY 1 {direction}"),
            2 => format!("SELECT * FROM T INNER JOIN U ON T.A = U.B WHERE T.C < {n}"),
            3 => format!("SELECT A, COUNT(*) FROM T GROUP BY A HAVING COUNT(*) > {n}"),
            4 => format!("SELECT A FROM T WHERE B BETWEEN {n} AND {m}", m = n + 10),
            5 => format!("SELECT A FROM T WHERE B IN ({n}, {m}) OR C IS NULL", m = n + 1),
            6 => format!("SELECT CASE WHEN A > {n} THEN 'x' ELSE '{name}' END FROM T"),
            _ => format!("SELECT A FROM T UNION ALL SELECT {name} FROM U"),
        };
        let first = parse_select(&sql).unwrap();
        let rendered = first.to_string();
        let second = parse_select(&rendered)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\nrendered: {rendered}"));
        prop_assert_eq!(first, second);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "[ -~]{0,60}") {
        // Errors are fine; panics are not (stage one rejects gracefully).
        let _ = parse_select(&input);
    }
}
