//! SQL-92 tokenizer.
//!
//! Produces a flat token stream with byte offsets so the parser can report
//! precise positions. Keywords are recognized case-insensitively and
//! carried as their uppercase spelling; identifiers keep the SQL-92 rule of
//! folding regular identifiers to uppercase while `"delimited"` identifiers
//! preserve case.

use std::fmt;

/// A lexical error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset into the statement text.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Token kinds. Literals carry their decoded value; identifiers carry the
/// (case-folded) name.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword, uppercase (e.g. `SELECT`). Only words in [`KEYWORDS`] are
    /// classified as keywords; everything else is an identifier.
    Keyword(String),
    /// A regular identifier, folded to uppercase per SQL-92.
    Identifier(String),
    /// A `"delimited"` identifier, case preserved, `""` unescaped.
    DelimitedIdentifier(String),
    /// Integer literal (exact numeric without a decimal point).
    Integer(i64),
    /// Exact numeric with a decimal point, e.g. `5.60`.
    Decimal(f64),
    /// Approximate numeric with an exponent, e.g. `1e3`, `2.5E-2`.
    Double(f64),
    /// String literal, quotes removed, `''` unescaped.
    String(String),
    /// `?` parameter marker.
    Parameter,
    /// Punctuation / operator.
    Symbol(Symbol),
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `(`
    LeftParen,
    /// `)`
    RightParen,
    /// `,`
    Comma,
    /// `.`
    Period,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `||` string concatenation
    Concat,
}

impl Symbol {
    /// The SQL spelling of the symbol.
    pub fn as_str(self) -> &'static str {
        match self {
            Symbol::LeftParen => "(",
            Symbol::RightParen => ")",
            Symbol::Comma => ",",
            Symbol::Period => ".",
            Symbol::Star => "*",
            Symbol::Slash => "/",
            Symbol::Plus => "+",
            Symbol::Minus => "-",
            Symbol::Eq => "=",
            Symbol::NotEq => "<>",
            Symbol::Lt => "<",
            Symbol::LtEq => "<=",
            Symbol::Gt => ">",
            Symbol::GtEq => ">=",
            Symbol::Concat => "||",
        }
    }
}

/// A token plus its starting byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub offset: usize,
}

/// Reserved words recognized as keywords. SQL-92's reserved list is large;
/// we reserve exactly the words the grammar uses so that common column
/// names (e.g. `NAME`, `VALUE`) stay usable as identifiers.
pub const KEYWORDS: &[&str] = &[
    "ALL",
    "AND",
    "ANY",
    "AS",
    "ASC",
    "BETWEEN",
    "BOTH",
    "BY",
    "CASE",
    "CAST",
    "CROSS",
    "DATE",
    "DESC",
    "DISTINCT",
    "ELSE",
    "END",
    "ESCAPE",
    "EXCEPT",
    "EXISTS",
    "FOR",
    "FROM",
    "FULL",
    "GROUP",
    "HAVING",
    "IN",
    "INNER",
    "INTERSECT",
    "IS",
    "JOIN",
    "LEADING",
    "LEFT",
    "LIKE",
    "NOT",
    "NULL",
    "ON",
    "OR",
    "ORDER",
    "OUTER",
    "RIGHT",
    "SELECT",
    "SOME",
    "THEN",
    "TRAILING",
    "TRIM",
    "UNION",
    "WHEN",
    "WHERE",
];

/// The tokenizer. Construct with [`Lexer::new`] and call
/// [`Lexer::tokenize`].
pub struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    /// Tokenizes the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_whitespace_and_comments()?;
            if self.pos >= self.input.len() {
                return Ok(tokens);
            }
            let offset = self.pos;
            let kind = self.next_kind()?;
            tokens.push(Token { kind, offset });
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<(), LexError> {
        loop {
            let trimmed = self.rest().trim_start();
            self.pos = self.input.len() - trimmed.len();
            if trimmed.starts_with("--") {
                // Single-line comment.
                match trimmed.find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.input.len(),
                }
            } else if trimmed.starts_with("/*") {
                match trimmed.find("*/") {
                    Some(end) => self.pos += end + 2,
                    None => return Err(self.error("unterminated block comment")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn next_kind(&mut self) -> Result<TokenKind, LexError> {
        let c = self.peek().expect("caller checked non-empty");
        match c {
            '\'' => self.lex_string(),
            '"' => self.lex_delimited_identifier(),
            '?' => {
                self.pos += 1;
                Ok(TokenKind::Parameter)
            }
            c if c.is_ascii_digit() => self.lex_number(),
            // `.5` style decimals.
            '.' if self
                .rest()
                .chars()
                .nth(1)
                .is_some_and(|d| d.is_ascii_digit()) =>
            {
                self.lex_number()
            }
            c if is_identifier_start(c) => Ok(self.lex_word()),
            _ => self.lex_symbol(),
        }
    }

    fn lex_string(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            let rest = self.rest();
            match rest.find('\'') {
                None => {
                    self.pos = start;
                    return Err(self.error("unterminated string literal"));
                }
                Some(q) => {
                    value.push_str(&rest[..q]);
                    self.pos += q + 1;
                    // Doubled quote is an escaped quote.
                    if self.peek() == Some('\'') {
                        value.push('\'');
                        self.pos += 1;
                    } else {
                        return Ok(TokenKind::String(value));
                    }
                }
            }
        }
    }

    fn lex_delimited_identifier(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos;
        self.pos += 1;
        let mut value = String::new();
        loop {
            let rest = self.rest();
            match rest.find('"') {
                None => {
                    self.pos = start;
                    return Err(self.error("unterminated delimited identifier"));
                }
                Some(q) => {
                    value.push_str(&rest[..q]);
                    self.pos += q + 1;
                    if self.peek() == Some('"') {
                        value.push('"');
                        self.pos += 1;
                    } else if value.is_empty() {
                        self.pos = start;
                        return Err(self.error("empty delimited identifier"));
                    } else {
                        return Ok(TokenKind::DelimitedIdentifier(value));
                    }
                }
            }
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind, LexError> {
        let rest = self.rest();
        let mut end = 0;
        let bytes = rest.as_bytes();
        let mut saw_dot = false;
        let mut saw_exp = false;
        while end < bytes.len() {
            let b = bytes[end];
            if b.is_ascii_digit() {
                end += 1;
            } else if b == b'.' && !saw_dot && !saw_exp {
                saw_dot = true;
                end += 1;
            } else if (b == b'e' || b == b'E') && !saw_exp && end > 0 {
                // Exponent must be followed by optional sign + digits.
                let mut probe = end + 1;
                if probe < bytes.len() && (bytes[probe] == b'+' || bytes[probe] == b'-') {
                    probe += 1;
                }
                if probe < bytes.len() && bytes[probe].is_ascii_digit() {
                    saw_exp = true;
                    end = probe + 1;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        let text = &rest[..end];
        self.pos += end;
        if saw_exp {
            text.parse::<f64>()
                .map(TokenKind::Double)
                .map_err(|_| self.error(format!("invalid numeric literal `{text}`")))
        } else if saw_dot {
            text.parse::<f64>()
                .map(TokenKind::Decimal)
                .map_err(|_| self.error(format!("invalid numeric literal `{text}`")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Integer)
                .map_err(|_| self.error(format!("integer literal out of range `{text}`")))
        }
    }

    fn lex_word(&mut self) -> TokenKind {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !is_identifier_part(*c))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let word = &rest[..end];
        self.pos += end;
        let upper = word.to_ascii_uppercase();
        if KEYWORDS.contains(&upper.as_str()) {
            TokenKind::Keyword(upper)
        } else {
            TokenKind::Identifier(upper)
        }
    }

    fn lex_symbol(&mut self) -> Result<TokenKind, LexError> {
        let rest = self.rest();
        let (symbol, len) = if rest.starts_with("<>") {
            (Symbol::NotEq, 2)
        } else if rest.starts_with("!=") {
            // Common alias accepted by virtually every SQL-92 client.
            (Symbol::NotEq, 2)
        } else if rest.starts_with("<=") {
            (Symbol::LtEq, 2)
        } else if rest.starts_with(">=") {
            (Symbol::GtEq, 2)
        } else if rest.starts_with("||") {
            (Symbol::Concat, 2)
        } else {
            let sym = match rest.chars().next().unwrap() {
                '(' => Symbol::LeftParen,
                ')' => Symbol::RightParen,
                ',' => Symbol::Comma,
                '.' => Symbol::Period,
                '*' => Symbol::Star,
                '/' => Symbol::Slash,
                '+' => Symbol::Plus,
                '-' => Symbol::Minus,
                '=' => Symbol::Eq,
                '<' => Symbol::Lt,
                '>' => Symbol::Gt,
                other => return Err(self.error(format!("unexpected character `{other}`"))),
            };
            (sym, 1)
        };
        self.pos += len;
        Ok(TokenKind::Symbol(symbol))
    }
}

fn is_identifier_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_identifier_part(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        Lexer::new(sql)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_fold_case() {
        assert_eq!(
            kinds("select From"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Keyword("FROM".into())
            ]
        );
    }

    #[test]
    fn identifiers_fold_uppercase() {
        assert_eq!(
            kinds("customers"),
            vec![TokenKind::Identifier("CUSTOMERS".into())]
        );
    }

    #[test]
    fn delimited_identifiers_preserve_case() {
        assert_eq!(
            kinds(r#""MixedCase""#),
            vec![TokenKind::DelimitedIdentifier("MixedCase".into())]
        );
        assert_eq!(
            kinds(r#""a""b""#),
            vec![TokenKind::DelimitedIdentifier("a\"b".into())]
        );
    }

    #[test]
    fn numeric_literal_classes() {
        // Paper §3.5(v): exact numerics without a point are integers,
        // with a point decimals; exponents make approximate numerics.
        assert_eq!(kinds("42"), vec![TokenKind::Integer(42)]);
        assert_eq!(kinds("5.6"), vec![TokenKind::Decimal(5.6)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Decimal(0.5)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Double(1000.0)]);
        assert_eq!(kinds("2.5E-2"), vec![TokenKind::Double(0.025)]);
    }

    #[test]
    fn string_literals_unescape() {
        assert_eq!(kinds("'Sue'"), vec![TokenKind::String("Sue".into())]);
        assert_eq!(
            kinds("'O''Brien'"),
            vec![TokenKind::String("O'Brien".into())]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a <> b <= c || d"),
            vec![
                TokenKind::Identifier("A".into()),
                TokenKind::Symbol(Symbol::NotEq),
                TokenKind::Identifier("B".into()),
                TokenKind::Symbol(Symbol::LtEq),
                TokenKind::Identifier("C".into()),
                TokenKind::Symbol(Symbol::Concat),
                TokenKind::Identifier("D".into()),
            ]
        );
    }

    #[test]
    fn bang_eq_alias() {
        assert_eq!(kinds("a != b")[1], TokenKind::Symbol(Symbol::NotEq));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT -- trailing\n 1 /* block */ + 2"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Integer(1),
                TokenKind::Symbol(Symbol::Plus),
                TokenKind::Integer(2),
            ]
        );
    }

    #[test]
    fn qualified_name_tokens() {
        assert_eq!(
            kinds("CUSTOMERS.CUSTOMERID"),
            vec![
                TokenKind::Identifier("CUSTOMERS".into()),
                TokenKind::Symbol(Symbol::Period),
                TokenKind::Identifier("CUSTOMERID".into()),
            ]
        );
    }

    #[test]
    fn parameter_marker() {
        assert_eq!(kinds("id = ?")[2], TokenKind::Parameter);
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = Lexer::new("'abc").tokenize().unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn offsets_are_recorded() {
        let tokens = Lexer::new("SELECT  ID").tokenize().unwrap();
        assert_eq!(tokens[0].offset, 0);
        assert_eq!(tokens[1].offset, 8);
    }

    #[test]
    fn stray_character_is_error() {
        assert!(Lexer::new("SELECT #").tokenize().is_err());
    }

    #[test]
    fn period_between_digit_contexts() {
        // `T1.5` style: identifier, period, integer — not a decimal.
        assert_eq!(
            kinds("T1.C5"),
            vec![
                TokenKind::Identifier("T1".into()),
                TokenKind::Symbol(Symbol::Period),
                TokenKind::Identifier("C5".into()),
            ]
        );
    }
}
