//! # aldsp-sql — SQL-92 SELECT front end
//!
//! Stage one of the paper's translator "performs lexical analysis on the
//! SQL statement, parses the tokens ... and creates an AST, performing
//! syntactic validations along the way" (§3.5). This crate is that front
//! end, factored out so the relational baseline engine and the translator
//! share one grammar:
//!
//! * [`lexer`] — tokenizer for the SQL-92 SELECT subset (identifiers,
//!   delimited identifiers, numeric/string/date literals, operators,
//!   parameter markers).
//! * [`ast`] — typed abstract syntax tree. Node types mirror the paper's
//!   "typed components": every tabular abstraction (table, join, derived
//!   table, query, set operation) is a distinct variant that later becomes
//!   a resultset node (RSN).
//! * [`parser`] — recursive-descent parser with precedence-climbing
//!   expression parsing; rejects syntactically invalid SQL immediately
//!   (paper §3.4.1 stage-one behaviour).
//! * [`display`] — renders the AST back to SQL text (used by the workload
//!   generator and for error messages).
//!
//! Coverage: `SELECT [ALL|DISTINCT]`, select-list expressions with aliases
//! and wildcards, `FROM` with base tables, derived tables, and
//! `INNER`/`LEFT`/`RIGHT`/`FULL OUTER`/`CROSS` joins, `WHERE`,
//! `GROUP BY`/`HAVING`, `ORDER BY` (names, ordinals, expressions),
//! `UNION`/`INTERSECT`/`EXCEPT [ALL]`, subqueries (scalar, `IN`, `EXISTS`,
//! quantified `ANY`/`SOME`/`ALL`), `BETWEEN`, `LIKE [ESCAPE]`,
//! `IS [NOT] NULL`, `CASE`, `CAST`, `?` parameters, and the SQL-92 string
//! special functions (`SUBSTRING`, `TRIM`, `POSITION`).

pub mod ast;
pub mod display;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use lexer::{LexError, Lexer, Token, TokenKind};
pub use parser::{parse_select, ParseError, ParseErrorKind, MAX_PARSE_DEPTH};
