//! Recursive-descent parser for SQL-92 SELECT statements.
//!
//! This is stage one of the translation pipeline: "the input SQL query is
//! verified for syntactical correctness, and syntactically invalid SQL is
//! rejected immediately" (paper §3.4.1). Semantic checks that need schema
//! metadata (column existence, GROUP BY legality) happen later, in the
//! translator's stage two.

use crate::ast::*;
use crate::lexer::{LexError, Lexer, Symbol, Token, TokenKind};
use std::fmt;

/// Maximum expression/subquery nesting depth. The parser is
/// recursive-descent, so unbounded nesting (`((((...))))`) turns input
/// length into native stack frames — each level costs the whole
/// precedence-climbing chain (~9 frames). 64 levels rejects adversarial
/// inputs while the stack is still mostly free, and accepts any
/// realistic statement.
pub const MAX_PARSE_DEPTH: usize = 64;

/// Classifies a parse failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseErrorKind {
    /// Malformed SQL.
    #[default]
    Syntax,
    /// Nesting exceeded [`MAX_PARSE_DEPTH`] — an input guard, not a
    /// grammar violation.
    DepthExceeded,
}

/// A parse error with byte offset into the original statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset where the problem was detected (end of input when the
    /// statement was truncated).
    pub offset: usize,
    /// Classification of the failure.
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
            kind: ParseErrorKind::Syntax,
        }
    }
}

/// Parses one SELECT statement (an optional trailing `;` is accepted).
pub fn parse_select(sql: &str) -> Result<Query, ParseError> {
    let sql = sql.trim_end().trim_end_matches(';');
    let tokens = Lexer::new(sql).tokenize()?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        end_offset: sql.len(),
        parameter_count: 0,
        depth: 0,
    };
    let query = parser.parse_query()?;
    if !parser.at_end() {
        return Err(parser.error_here("unexpected trailing tokens"));
    }
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    end_offset: usize,
    parameter_count: usize,
    depth: usize,
}

impl Parser {
    // ---- token plumbing ----------------------------------------------

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_ahead(&self, n: usize) -> Option<&TokenKind> {
        self.tokens.get(self.pos + n).map(|t| &t.kind)
    }

    fn advance(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or(self.end_offset)
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.here(),
            kind: ParseErrorKind::Syntax,
        }
    }

    /// Enters one recursion level, rejecting statements nested past
    /// [`MAX_PARSE_DEPTH`]. Every recursion cycle in the grammar passes
    /// through a guarded function, so the native stack stays bounded.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(ParseError {
                message: format!("statement nesting exceeds {MAX_PARSE_DEPTH} levels"),
                offset: self.here(),
                kind: ParseErrorKind::DepthExceeded,
            });
        }
        Ok(())
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Keyword(k)) if k == kw)
    }

    fn take_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.take_keyword(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {kw}")))
        }
    }

    fn peek_symbol(&self, sym: Symbol) -> bool {
        matches!(self.peek(), Some(TokenKind::Symbol(s)) if *s == sym)
    }

    fn take_symbol(&mut self, sym: Symbol) -> bool {
        if self.peek_symbol(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Symbol) -> Result<(), ParseError> {
        if self.take_symbol(sym) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected `{}`", sym.as_str())))
        }
    }

    /// Takes an identifier (regular or delimited).
    fn expect_identifier(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(TokenKind::Identifier(name)) | Some(TokenKind::DelimitedIdentifier(name)) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            _ => Err(self.error_here("expected an identifier")),
        }
    }

    // ---- query productions -------------------------------------------

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        let body = self.parse_query_body()?;
        let order_by = if self.take_keyword("ORDER") {
            self.expect_keyword("BY")?;
            self.parse_order_items()?
        } else {
            Vec::new()
        };
        Ok(Query { body, order_by })
    }

    /// `body := term ((UNION | EXCEPT) [ALL] term)*` — UNION and EXCEPT
    /// share the lowest precedence; INTERSECT binds tighter (SQL-92).
    fn parse_query_body(&mut self) -> Result<QueryBody, ParseError> {
        let mut left = self.parse_query_term()?;
        loop {
            let op = if self.peek_keyword("UNION") {
                SetOp::Union
            } else if self.peek_keyword("EXCEPT") {
                SetOp::Except
            } else {
                return Ok(left);
            };
            self.pos += 1;
            let all = self.take_keyword("ALL");
            let right = self.parse_query_term()?;
            left = QueryBody::SetOp {
                left: Box::new(left),
                op,
                all,
                right: Box::new(right),
            };
        }
    }

    fn parse_query_term(&mut self) -> Result<QueryBody, ParseError> {
        let mut left = self.parse_query_primary()?;
        while self.take_keyword("INTERSECT") {
            let all = self.take_keyword("ALL");
            let right = self.parse_query_primary()?;
            left = QueryBody::SetOp {
                left: Box::new(left),
                op: SetOp::Intersect,
                all,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_query_primary(&mut self) -> Result<QueryBody, ParseError> {
        self.enter()?;
        let result = self.parse_query_primary_inner();
        self.depth -= 1;
        result
    }

    fn parse_query_primary_inner(&mut self) -> Result<QueryBody, ParseError> {
        if self.take_symbol(Symbol::LeftParen) {
            let body = self.parse_query_body()?;
            self.expect_symbol(Symbol::RightParen)?;
            Ok(body)
        } else {
            Ok(QueryBody::Select(Box::new(self.parse_select_block()?)))
        }
    }

    fn parse_select_block(&mut self) -> Result<Select, ParseError> {
        self.expect_keyword("SELECT")?;
        let distinct = if self.take_keyword("DISTINCT") {
            true
        } else {
            self.take_keyword("ALL");
            false
        };
        let items = self.parse_select_items()?;
        self.expect_keyword("FROM")?;
        let mut from = vec![self.parse_table_ref()?];
        while self.take_symbol(Symbol::Comma) {
            from.push(self.parse_table_ref()?);
        }
        let where_clause = if self.take_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let group_by = if self.take_keyword("GROUP") {
            self.expect_keyword("BY")?;
            let mut keys = vec![self.parse_expr()?];
            while self.take_symbol(Symbol::Comma) {
                keys.push(self.parse_expr()?);
            }
            keys
        } else {
            Vec::new()
        };
        let having = if self.take_keyword("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    fn parse_select_items(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        let mut items = vec![self.parse_select_item()?];
        while self.take_symbol(Symbol::Comma) {
            items.push(self.parse_select_item()?);
        }
        Ok(items)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.take_symbol(Symbol::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `T.*` — identifier, period, star.
        if let (
            Some(TokenKind::Identifier(q)) | Some(TokenKind::DelimitedIdentifier(q)),
            Some(TokenKind::Symbol(Symbol::Period)),
            Some(TokenKind::Symbol(Symbol::Star)),
        ) = (self.peek(), self.peek_ahead(1), self.peek_ahead(2))
        {
            let qualifier = q.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(qualifier));
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    /// `[AS] alias` — the bare-identifier form is allowed everywhere
    /// SQL-92 allows `AS`.
    fn parse_optional_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.take_keyword("AS") {
            return Ok(Some(self.expect_identifier()?));
        }
        match self.peek() {
            Some(TokenKind::Identifier(name)) | Some(TokenKind::DelimitedIdentifier(name)) => {
                let name = name.clone();
                self.pos += 1;
                Ok(Some(name))
            }
            _ => Ok(None),
        }
    }

    fn parse_order_items(&mut self) -> Result<Vec<OrderItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let ascending = if self.take_keyword("DESC") {
                false
            } else {
                self.take_keyword("ASC");
                true
            };
            items.push(OrderItem { expr, ascending });
            if !self.take_symbol(Symbol::Comma) {
                return Ok(items);
            }
        }
    }

    // ---- FROM clause --------------------------------------------------

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.take_keyword("CROSS") {
                self.expect_keyword("JOIN")?;
                JoinKind::Cross
            } else if self.take_keyword("INNER") {
                self.expect_keyword("JOIN")?;
                JoinKind::Inner
            } else if self.take_keyword("JOIN") {
                JoinKind::Inner
            } else if self.take_keyword("LEFT") {
                self.take_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::LeftOuter
            } else if self.take_keyword("RIGHT") {
                self.take_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::RightOuter
            } else if self.take_keyword("FULL") {
                self.take_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::FullOuter
            } else {
                return Ok(left);
            };
            let right = self.parse_table_primary()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_keyword("ON")?;
                Some(self.parse_expr()?)
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
    }

    fn parse_table_primary(&mut self) -> Result<TableRef, ParseError> {
        if self.take_symbol(Symbol::LeftParen) {
            if self.peek_keyword("SELECT") || self.peek_symbol(Symbol::LeftParen) {
                // Derived table: `(query) [AS] alias` (alias mandatory in
                // SQL-92).
                let query = self.parse_query()?;
                self.expect_symbol(Symbol::RightParen)?;
                let alias = self
                    .parse_optional_alias()?
                    .ok_or_else(|| self.error_here("derived table requires an alias"))?;
                return Ok(TableRef::Derived {
                    query: Box::new(query),
                    alias,
                });
            }
            // Parenthesized join. The paper's Figure-3 example aliases a
            // parenthesized join (`(B JOIN C ON ...) AS P`); SQL-92 proper
            // does not, so when an alias follows we desugar into a derived
            // table `(SELECT * FROM <join>) AS alias` — the same tabular
            // view the paper's child RSN represents.
            let join = self.parse_table_ref()?;
            self.expect_symbol(Symbol::RightParen)?;
            if let Some(alias) = self.parse_optional_alias()? {
                let select = Select {
                    distinct: false,
                    items: vec![SelectItem::Wildcard],
                    from: vec![join],
                    where_clause: None,
                    group_by: vec![],
                    having: None,
                };
                return Ok(TableRef::Derived {
                    query: Box::new(Query {
                        body: QueryBody::Select(Box::new(select)),
                        order_by: vec![],
                    }),
                    alias,
                });
            }
            return Ok(join);
        }
        // Base table: possibly qualified name, optional alias.
        let mut parts = vec![self.expect_identifier()?];
        while self.peek_symbol(Symbol::Period) {
            self.pos += 1;
            parts.push(self.expect_identifier()?);
        }
        let alias = self.parse_optional_alias()?;
        Ok(TableRef::Table {
            name: ObjectName(parts),
            alias,
        })
    }

    // ---- expressions ----------------------------------------------------
    //
    // Precedence (low → high):
    //   OR < AND < NOT < predicates/comparison < + - || < * / < unary ± <
    //   primary.

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.parse_or();
        self.depth -= 1;
        result
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.take_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.take_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.take_keyword("NOT") {
            // Self-recursive (`NOT NOT x`), so it needs its own depth guard.
            self.enter()?;
            let inner = self.parse_not();
            self.depth -= 1;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner?),
            })
        } else {
            self.parse_predicate()
        }
    }

    /// Comparison and the SQL predicate forms. Non-associative: at most one
    /// comparison per level.
    fn parse_predicate(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.take_keyword("IS") {
            let negated = self.take_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // [NOT] BETWEEN / IN / LIKE
        let negated = self.take_keyword("NOT");
        if self.take_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.take_keyword("IN") {
            self.expect_symbol(Symbol::LeftParen)?;
            if self.peek_keyword("SELECT") {
                let query = self.parse_query()?;
                self.expect_symbol(Symbol::RightParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = vec![self.parse_expr()?];
            while self.take_symbol(Symbol::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_symbol(Symbol::RightParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.take_keyword("LIKE") {
            let pattern = self.parse_additive()?;
            let escape = if self.take_keyword("ESCAPE") {
                Some(Box::new(self.parse_additive()?))
            } else {
                None
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                escape,
                negated,
            });
        }
        if negated {
            return Err(self.error_here("expected BETWEEN, IN, or LIKE after NOT"));
        }

        // Comparison, possibly quantified.
        let op = match self.peek() {
            Some(TokenKind::Symbol(Symbol::Eq)) => Some(CompareOp::Eq),
            Some(TokenKind::Symbol(Symbol::NotEq)) => Some(CompareOp::NotEq),
            Some(TokenKind::Symbol(Symbol::Lt)) => Some(CompareOp::Lt),
            Some(TokenKind::Symbol(Symbol::LtEq)) => Some(CompareOp::LtEq),
            Some(TokenKind::Symbol(Symbol::Gt)) => Some(CompareOp::Gt),
            Some(TokenKind::Symbol(Symbol::GtEq)) => Some(CompareOp::GtEq),
            _ => None,
        };
        let Some(op) = op else { return Ok(left) };
        self.pos += 1;

        let quantifier = if self.take_keyword("ANY") || self.take_keyword("SOME") {
            Some(Quantifier::Any)
        } else if self.take_keyword("ALL") {
            Some(Quantifier::All)
        } else {
            None
        };
        if let Some(quantifier) = quantifier {
            self.expect_symbol(Symbol::LeftParen)?;
            let query = self.parse_query()?;
            self.expect_symbol(Symbol::RightParen)?;
            return Ok(Expr::Quantified {
                expr: Box::new(left),
                op,
                quantifier,
                query: Box::new(query),
            });
        }
        let right = self.parse_additive()?;
        Ok(Expr::Binary {
            left: Box::new(left),
            op: BinaryOp::Compare(op),
            right: Box::new(right),
        })
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.take_symbol(Symbol::Plus) {
                BinaryOp::Add
            } else if self.take_symbol(Symbol::Minus) {
                BinaryOp::Sub
            } else if self.take_symbol(Symbol::Concat) {
                BinaryOp::Concat
            } else {
                return Ok(left);
            };
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = if self.take_symbol(Symbol::Star) {
                BinaryOp::Mul
            } else if self.take_symbol(Symbol::Slash) {
                BinaryOp::Div
            } else {
                return Ok(left);
            };
            let right = self.parse_unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.take_symbol(Symbol::Minus) {
            // Self-recursive (`--x`), so it needs its own depth guard.
            self.enter()?;
            let inner = self.parse_unary();
            self.depth -= 1;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner?),
            });
        }
        if self.take_symbol(Symbol::Plus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Plus,
                expr: Box::new(inner),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(TokenKind::Integer(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Integer(v)))
            }
            Some(TokenKind::Decimal(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Decimal(v)))
            }
            Some(TokenKind::Double(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Double(v)))
            }
            Some(TokenKind::String(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::String(v)))
            }
            Some(TokenKind::Parameter) => {
                self.pos += 1;
                let ordinal = self.parameter_count;
                self.parameter_count += 1;
                Ok(Expr::Parameter(ordinal))
            }
            Some(TokenKind::Keyword(kw)) => match kw.as_str() {
                "NULL" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Literal::Null))
                }
                "DATE" => {
                    self.pos += 1;
                    match self.advance() {
                        Some(TokenKind::String(s)) => Ok(Expr::Literal(Literal::Date(s))),
                        _ => Err(self.error_here("expected string literal after DATE")),
                    }
                }
                "CASE" => self.parse_case(),
                "CAST" => self.parse_cast(),
                "EXISTS" => {
                    self.pos += 1;
                    self.expect_symbol(Symbol::LeftParen)?;
                    let query = self.parse_query()?;
                    self.expect_symbol(Symbol::RightParen)?;
                    Ok(Expr::Exists {
                        query: Box::new(query),
                        negated: false,
                    })
                }
                "TRIM" => self.parse_trim(),
                _ => Err(self.error_here(format!("unexpected keyword {kw}"))),
            },
            Some(TokenKind::Symbol(Symbol::LeftParen)) => {
                self.pos += 1;
                if self.peek_keyword("SELECT") {
                    let query = self.parse_query()?;
                    self.expect_symbol(Symbol::RightParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(query)));
                }
                let inner = self.parse_expr()?;
                self.expect_symbol(Symbol::RightParen)?;
                Ok(inner)
            }
            Some(TokenKind::Identifier(name)) | Some(TokenKind::DelimitedIdentifier(name)) => {
                // Function call?
                if matches!(
                    self.peek_ahead(1),
                    Some(TokenKind::Symbol(Symbol::LeftParen))
                ) {
                    return self.parse_function_call(name);
                }
                self.pos += 1;
                // Qualified column `T.C`?
                if self.peek_symbol(Symbol::Period) {
                    self.pos += 1;
                    let column = self.expect_identifier()?;
                    return Ok(Expr::Column(ColumnRef::qualified(name, column)));
                }
                Ok(Expr::Column(ColumnRef::unqualified(name)))
            }
            _ => Err(self.error_here("expected an expression")),
        }
    }

    fn parse_function_call(&mut self, name: String) -> Result<Expr, ParseError> {
        self.pos += 1; // name
        self.expect_symbol(Symbol::LeftParen)?; // (

        match name.as_str() {
            "SUBSTRING" => return self.parse_substring(),
            "POSITION" => return self.parse_position(),
            _ => {}
        }

        if self.take_symbol(Symbol::Star) {
            // COUNT(*) — only COUNT accepts the star form.
            if name != "COUNT" {
                return Err(self.error_here(format!("{name}(*) is not valid")));
            }
            self.expect_symbol(Symbol::RightParen)?;
            return Ok(Expr::Function {
                name,
                args: FunctionArgs::Star,
            });
        }

        let distinct = if self.take_keyword("DISTINCT") {
            true
        } else {
            self.take_keyword("ALL");
            false
        };

        let mut args = Vec::new();
        if !self.peek_symbol(Symbol::RightParen) {
            args.push(self.parse_expr()?);
            while self.take_symbol(Symbol::Comma) {
                args.push(self.parse_expr()?);
            }
        }
        self.expect_symbol(Symbol::RightParen)?;
        Ok(Expr::Function {
            name,
            args: FunctionArgs::List { distinct, args },
        })
    }

    /// `SUBSTRING(s FROM start [FOR len])`; the comma form
    /// `SUBSTRING(s, start [, len])` used by many tools is also accepted.
    fn parse_substring(&mut self) -> Result<Expr, ParseError> {
        let source = self.parse_expr()?;
        let comma_form = self.take_symbol(Symbol::Comma);
        if !comma_form {
            self.expect_keyword("FROM")?;
        }
        let start = self.parse_expr()?;
        let length = if comma_form {
            if self.take_symbol(Symbol::Comma) {
                Some(Box::new(self.parse_expr()?))
            } else {
                None
            }
        } else if self.take_keyword("FOR") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_symbol(Symbol::RightParen)?;
        Ok(Expr::Substring {
            expr: Box::new(source),
            start: Box::new(start),
            length,
        })
    }

    /// `POSITION(needle IN haystack)`.
    fn parse_position(&mut self) -> Result<Expr, ParseError> {
        let needle = self.parse_additive()?;
        self.expect_keyword("IN")?;
        let haystack = self.parse_expr()?;
        self.expect_symbol(Symbol::RightParen)?;
        Ok(Expr::Position {
            needle: Box::new(needle),
            haystack: Box::new(haystack),
        })
    }

    /// `TRIM([LEADING|TRAILING|BOTH] [chars] FROM s)` or `TRIM(s)`.
    fn parse_trim(&mut self) -> Result<Expr, ParseError> {
        self.pos += 1; // TRIM
        self.expect_symbol(Symbol::LeftParen)?;
        let side = if self.take_keyword("LEADING") {
            Some(TrimSide::Leading)
        } else if self.take_keyword("TRAILING") {
            Some(TrimSide::Trailing)
        } else if self.take_keyword("BOTH") {
            Some(TrimSide::Both)
        } else {
            None
        };
        // After an explicit side: `[chars] FROM s`. Without one: either
        // `chars FROM s` or just `s`.
        if let Some(side) = side {
            if self.take_keyword("FROM") {
                let expr = self.parse_expr()?;
                self.expect_symbol(Symbol::RightParen)?;
                return Ok(Expr::Trim {
                    side,
                    trim_chars: None,
                    expr: Box::new(expr),
                });
            }
        }
        let first = self.parse_expr()?;
        if self.take_keyword("FROM") {
            let expr = self.parse_expr()?;
            self.expect_symbol(Symbol::RightParen)?;
            return Ok(Expr::Trim {
                side: side.unwrap_or(TrimSide::Both),
                trim_chars: Some(Box::new(first)),
                expr: Box::new(expr),
            });
        }
        if side.is_some() {
            return Err(self.error_here("expected FROM in TRIM"));
        }
        self.expect_symbol(Symbol::RightParen)?;
        Ok(Expr::Trim {
            side: TrimSide::Both,
            trim_chars: None,
            expr: Box::new(first),
        })
    }

    fn parse_case(&mut self) -> Result<Expr, ParseError> {
        self.pos += 1; // CASE
        let operand = if self.peek_keyword("WHEN") {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.take_keyword("WHEN") {
            let when = self.parse_expr()?;
            self.expect_keyword("THEN")?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.error_here("CASE requires at least one WHEN branch"));
        }
        let else_result = if self.take_keyword("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_result,
        })
    }

    fn parse_cast(&mut self) -> Result<Expr, ParseError> {
        self.pos += 1; // CAST
        self.expect_symbol(Symbol::LeftParen)?;
        let expr = self.parse_expr()?;
        self.expect_keyword("AS")?;
        let target = self.parse_type_name()?;
        self.expect_symbol(Symbol::RightParen)?;
        Ok(Expr::Cast {
            expr: Box::new(expr),
            target,
        })
    }

    fn parse_type_name(&mut self) -> Result<SqlTypeName, ParseError> {
        // DATE is a keyword; the other type names lex as identifiers.
        if self.take_keyword("DATE") {
            return Ok(SqlTypeName::Date);
        }
        let word = self.expect_identifier()?;
        let name = match word.as_str() {
            "SMALLINT" => SqlTypeName::Smallint,
            "INT" | "INTEGER" => SqlTypeName::Integer,
            "BIGINT" => SqlTypeName::Bigint,
            "DECIMAL" | "NUMERIC" | "DEC" => {
                self.skip_type_parameters()?;
                SqlTypeName::Decimal
            }
            "REAL" => SqlTypeName::Real,
            "FLOAT" => {
                self.skip_type_parameters()?;
                SqlTypeName::Double
            }
            "DOUBLE" => {
                // Optional PRECISION.
                if matches!(self.peek(), Some(TokenKind::Identifier(w)) if w == "PRECISION") {
                    self.pos += 1;
                }
                SqlTypeName::Double
            }
            "CHAR" | "CHARACTER" => {
                // CHARACTER VARYING?
                if matches!(self.peek(), Some(TokenKind::Identifier(w)) if w == "VARYING") {
                    self.pos += 1;
                    self.skip_type_parameters()?;
                    SqlTypeName::Varchar
                } else {
                    self.skip_type_parameters()?;
                    SqlTypeName::Char
                }
            }
            "VARCHAR" => {
                self.skip_type_parameters()?;
                SqlTypeName::Varchar
            }
            other => return Err(self.error_here(format!("unknown type name {other}"))),
        };
        Ok(name)
    }

    /// Skips `(p)` or `(p, s)` length/precision parameters; the driver's
    /// type system keys on the type class only.
    fn skip_type_parameters(&mut self) -> Result<(), ParseError> {
        if self.take_symbol(Symbol::LeftParen) {
            loop {
                match self.advance() {
                    Some(TokenKind::Symbol(Symbol::RightParen)) => return Ok(()),
                    Some(_) => continue,
                    None => return Err(self.error_here("unterminated type parameters")),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(sql: &str) -> Select {
        match parse_select(sql).unwrap().body {
            QueryBody::Select(s) => *s,
            other => panic!("expected plain select, got {other:?}"),
        }
    }

    #[test]
    fn example5_simple_select() {
        // Paper Example 5.
        let s = select("SELECT * FROM CUSTOMERS");
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        assert!(matches!(
            &s.from[0],
            TableRef::Table { name, alias: None } if name.base() == "CUSTOMERS"
        ));
    }

    #[test]
    fn aliases_without_as() {
        // Paper §3.5: SELECT CUSTOMERID ID, CUSTOMERNAME NAME FROM CUSTOMERS
        let s = select("SELECT CUSTOMERID ID, CUSTOMERNAME NAME FROM CUSTOMERS");
        assert_eq!(s.items.len(), 2);
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr { alias: Some(a), .. } if a == "ID"
        ));
    }

    #[test]
    fn example7_subquery() {
        // Paper Example 7.
        let s = select(
            "SELECT INFO.ID, INFO.NAME FROM (SELECT CUSTOMERID ID, CUSTOMERNAME NAME \
             FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10",
        );
        assert!(matches!(&s.from[0], TableRef::Derived { alias, .. } if alias == "INFO"));
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn example9_left_outer_join() {
        // Paper Example 9.
        let s = select(
            "SELECT CUSTOMERS.CUSTOMERID, PAYMENTS.PAYMENT FROM CUSTOMERS \
             LEFT OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID=PAYMENTS.CUSTID",
        );
        match &s.from[0] {
            TableRef::Join { kind, on, .. } => {
                assert_eq!(*kind, JoinKind::LeftOuter);
                assert!(on.is_some());
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn inner_join_on() {
        let s = select(
            "SELECT * FROM CUSTOMERS INNER JOIN ORDERS ON CUSTOMERS.CUSTOMERID = ORDERS.CUSTID",
        );
        assert!(matches!(
            &s.from[0],
            TableRef::Join {
                kind: JoinKind::Inner,
                ..
            }
        ));
    }

    #[test]
    fn figure3_nested_join_with_alias_desugars() {
        // Paper §3.4.2: (A JOIN (B JOIN C ON B.C1 = C.C2) AS P ON A.C1 = P.C1)
        let s = select("SELECT * FROM (A JOIN (B JOIN C ON B.C1 = C.C2) AS P ON A.C1 = P.C1)");
        match &s.from[0] {
            TableRef::Join { right, .. } => {
                assert!(matches!(&**right, TableRef::Derived { alias, .. } if alias == "P"));
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn group_by_having_order_by() {
        let q = parse_select(
            "SELECT CUSTOMERID, COUNT(*) N FROM ORDERS GROUP BY CUSTOMERID \
             HAVING COUNT(*) > 2 ORDER BY N DESC, CUSTOMERID",
        )
        .unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].ascending);
        assert!(q.order_by[1].ascending);
        let QueryBody::Select(s) = q.body else {
            panic!()
        };
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
    }

    #[test]
    fn set_operations_precedence() {
        // INTERSECT binds tighter than UNION.
        let q = parse_select("SELECT A FROM T UNION SELECT B FROM U INTERSECT SELECT C FROM V")
            .unwrap();
        match q.body {
            QueryBody::SetOp { op, right, .. } => {
                assert_eq!(op, SetOp::Union);
                assert!(matches!(
                    *right,
                    QueryBody::SetOp {
                        op: SetOp::Intersect,
                        ..
                    }
                ));
            }
            other => panic!("expected set op, got {other:?}"),
        }
    }

    #[test]
    fn union_all_flag() {
        let q = parse_select("SELECT A FROM T UNION ALL SELECT A FROM U").unwrap();
        assert!(matches!(q.body, QueryBody::SetOp { all: true, .. }));
    }

    #[test]
    fn predicates() {
        let s = select(
            "SELECT * FROM T WHERE A BETWEEN 1 AND 10 AND B NOT IN (1, 2) \
             AND C LIKE 'a%' ESCAPE '!' AND D IS NOT NULL",
        );
        // Just verify the whole conjunction parsed.
        let mut count = 0;
        fn count_ands(e: &Expr, count: &mut usize) {
            if let Expr::Binary {
                op: BinaryOp::And,
                left,
                right,
                ..
            } = e
            {
                *count += 1;
                count_ands(left, count);
                count_ands(right, count);
            }
        }
        count_ands(s.where_clause.as_ref().unwrap(), &mut count);
        assert_eq!(count, 3);
    }

    #[test]
    fn subquery_predicates() {
        let s = select(
            "SELECT * FROM T WHERE EXISTS (SELECT C FROM U) AND \
             A IN (SELECT C FROM U) AND B > ANY (SELECT C FROM U) AND \
             X = (SELECT MAX(C) FROM U)",
        );
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn quantified_all() {
        let s = select("SELECT * FROM T WHERE A >= ALL (SELECT B FROM U)");
        let Expr::Quantified { quantifier, op, .. } = s.where_clause.unwrap() else {
            panic!()
        };
        assert_eq!(quantifier, Quantifier::All);
        assert_eq!(op, CompareOp::GtEq);
    }

    #[test]
    fn case_and_cast() {
        let s = select(
            "SELECT CASE WHEN A > 0 THEN 'pos' ELSE 'neg' END, \
             CAST(A AS VARCHAR(10)), CASE B WHEN 1 THEN 'one' END FROM T",
        );
        assert_eq!(s.items.len(), 3);
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr {
                expr: Expr::Cast {
                    target: SqlTypeName::Varchar,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn special_string_functions() {
        let s = select(
            "SELECT SUBSTRING(NAME FROM 1 FOR 3), TRIM(BOTH FROM NAME), \
             POSITION('x' IN NAME), TRIM(LEADING '0' FROM CODE), TRIM(NAME) FROM T",
        );
        assert_eq!(s.items.len(), 5);
    }

    #[test]
    fn substring_comma_form() {
        let s = select("SELECT SUBSTRING(NAME, 2, 3) FROM T");
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr {
                expr: Expr::Substring {
                    length: Some(_),
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn count_star_and_distinct() {
        let s = select("SELECT COUNT(*), COUNT(DISTINCT A) FROM T");
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr {
                expr: Expr::Function {
                    args: FunctionArgs::Star,
                    ..
                },
                ..
            }
        ));
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr {
                expr: Expr::Function {
                    args: FunctionArgs::List { distinct: true, .. },
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn star_only_for_count() {
        assert!(parse_select("SELECT SUM(*) FROM T").is_err());
    }

    #[test]
    fn parameters_get_ordinals() {
        let s = select("SELECT * FROM T WHERE A = ? AND B = ?");
        let Expr::Binary { left, right, .. } = s.where_clause.unwrap() else {
            panic!()
        };
        let Expr::Binary { right: r1, .. } = *left else {
            panic!()
        };
        let Expr::Binary { right: r2, .. } = *right else {
            panic!()
        };
        assert_eq!(*r1, Expr::Parameter(0));
        assert_eq!(*r2, Expr::Parameter(1));
    }

    #[test]
    fn arithmetic_precedence() {
        let s = select("SELECT A + B * C FROM T");
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        assert!(matches!(
            expr,
            Expr::Binary { op: BinaryOp::Add, right, .. }
                if matches!(**right, Expr::Binary { op: BinaryOp::Mul, .. })
        ));
    }

    #[test]
    fn date_literal() {
        let s = select("SELECT * FROM T WHERE D >= DATE '2006-01-01'");
        let Expr::Binary { right, .. } = s.where_clause.unwrap() else {
            panic!()
        };
        assert_eq!(*right, Expr::Literal(Literal::Date("2006-01-01".into())));
    }

    #[test]
    fn qualified_table_names() {
        let s = select("SELECT * FROM TESTAPP.DSFILE.CUSTOMERS C");
        assert!(matches!(
            &s.from[0],
            TableRef::Table { name, alias: Some(a) }
                if name.0.len() == 3 && a == "C"
        ));
    }

    #[test]
    fn derived_table_requires_alias() {
        assert!(parse_select("SELECT * FROM (SELECT A FROM T)").is_err());
    }

    #[test]
    fn syntactically_invalid_rejected_immediately() {
        // Paper §3.4.1.
        for bad in [
            "SELECT FROM T",
            "SELECT * T",
            "SELECT * FROM",
            "SELECT * FROM T WHERE",
            "SELECT * FROM T GROUP CUSTOMERID",
            "FROM T SELECT *",
            "SELECT * FROM T ORDER CUSTOMERID",
        ] {
            assert!(parse_select(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn trailing_tokens_rejected() {
        // `T x` parses as an alias; the second stray identifier must fail.
        assert!(parse_select("SELECT A FROM T x y").is_err());
    }

    #[test]
    fn trailing_semicolon_accepted() {
        assert!(parse_select("SELECT A FROM T;").is_ok());
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let err = parse_select("SELECT * FROM T WHERE ???").unwrap_err();
        assert!(err.offset >= 22, "offset {} too small", err.offset);
    }

    #[test]
    fn not_predicates() {
        let s = select("SELECT * FROM T WHERE NOT A = 1 AND B NOT BETWEEN 1 AND 2");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn cross_join_has_no_on() {
        let s = select("SELECT * FROM A CROSS JOIN B");
        assert!(matches!(
            &s.from[0],
            TableRef::Join {
                kind: JoinKind::Cross,
                on: None,
                ..
            }
        ));
    }

    #[test]
    fn implicit_cross_join_comma() {
        let s = select("SELECT * FROM A, B, C");
        assert_eq!(s.from.len(), 3);
    }

    #[test]
    fn order_by_ordinal() {
        let q = parse_select("SELECT A, B FROM T ORDER BY 2 DESC").unwrap();
        assert_eq!(q.order_by[0].expr, Expr::Literal(Literal::Integer(2)));
    }

    #[test]
    fn scalar_subquery_in_select_list() {
        let s = select("SELECT (SELECT MAX(B) FROM U), A FROM T");
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr {
                expr: Expr::ScalarSubquery(_),
                ..
            }
        ));
    }

    #[test]
    fn concat_operator() {
        let s = select("SELECT A || '-' || B FROM T");
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr {
                expr: Expr::Binary {
                    op: BinaryOp::Concat,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn parenthesized_set_operand() {
        let q = parse_select("(SELECT A FROM T) UNION (SELECT A FROM U) ORDER BY A").unwrap();
        assert!(matches!(q.body, QueryBody::SetOp { .. }));
        assert_eq!(q.order_by.len(), 1);
    }

    #[test]
    fn deep_expression_nesting_reports_depth_exceeded() {
        let sql = format!("SELECT {}1{} FROM T", "(".repeat(5_000), ")".repeat(5_000));
        let err = parse_select(&sql).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::DepthExceeded);
    }

    #[test]
    fn deep_query_nesting_reports_depth_exceeded() {
        let sql = format!("{}SELECT A FROM T{}", "(".repeat(5_000), ")".repeat(5_000));
        let err = parse_select(&sql).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::DepthExceeded);
    }

    #[test]
    fn deep_not_chain_reports_depth_exceeded() {
        let sql = format!("SELECT A FROM T WHERE {} A = 1", "NOT ".repeat(5_000));
        let err = parse_select(&sql).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::DepthExceeded);
    }

    #[test]
    fn nesting_under_the_limit_still_parses() {
        let depth = MAX_PARSE_DEPTH / 2;
        let sql = format!("SELECT {}1{} FROM T", "(".repeat(depth), ")".repeat(depth));
        assert!(parse_select(&sql).is_ok());
    }
}
