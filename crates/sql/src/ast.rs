//! The SQL-92 SELECT abstract syntax tree.
//!
//! "When the translator parses the input SQL in stage-one, it generates an
//! AST where each node is a typed node ... designed to correspond to some
//! SQL abstraction" (paper §3.4.2). The central abstraction is the
//! *relational view*: queries, joins, set operations, and base tables are
//! all virtual tables, and each such AST variant becomes a resultset node
//! (RSN) in the translator.

use std::fmt;

/// A complete SELECT statement: a query body plus optional top-level
/// `ORDER BY` (SQL-92 attaches ordering to the whole query expression,
/// outside any set operation).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The body — a simple select or a set operation tree.
    pub body: QueryBody,
    /// `ORDER BY` items; empty when absent.
    pub order_by: Vec<OrderItem>,
}

/// The body of a query expression.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    /// A `SELECT ... FROM ...` block.
    Select(Box<Select>),
    /// `left UNION/INTERSECT/EXCEPT [ALL] right`.
    SetOp {
        /// Left operand.
        left: Box<QueryBody>,
        /// Which set operation.
        op: SetOp,
        /// `ALL` keeps duplicates; plain form removes them.
        all: bool,
        /// Right operand.
        right: Box<QueryBody>,
    },
}

/// The three SQL set operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `UNION`
    Union,
    /// `INTERSECT`
    Intersect,
    /// `EXCEPT`
    Except,
}

/// One `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `DISTINCT` was specified.
    pub distinct: bool,
    /// The projection.
    pub items: Vec<SelectItem>,
    /// Comma-separated `FROM` references (implicitly cross joined).
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

/// One item of the projection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `T.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS` alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// The output column alias, if given.
        alias: Option<String>,
    },
}

/// A `FROM`-clause reference. Each variant maps to an RSN type in the
/// translator (paper Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A base table (data-service function in the DSP world), optionally
    /// qualified `[catalog.]schema.table` and optionally aliased.
    Table {
        /// Name path, last component is the table name.
        name: ObjectName,
        /// Range-variable alias, if given.
        alias: Option<String>,
    },
    /// A parenthesized subquery with its mandatory SQL-92 alias.
    Derived {
        /// The subquery.
        query: Box<Query>,
        /// The range-variable name (SQL-92 requires one).
        alias: String,
    },
    /// A join of two references.
    Join {
        /// Left operand.
        left: Box<TableRef>,
        /// Right operand.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// `ON` predicate; `None` for `CROSS JOIN`.
        on: Option<Expr>,
    },
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`
    Inner,
    /// `LEFT [OUTER] JOIN`
    LeftOuter,
    /// `RIGHT [OUTER] JOIN`
    RightOuter,
    /// `FULL [OUTER] JOIN`
    FullOuter,
    /// `CROSS JOIN`
    Cross,
}

/// A possibly-qualified object name: `T`, `S.T`, or `C.S.T`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectName(pub Vec<String>);

impl ObjectName {
    /// Single-component name.
    pub fn simple(name: impl Into<String>) -> ObjectName {
        ObjectName(vec![name.into()])
    }

    /// The final component (the table name proper).
    pub fn base(&self) -> &str {
        self.0.last().expect("ObjectName is never empty")
    }

    /// Qualifier components (everything before the base), possibly empty.
    pub fn qualifiers(&self) -> &[String] {
        &self.0[..self.0.len() - 1]
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.join("."))
    }
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// The sort key. A bare integer literal is an ordinal reference to a
    /// select item (resolved in stage two).
    pub expr: Expr,
    /// Ascending unless `DESC` was written.
    pub ascending: bool,
}

/// Scalar and predicate expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference, optionally qualified: `ID`, `T.ID`.
    Column(ColumnRef),
    /// A literal.
    Literal(Literal),
    /// `?` parameter marker; payload is the zero-based ordinal.
    Parameter(usize),
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operator application (arithmetic, comparison, logic, `||`).
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call — scalar (`UPPER(x)`) or aggregate (`SUM(x)`).
    /// `COUNT(*)` is represented with [`FunctionArgs::Star`].
    Function {
        /// Uppercased function name.
        name: String,
        /// Arguments.
        args: FunctionArgs,
    },
    /// `CASE [operand] WHEN ... THEN ... [ELSE ...] END`.
    Case {
        /// The simple-CASE operand, if present.
        operand: Option<Box<Expr>>,
        /// `(WHEN, THEN)` pairs, in order.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` result.
        else_result: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// The value being cast.
        expr: Box<Expr>,
        /// Target SQL type.
        target: SqlTypeName,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// The candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery.
        query: Box<Query>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// The subquery.
        query: Box<Query>,
        /// True for `NOT EXISTS`.
        negated: bool,
    },
    /// A parenthesized subquery used as a scalar value.
    ScalarSubquery(Box<Query>),
    /// `expr op ANY/SOME/ALL (subquery)`.
    Quantified {
        /// Left operand.
        expr: Box<Expr>,
        /// Comparison operator.
        op: CompareOp,
        /// `ANY`/`SOME` (existential) vs `ALL` (universal).
        quantifier: Quantifier,
        /// The subquery.
        query: Box<Query>,
    },
    /// `expr [NOT] LIKE pattern [ESCAPE esc]`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// The pattern (`%`/`_` wildcards).
        pattern: Box<Expr>,
        /// Optional escape character expression.
        escape: Option<Box<Expr>>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `SUBSTRING(s FROM start [FOR len])`.
    Substring {
        /// Source string.
        expr: Box<Expr>,
        /// 1-based start position.
        start: Box<Expr>,
        /// Length, if given.
        length: Option<Box<Expr>>,
    },
    /// `TRIM([LEADING|TRAILING|BOTH] [chars] FROM s)`.
    Trim {
        /// Which side(s) to trim.
        side: TrimSide,
        /// The characters to strip; default is a single space.
        trim_chars: Option<Box<Expr>>,
        /// Source string.
        expr: Box<Expr>,
    },
    /// `POSITION(needle IN haystack)`.
    Position {
        /// The string searched for.
        needle: Box<Expr>,
        /// The string searched in.
        haystack: Box<Expr>,
    },
}

/// Arguments of a [`Expr::Function`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionArgs {
    /// `COUNT(*)`.
    Star,
    /// Ordinary argument list; `distinct` records `COUNT(DISTINCT x)` etc.
    List {
        /// `DISTINCT` inside the call.
        distinct: bool,
        /// The arguments.
        args: Vec<Expr>,
    },
}

/// A column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table qualifier (range variable or table name), if written.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn unqualified(name: impl Into<String>) -> ColumnRef {
        ColumnRef {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Qualified reference.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> ColumnRef {
        ColumnRef {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{}.{}", q, self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// Literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Exact numeric without a decimal point.
    Integer(i64),
    /// Exact numeric with a decimal point.
    Decimal(f64),
    /// Approximate numeric.
    Double(f64),
    /// Character string.
    String(String),
    /// `DATE 'YYYY-MM-DD'`.
    Date(String),
    /// `NULL`.
    Null,
}

impl Literal {
    /// The SQL-92 type a literal carries on its face (§5.3: an exact
    /// numeric without a point is INTEGER, with a point DECIMAL; an
    /// approximate numeric is DOUBLE PRECISION; a character string is
    /// VARCHAR). `None` for `NULL`, which belongs to every type.
    pub fn type_name(&self) -> Option<SqlTypeName> {
        Some(match self {
            Literal::Integer(_) => SqlTypeName::Integer,
            Literal::Decimal(_) => SqlTypeName::Decimal,
            Literal::Double(_) => SqlTypeName::Double,
            Literal::String(_) => SqlTypeName::Varchar,
            Literal::Date(_) => SqlTypeName::Date,
            Literal::Null => return None,
        })
    }

    /// Whether the literal is `NULL` — the only literal whose type is
    /// context-dependent.
    pub fn is_null(&self) -> bool {
        matches!(self, Literal::Null)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `+` (no-op, kept for faithful round-tripping)
    Plus,
    /// `NOT`
    Not,
}

/// Binary operators, lowest precedence last in each group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `||`
    Concat,
    /// Comparison.
    Compare(CompareOp),
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// The six SQL comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CompareOp {
    /// SQL spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::NotEq => "<>",
            CompareOp::Lt => "<",
            CompareOp::LtEq => "<=",
            CompareOp::Gt => ">",
            CompareOp::GtEq => ">=",
        }
    }

    /// The operator with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::NotEq => CompareOp::NotEq,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::LtEq => CompareOp::GtEq,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::GtEq => CompareOp::LtEq,
        }
    }

    /// The logically negated operator (`NOT (a < b)` ⇔ `a >= b` under
    /// two-valued logic; NULL handling stays with the caller).
    pub fn negated(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::NotEq,
            CompareOp::NotEq => CompareOp::Eq,
            CompareOp::Lt => CompareOp::GtEq,
            CompareOp::LtEq => CompareOp::Gt,
            CompareOp::Gt => CompareOp::LtEq,
            CompareOp::GtEq => CompareOp::Lt,
        }
    }
}

/// `ANY`/`SOME` vs `ALL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// `ANY` / `SOME` — existential.
    Any,
    /// `ALL` — universal.
    All,
}

/// `TRIM` sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrimSide {
    /// `BOTH` (default).
    Both,
    /// `LEADING`.
    Leading,
    /// `TRAILING`.
    Trailing,
}

/// CAST target type names (SQL-92 data types relevant to the driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlTypeName {
    /// `SMALLINT`
    Smallint,
    /// `INTEGER` / `INT`
    Integer,
    /// `BIGINT` (common extension, accepted)
    Bigint,
    /// `DECIMAL[(p[,s])]` / `NUMERIC`
    Decimal,
    /// `REAL`
    Real,
    /// `DOUBLE PRECISION` / `FLOAT`
    Double,
    /// `CHAR[(n)]` / `CHARACTER`
    Char,
    /// `VARCHAR[(n)]` / `CHARACTER VARYING`
    Varchar,
    /// `DATE`
    Date,
}

impl SqlTypeName {
    /// Canonical SQL spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SqlTypeName::Smallint => "SMALLINT",
            SqlTypeName::Integer => "INTEGER",
            SqlTypeName::Bigint => "BIGINT",
            SqlTypeName::Decimal => "DECIMAL",
            SqlTypeName::Real => "REAL",
            SqlTypeName::Double => "DOUBLE PRECISION",
            SqlTypeName::Char => "CHAR",
            SqlTypeName::Varchar => "VARCHAR",
            SqlTypeName::Date => "DATE",
        }
    }
}

/// The SQL-92 aggregate function names.
pub const AGGREGATE_FUNCTIONS: &[&str] = &["AVG", "COUNT", "MAX", "MIN", "SUM"];

/// True when `name` is an aggregate function.
pub fn is_aggregate_function(name: &str) -> bool {
    AGGREGATE_FUNCTIONS.contains(&name)
}

impl Expr {
    /// True when this expression *is* an aggregate call (not merely
    /// contains one).
    pub fn is_aggregate_call(&self) -> bool {
        matches!(self, Expr::Function { name, .. } if is_aggregate_function(name))
    }

    /// True when any aggregate call appears in this expression tree,
    /// without descending into subqueries (their aggregates belong to their
    /// own contexts — paper §3.4.3).
    pub fn contains_aggregate(&self) -> bool {
        if self.is_aggregate_call() {
            return true;
        }
        let mut found = false;
        self.visit_children(&mut |child| {
            if !found && child.contains_aggregate() {
                found = true;
            }
        });
        found
    }

    /// Calls `visit` on each direct child expression (not subqueries).
    pub fn visit_children(&self, visit: &mut dyn FnMut(&Expr)) {
        match self {
            Expr::Column(_) | Expr::Literal(_) | Expr::Parameter(_) => {}
            Expr::Unary { expr, .. } => visit(expr),
            Expr::Binary { left, right, .. } => {
                visit(left);
                visit(right);
            }
            Expr::Function { args, .. } => {
                if let FunctionArgs::List { args, .. } = args {
                    args.iter().for_each(&mut *visit);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                if let Some(op) = operand {
                    visit(op);
                }
                for (w, t) in branches {
                    visit(w);
                    visit(t);
                }
                if let Some(e) = else_result {
                    visit(e);
                }
            }
            Expr::Cast { expr, .. } => visit(expr),
            Expr::IsNull { expr, .. } => visit(expr),
            Expr::Between {
                expr, low, high, ..
            } => {
                visit(expr);
                visit(low);
                visit(high);
            }
            Expr::InList { expr, list, .. } => {
                visit(expr);
                list.iter().for_each(&mut *visit);
            }
            Expr::InSubquery { expr, .. } => visit(expr),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
            Expr::Quantified { expr, .. } => visit(expr),
            Expr::Like {
                expr,
                pattern,
                escape,
                ..
            } => {
                visit(expr);
                visit(pattern);
                if let Some(e) = escape {
                    visit(e);
                }
            }
            Expr::Substring {
                expr,
                start,
                length,
            } => {
                visit(expr);
                visit(start);
                if let Some(l) = length {
                    visit(l);
                }
            }
            Expr::Trim {
                trim_chars, expr, ..
            } => {
                if let Some(c) = trim_chars {
                    visit(c);
                }
                visit(expr);
            }
            Expr::Position { needle, haystack } => {
                visit(needle);
                visit(haystack);
            }
        }
    }

    /// Calls `visit` on each direct child expression (not subqueries),
    /// mutably. Children are visited in the same order as
    /// [`Expr::visit_children`], which is also the order the `Display`
    /// impl renders them — rewriters (e.g. the plan-cache normalizer)
    /// rely on that agreement to keep rewritten-node ordinals aligned
    /// with the re-parsed rendered text.
    pub fn visit_children_mut(&mut self, visit: &mut dyn FnMut(&mut Expr)) {
        match self {
            Expr::Column(_) | Expr::Literal(_) | Expr::Parameter(_) => {}
            Expr::Unary { expr, .. } => visit(expr),
            Expr::Binary { left, right, .. } => {
                visit(left);
                visit(right);
            }
            Expr::Function { args, .. } => {
                if let FunctionArgs::List { args, .. } = args {
                    args.iter_mut().for_each(&mut *visit);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                if let Some(op) = operand {
                    visit(op);
                }
                for (w, t) in branches {
                    visit(w);
                    visit(t);
                }
                if let Some(e) = else_result {
                    visit(e);
                }
            }
            Expr::Cast { expr, .. } => visit(expr),
            Expr::IsNull { expr, .. } => visit(expr),
            Expr::Between {
                expr, low, high, ..
            } => {
                visit(expr);
                visit(low);
                visit(high);
            }
            Expr::InList { expr, list, .. } => {
                visit(expr);
                list.iter_mut().for_each(&mut *visit);
            }
            Expr::InSubquery { expr, .. } => visit(expr),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
            Expr::Quantified { expr, .. } => visit(expr),
            Expr::Like {
                expr,
                pattern,
                escape,
                ..
            } => {
                visit(expr);
                visit(pattern);
                if let Some(e) = escape {
                    visit(e);
                }
            }
            Expr::Substring {
                expr,
                start,
                length,
            } => {
                visit(expr);
                visit(start);
                if let Some(l) = length {
                    visit(l);
                }
            }
            Expr::Trim {
                trim_chars, expr, ..
            } => {
                if let Some(c) = trim_chars {
                    visit(c);
                }
                visit(expr);
            }
            Expr::Position { needle, haystack } => {
                visit(needle);
                visit(haystack);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function {
            name: "COUNT".into(),
            args: FunctionArgs::Star,
        };
        assert!(agg.is_aggregate_call());
        assert!(agg.contains_aggregate());

        let nested = Expr::Binary {
            left: Box::new(Expr::Literal(Literal::Integer(1))),
            op: BinaryOp::Add,
            right: Box::new(Expr::Function {
                name: "SUM".into(),
                args: FunctionArgs::List {
                    distinct: false,
                    args: vec![Expr::Column(ColumnRef::unqualified("X"))],
                },
            }),
        };
        assert!(!nested.is_aggregate_call());
        assert!(nested.contains_aggregate());
    }

    #[test]
    fn subquery_aggregates_do_not_leak() {
        // An EXISTS subquery containing COUNT(*) does not make the outer
        // expression aggregated.
        let subquery = Query {
            body: QueryBody::Select(Box::new(Select {
                distinct: false,
                items: vec![SelectItem::Expr {
                    expr: Expr::Function {
                        name: "COUNT".into(),
                        args: FunctionArgs::Star,
                    },
                    alias: None,
                }],
                from: vec![],
                where_clause: None,
                group_by: vec![],
                having: None,
            })),
            order_by: vec![],
        };
        let exists = Expr::Exists {
            query: Box::new(subquery),
            negated: false,
        };
        assert!(!exists.contains_aggregate());
    }

    #[test]
    fn compare_op_flip_and_negate() {
        assert_eq!(CompareOp::Lt.flipped(), CompareOp::Gt);
        assert_eq!(CompareOp::Lt.negated(), CompareOp::GtEq);
        assert_eq!(CompareOp::Eq.flipped(), CompareOp::Eq);
    }

    #[test]
    fn object_name_parts() {
        let n = ObjectName(vec!["APP".into(), "DS".into(), "CUSTOMERS".into()]);
        assert_eq!(n.base(), "CUSTOMERS");
        assert_eq!(n.qualifiers(), &["APP".to_string(), "DS".to_string()]);
        assert_eq!(n.to_string(), "APP.DS.CUSTOMERS");
    }
}
