//! Rendering the AST back to SQL text.
//!
//! Used by the workload generator (generated queries are strings fed to the
//! full pipeline), by error messages, and by round-trip tests that pin the
//! parser down: `parse(render(parse(q))) == parse(q)`.

use crate::ast::*;
use std::fmt;

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, item) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", item.expr)?;
                if !item.ascending {
                    write!(f, " DESC")?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for QueryBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryBody::Select(s) => write!(f, "{s}"),
            QueryBody::SetOp {
                left,
                op,
                all,
                right,
            } => {
                // Parenthesize operands so precedence survives re-parsing.
                write_body_operand(f, left)?;
                write!(
                    f,
                    " {}{} ",
                    match op {
                        SetOp::Union => "UNION",
                        SetOp::Intersect => "INTERSECT",
                        SetOp::Except => "EXCEPT",
                    },
                    if *all { " ALL" } else { "" }
                )?;
                write_body_operand(f, right)
            }
        }
    }
}

fn write_body_operand(f: &mut fmt::Formatter<'_>, body: &QueryBody) -> fmt::Result {
    match body {
        QueryBody::Select(s) => write!(f, "{s}"),
        set_op => write!(f, "({set_op})"),
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(q) => write!(f, "{q}.*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table { name, alias } => {
                write!(f, "{name}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableRef::Derived { query, alias } => write!(f, "({query}) AS {alias}"),
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                write!(f, "{left} ")?;
                let kw = match kind {
                    JoinKind::Inner => "INNER JOIN",
                    JoinKind::LeftOuter => "LEFT OUTER JOIN",
                    JoinKind::RightOuter => "RIGHT OUTER JOIN",
                    JoinKind::FullOuter => "FULL OUTER JOIN",
                    JoinKind::Cross => "CROSS JOIN",
                };
                // Parenthesize a join used as the right operand so shape
                // survives re-parsing (joins are otherwise left
                // associative).
                match &**right {
                    TableRef::Join { .. } => write!(f, "{kw} ({right})")?,
                    _ => write!(f, "{kw} {right}")?,
                }
                if let Some(on) = on {
                    write!(f, " ON {on}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Integer(v) => write!(f, "{v}"),
            Literal::Decimal(v) => {
                if v.fract() == 0.0 {
                    // Keep a point so the literal stays a decimal.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Double(v) => write!(f, "{v:E}"),
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Date(d) => write!(f, "DATE '{d}'"),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Parameter(_) => write!(f, "?"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => write!(f, "-({expr})"),
                UnaryOp::Plus => write!(f, "+({expr})"),
                UnaryOp::Not => write!(f, "NOT ({expr})"),
            },
            Expr::Binary { left, op, right } => {
                let op_str = match op {
                    BinaryOp::Add => "+",
                    BinaryOp::Sub => "-",
                    BinaryOp::Mul => "*",
                    BinaryOp::Div => "/",
                    BinaryOp::Concat => "||",
                    BinaryOp::Compare(c) => c.as_str(),
                    BinaryOp::And => "AND",
                    BinaryOp::Or => "OR",
                };
                write!(f, "({left} {op_str} {right})")
            }
            Expr::Function { name, args } => match args {
                FunctionArgs::Star => write!(f, "{name}(*)"),
                FunctionArgs::List { distinct, args } => {
                    write!(f, "{name}(")?;
                    if *distinct {
                        write!(f, "DISTINCT ")?;
                    }
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
            },
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_result {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, target } => write!(f, "CAST({expr} AS {})", target.as_str()),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => write!(
                f,
                "{expr} {}IN ({query})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Exists { query, negated } => {
                write!(f, "{}EXISTS ({query})", if *negated { "NOT " } else { "" })
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::Quantified {
                expr,
                op,
                quantifier,
                query,
            } => write!(
                f,
                "{expr} {} {} ({query})",
                op.as_str(),
                match quantifier {
                    Quantifier::Any => "ANY",
                    Quantifier::All => "ALL",
                }
            ),
            Expr::Like {
                expr,
                pattern,
                escape,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}LIKE {pattern}",
                    if *negated { "NOT " } else { "" }
                )?;
                if let Some(e) = escape {
                    write!(f, " ESCAPE {e}")?;
                }
                Ok(())
            }
            Expr::Substring {
                expr,
                start,
                length,
            } => {
                write!(f, "SUBSTRING({expr} FROM {start}")?;
                if let Some(l) = length {
                    write!(f, " FOR {l}")?;
                }
                write!(f, ")")
            }
            Expr::Trim {
                side,
                trim_chars,
                expr,
            } => {
                let side_kw = match side {
                    TrimSide::Both => "BOTH",
                    TrimSide::Leading => "LEADING",
                    TrimSide::Trailing => "TRAILING",
                };
                match trim_chars {
                    Some(c) => write!(f, "TRIM({side_kw} {c} FROM {expr})"),
                    None => write!(f, "TRIM({side_kw} FROM {expr})"),
                }
            }
            Expr::Position { needle, haystack } => {
                write!(f, "POSITION({needle} IN {haystack})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_select;

    /// Round trip: parse, render, re-parse — the ASTs must agree. (Rendered
    /// text adds parentheses, so compare ASTs, not strings.)
    fn roundtrip(sql: &str) {
        let first = parse_select(sql).unwrap();
        let rendered = first.to_string();
        let second = parse_select(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of `{rendered}` failed: {e}"));
        assert_eq!(first, second, "rendered: {rendered}");
    }

    #[test]
    fn roundtrip_paper_examples() {
        for sql in [
            "SELECT * FROM CUSTOMERS",
            "SELECT CUSTOMERID ID, CUSTOMERNAME NAME FROM CUSTOMERS",
            "SELECT INFO.ID, INFO.NAME FROM (SELECT CUSTOMERID ID, CUSTOMERNAME NAME \
             FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10",
            "SELECT CUSTOMERS.CUSTOMERID, PAYMENTS.PAYMENT FROM CUSTOMERS LEFT OUTER \
             JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID",
            "SELECT * FROM CUSTOMERS INNER JOIN ORDERS ON CUSTOMERS.CUSTOMERID = ORDERS.CUSTID",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn roundtrip_constructs() {
        for sql in [
            "SELECT DISTINCT A FROM T",
            "SELECT A FROM T WHERE B BETWEEN 1 AND 2 OR C NOT LIKE 'x%' ESCAPE '!'",
            "SELECT COUNT(*), SUM(DISTINCT A) FROM T GROUP BY B HAVING COUNT(*) > 1",
            "SELECT A FROM T UNION ALL SELECT A FROM U ORDER BY A DESC",
            "SELECT A FROM T INTERSECT SELECT A FROM U",
            "SELECT CASE WHEN A = 1 THEN 'x' ELSE 'y' END FROM T",
            "SELECT CAST(A AS INTEGER) FROM T",
            "SELECT SUBSTRING(A FROM 1 FOR 2), TRIM(LEADING '0' FROM A), \
             POSITION('x' IN A) FROM T",
            "SELECT A FROM T WHERE B IN (SELECT C FROM U) AND EXISTS (SELECT C FROM U)",
            "SELECT A FROM T WHERE B > ALL (SELECT C FROM U)",
            "SELECT A FROM T WHERE C IS NOT NULL AND D = DATE '2006-01-01'",
            "SELECT A || B FROM T WHERE X = ?",
            "SELECT -A, +B FROM T",
            "SELECT A FROM T CROSS JOIN U",
            "SELECT A FROM T FULL OUTER JOIN U ON T.X = U.X",
            "SELECT 5.0, 1.5, 2E3 FROM T",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn string_literals_escape_quotes() {
        roundtrip("SELECT * FROM T WHERE A = 'O''Brien'");
    }

    #[test]
    fn nested_right_joins_keep_shape() {
        roundtrip("SELECT * FROM (A JOIN (B JOIN C ON B.C1 = C.C2) AS P ON A.C1 = P.C1)");
    }
}
