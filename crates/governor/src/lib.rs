//! # aldsp-governor — resource governance primitives
//!
//! A data-services server survives hostile and heavy workloads only if
//! every query runs under explicit resource control. This crate holds the
//! shared vocabulary the whole pipeline speaks — it sits below every
//! other crate (no dependencies), so the SQL parser, the translator, the
//! XQuery evaluator, and the driver can all consult the same budget:
//!
//! * [`QueryBudget`] — a per-query allowance: wall-clock deadline,
//!   cooperative [`CancellationToken`], evaluator fuel (step count), and
//!   a row cap bounding tuple-stream width. Cheap to clone (one `Arc`);
//!   every layer charges against the same counters.
//! * [`BudgetError`] — the typed violations a budget can surface.
//! * [`AdmissionGate`] — a bounded semaphore with queue-wait timeout:
//!   overload protection by load shedding rather than unbounded queueing.
//! * [`CircuitBreaker`] — per-backend closed → open → half-open breaker
//!   driven by consecutive permanent failures.
//! * [`Governor`] — the composition a `QueryService` front end installs:
//!   statement-size guard, breaker, admission gate, and the
//!   [`GovernorStats`] accounting that makes every rejection countable.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Budget errors
// ---------------------------------------------------------------------

/// A typed budget violation. `Copy` so it can ride inside error kinds
/// that are themselves `Copy` (e.g. `aldsp-core`'s `ErrorKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetError {
    /// The wall-clock deadline passed.
    DeadlineExceeded {
        /// Milliseconds elapsed when the violation was detected.
        elapsed_ms: u64,
        /// The deadline, in milliseconds.
        budget_ms: u64,
    },
    /// The query was cooperatively cancelled.
    Cancelled,
    /// The evaluator spent its full step allowance.
    FuelExhausted {
        /// The fuel limit that was exhausted.
        limit: u64,
    },
    /// A tuple stream grew past the row cap (e.g. a runaway cartesian
    /// product).
    RowCapExceeded {
        /// Observed width when the cap tripped.
        rows: u64,
        /// The configured cap.
        cap: u64,
    },
    /// The statement text exceeded the input size cap.
    StatementTooLarge {
        /// Statement length in bytes.
        len: u64,
        /// The configured cap in bytes.
        cap: u64,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "query budget deadline exceeded: {elapsed_ms}ms elapsed of a {budget_ms}ms budget"
            ),
            BudgetError::Cancelled => f.write_str("query cancelled"),
            BudgetError::FuelExhausted { limit } => {
                write!(f, "evaluator fuel exhausted: {limit} steps spent")
            }
            BudgetError::RowCapExceeded { rows, cap } => {
                write!(f, "row cap exceeded: {rows} rows against a cap of {cap}")
            }
            BudgetError::StatementTooLarge { len, cap } => {
                write!(f, "statement too large: {len} bytes against a cap of {cap}")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

// ---------------------------------------------------------------------
// Execution strategy
// ---------------------------------------------------------------------

/// How the XQuery evaluator executes FLWOR expressions. Lives here — the
/// zero-dependency crate both `aldsp-core` and `aldsp-xquery` sit on — so
/// the driver's `TranslationOptions` and the evaluator can share the knob
/// without a dependency cycle, mirroring how `OptimizeLevel` gates the
/// translator-side rewrite engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ExecStrategy {
    /// The naive interpreter: every `for` clause materializes the full
    /// tuple cross product, `where` filters afterwards. Always available;
    /// the reference semantics every other strategy is checked against.
    #[default]
    NestedLoop,
    /// Streaming physical operators: FLWOR prefixes whose `where`
    /// conjuncts equate variables bound by different `for` clauses run as
    /// build/probe hash joins with fused residual filters, so the cross
    /// product is never materialized. Shapes the lowering does not
    /// recognize fall back to [`ExecStrategy::NestedLoop`] unchanged.
    HashJoin,
}

// ---------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------

/// A cooperative cancellation token. Cloning shares the flag; any holder
/// can cancel, and every layer holding the owning [`QueryBudget`] observes
/// it at its next checkpoint.
#[derive(Clone, Default)]
pub struct CancellationToken(Arc<AtomicBool>);

impl CancellationToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancellationToken {
        CancellationToken::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

impl fmt::Debug for CancellationToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CancellationToken")
            .field(&self.is_cancelled())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Query budget
// ---------------------------------------------------------------------

/// How often [`QueryBudget::charge`] re-checks the wall clock: reading
/// `Instant::now()` on every evaluator step would dominate evaluation, so
/// the deadline is polled once per this many fuel units (cancellation is
/// an atomic load and is checked on the same cadence).
const CHECK_INTERVAL: u64 = 64;

struct BudgetInner {
    start: Instant,
    deadline: Option<Duration>,
    fuel_limit: u64,
    fuel_spent: AtomicU64,
    row_cap: u64,
    token: CancellationToken,
    // Execution telemetry: FLWORs the hash-join lowering ran vs. the
    // join-shaped ones it declined (or abandoned). Counted here because
    // the budget is the one object that already rides through every
    // evaluation layer.
    hash_joins: AtomicU64,
    join_fallbacks: AtomicU64,
}

/// A per-query resource allowance, shared by translation, retries, and
/// evaluation: one budget, spent from every layer.
///
/// All limits default to unlimited; builders narrow them. The budget's
/// clock starts when it is constructed, so a deadline bounds everything
/// that happens after [`QueryBudget::with_deadline`] — queue wait,
/// translation, every retry attempt, and evaluation together.
#[derive(Clone)]
pub struct QueryBudget {
    inner: Arc<BudgetInner>,
}

impl Default for QueryBudget {
    fn default() -> QueryBudget {
        QueryBudget::unlimited()
    }
}

impl QueryBudget {
    /// A budget with no limits (checks always pass).
    pub fn unlimited() -> QueryBudget {
        QueryBudget {
            inner: Arc::new(BudgetInner {
                start: Instant::now(),
                deadline: None,
                fuel_limit: u64::MAX,
                fuel_spent: AtomicU64::new(0),
                row_cap: u64::MAX,
                token: CancellationToken::new(),
                hash_joins: AtomicU64::new(0),
                join_fallbacks: AtomicU64::new(0),
            }),
        }
    }

    fn rebuild(self, f: impl FnOnce(&mut BudgetInner)) -> QueryBudget {
        // Builders run before the budget is shared; recreate the inner
        // allocation with the adjusted limit and the original clock.
        let inner = &self.inner;
        let mut next = BudgetInner {
            start: inner.start,
            deadline: inner.deadline,
            fuel_limit: inner.fuel_limit,
            fuel_spent: AtomicU64::new(inner.fuel_spent.load(Ordering::Relaxed)),
            row_cap: inner.row_cap,
            token: inner.token.clone(),
            hash_joins: AtomicU64::new(inner.hash_joins.load(Ordering::Relaxed)),
            join_fallbacks: AtomicU64::new(inner.join_fallbacks.load(Ordering::Relaxed)),
        };
        f(&mut next);
        QueryBudget {
            inner: Arc::new(next),
        }
    }

    /// Bounds wall-clock time, measured from the budget's construction.
    pub fn with_deadline(self, deadline: Duration) -> QueryBudget {
        self.rebuild(|inner| inner.deadline = Some(deadline))
    }

    /// Bounds evaluator steps.
    pub fn with_fuel(self, fuel: u64) -> QueryBudget {
        self.rebuild(|inner| inner.fuel_limit = fuel)
    }

    /// Bounds tuple-stream width during evaluation (and with it, memory).
    pub fn with_row_cap(self, cap: u64) -> QueryBudget {
        self.rebuild(|inner| inner.row_cap = cap)
    }

    /// The cancellation token; clone it to cancel from another thread.
    pub fn token(&self) -> CancellationToken {
        self.inner.token.clone()
    }

    /// Requests cooperative cancellation.
    pub fn cancel(&self) {
        self.inner.token.cancel();
    }

    /// Elapsed time since the budget was created.
    pub fn elapsed(&self) -> Duration {
        self.inner.start.elapsed()
    }

    /// Time left before the deadline; `None` when unbounded.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_sub(self.inner.start.elapsed()))
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.inner.deadline
    }

    /// Fuel spent so far.
    pub fn fuel_spent(&self) -> u64 {
        self.inner.fuel_spent.load(Ordering::Relaxed)
    }

    /// Total fuel the evaluation consumed, read *after* it finished —
    /// the telemetry surface E10 calibrates the analyzer's static cost
    /// model against (one unit per expression evaluation, one per FLWOR
    /// tuple). Identical to [`QueryBudget::fuel_spent`]; the name marks
    /// the post-hoc reading from the in-flight one.
    pub fn fuel_consumed(&self) -> u64 {
        self.fuel_spent()
    }

    /// The row cap (`u64::MAX` when unbounded).
    pub fn row_cap(&self) -> u64 {
        self.inner.row_cap
    }

    /// Records `n` FLWOR prefixes executed through the streaming
    /// hash-join pipeline.
    pub fn record_hash_join(&self, n: u64) {
        self.inner.hash_joins.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a join-shaped FLWOR (two or more `for` clauses) that the
    /// hash-join lowering declined or abandoned back to the nested-loop
    /// interpreter.
    pub fn record_join_fallback(&self) {
        self.inner.join_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// FLWOR prefixes executed through the hash-join pipeline so far.
    pub fn hash_joins(&self) -> u64 {
        self.inner.hash_joins.load(Ordering::Relaxed)
    }

    /// Join-shaped FLWORs that fell back to the nested-loop interpreter.
    pub fn join_fallbacks(&self) -> u64 {
        self.inner.join_fallbacks.load(Ordering::Relaxed)
    }

    /// Drains the execution counters, returning `(hash_joins,
    /// join_fallbacks)` accumulated since the last drain and resetting
    /// both to zero. A service that reuses one budget across executions
    /// gets per-execution deltas this way instead of double counting.
    pub fn take_exec_counts(&self) -> (u64, u64) {
        (
            self.inner.hash_joins.swap(0, Ordering::Relaxed),
            self.inner.join_fallbacks.swap(0, Ordering::Relaxed),
        )
    }

    /// Checks cancellation and the deadline. Call at coarse boundaries
    /// (before an attempt, between pipeline stages).
    pub fn check(&self) -> Result<(), BudgetError> {
        if self.inner.token.is_cancelled() {
            return Err(BudgetError::Cancelled);
        }
        if let Some(deadline) = self.inner.deadline {
            let elapsed = self.inner.start.elapsed();
            if elapsed >= deadline {
                return Err(BudgetError::DeadlineExceeded {
                    elapsed_ms: elapsed.as_millis() as u64,
                    budget_ms: deadline.as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Spends `n` fuel units. Fuel exhaustion reports immediately; the
    /// clock and cancellation flag are polled every `CHECK_INTERVAL` (64)
    /// units so per-step charging stays cheap.
    pub fn charge(&self, n: u64) -> Result<(), BudgetError> {
        let spent = self.inner.fuel_spent.fetch_add(n, Ordering::Relaxed) + n;
        if spent > self.inner.fuel_limit {
            return Err(BudgetError::FuelExhausted {
                limit: self.inner.fuel_limit,
            });
        }
        if spent / CHECK_INTERVAL != spent.wrapping_sub(n) / CHECK_INTERVAL {
            self.check()?;
        }
        Ok(())
    }

    /// Checks a tuple-stream width against the row cap.
    pub fn check_rows(&self, rows: u64) -> Result<(), BudgetError> {
        if rows > self.inner.row_cap {
            return Err(BudgetError::RowCapExceeded {
                rows,
                cap: self.inner.row_cap,
            });
        }
        Ok(())
    }
}

impl fmt::Debug for QueryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryBudget")
            .field("deadline", &self.inner.deadline)
            .field("fuel_limit", &self.inner.fuel_limit)
            .field("fuel_spent", &self.fuel_spent())
            .field("row_cap", &self.inner.row_cap)
            .field("cancelled", &self.inner.token.is_cancelled())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Admission gate
// ---------------------------------------------------------------------

/// A bounded admission semaphore with a queue-wait timeout: at most
/// `capacity` queries run at once, and a caller that cannot get a permit
/// within the timeout is shed instead of queueing without bound.
pub struct AdmissionGate {
    capacity: usize,
    available: Mutex<usize>,
    freed: Condvar,
}

impl AdmissionGate {
    /// A gate admitting up to `capacity` concurrent holders (min 1).
    pub fn new(capacity: usize) -> AdmissionGate {
        let capacity = capacity.max(1);
        AdmissionGate {
            capacity,
            available: Mutex::new(capacity),
            freed: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tries to take a permit, waiting at most `timeout`. `None` means
    /// the caller should shed the query.
    pub fn acquire(&self, timeout: Duration) -> Option<AdmissionPermit<'_>> {
        let deadline = Instant::now() + timeout;
        let mut available = self.available.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if *available > 0 {
                *available -= 1;
                return Some(AdmissionPermit { gate: self });
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, result) = self
                .freed
                .wait_timeout(available, left)
                .unwrap_or_else(|e| e.into_inner());
            available = guard;
            if result.timed_out() && *available == 0 {
                return None;
            }
        }
    }

    fn release(&self) {
        let mut available = self.available.lock().unwrap_or_else(|e| e.into_inner());
        *available += 1;
        drop(available);
        self.freed.notify_one();
    }
}

/// A held admission slot; dropping it frees the slot and wakes a waiter.
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive backend failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing a half-open probe.
    pub open_duration: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            open_duration: Duration::from_millis(100),
        }
    }
}

/// Breaker states, in the classic closed → open → half-open cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: requests pass, consecutive failures are counted.
    #[default]
    Closed,
    /// Tripped: requests are rejected until the open window passes.
    Open,
    /// Probing: one request is allowed through to test the backend.
    HalfOpen,
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
}

/// A per-backend circuit breaker. Callers ask [`CircuitBreaker::admit`]
/// before contacting the backend and report the outcome afterwards; a run
/// of consecutive permanent failures opens the breaker, the open window
/// then admits a single half-open probe, and the probe's outcome closes
/// or re-opens it.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
    trips: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
            }),
            trips: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The current state (open windows that have elapsed report as
    /// half-open).
    pub fn state(&self) -> BreakerState {
        let mut inner = self.lock();
        self.refresh(&mut inner);
        inner.state
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    fn refresh(&self, inner: &mut BreakerInner) {
        if inner.state == BreakerState::Open {
            let elapsed = inner
                .opened_at
                .map(|t| t.elapsed())
                .unwrap_or(Duration::ZERO);
            if elapsed >= self.config.open_duration {
                inner.state = BreakerState::HalfOpen;
                inner.probe_in_flight = false;
            }
        }
    }

    /// Whether a request may proceed. In half-open state exactly one
    /// caller is admitted as the probe; the rest are rejected until the
    /// probe reports.
    pub fn admit(&self) -> bool {
        let mut inner = self.lock();
        self.refresh(&mut inner);
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    false
                } else {
                    inner.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Reports a successful backend interaction.
    pub fn record_success(&self) {
        let mut inner = self.lock();
        inner.consecutive_failures = 0;
        inner.probe_in_flight = false;
        inner.state = BreakerState::Closed;
        inner.opened_at = None;
    }

    /// Reports a backend failure (count only failures that indicate the
    /// *backend* is unhealthy — not statement errors or budget rejections).
    pub fn record_failure(&self) {
        let mut inner = self.lock();
        self.refresh(&mut inner);
        match inner.state {
            BreakerState::HalfOpen => {
                // The probe failed: back to a full open window.
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                inner.probe_in_flight = false;
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    self.trips.fetch_add(1, Ordering::Relaxed);
                }
            }
            BreakerState::Open => {}
        }
    }
}

// ---------------------------------------------------------------------
// Governor: the composed front-end guard
// ---------------------------------------------------------------------

/// Governor tuning for a query front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Maximum concurrently admitted queries; `0` disables admission
    /// control entirely.
    pub max_concurrency: usize,
    /// How long a caller may wait for admission before being shed.
    pub queue_timeout: Duration,
    /// Maximum statement text size in bytes; `0` disables the guard.
    pub max_statement_bytes: usize,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for GovernorConfig {
    fn default() -> GovernorConfig {
        GovernorConfig {
            max_concurrency: 0,
            queue_timeout: Duration::from_millis(50),
            max_statement_bytes: 1 << 20,
            breaker: BreakerConfig::default(),
        }
    }
}

/// Why the governor rejected a query before it ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// No admission slot freed up within the queue timeout.
    QueueTimeout {
        /// The timeout that elapsed.
        waited: Duration,
    },
    /// The backend's circuit breaker is open.
    BreakerOpen,
    /// The statement text exceeds the input size cap.
    StatementTooLarge(BudgetError),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueTimeout { waited } => write!(
                f,
                "admission queue timed out after {}ms: service at capacity",
                waited.as_millis()
            ),
            AdmissionError::BreakerOpen => {
                f.write_str("backend circuit breaker is open: shedding load")
            }
            AdmissionError::StatementTooLarge(e) => e.fmt(f),
        }
    }
}

/// A snapshot of governor counters. The accounting identity every
/// snapshot satisfies (pinned by tests):
///
/// `submitted == admitted + shed + breaker_rejections + statement_rejections`
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Queries presented to the governor.
    pub submitted: u64,
    /// Queries that passed every guard and ran.
    pub admitted: u64,
    /// Rejections from the admission queue timeout.
    pub shed: u64,
    /// Rejections while the breaker was open.
    pub breaker_rejections: u64,
    /// Rejections from the statement-size guard.
    pub statement_rejections: u64,
    /// Admitted queries that ended in a budget violation
    /// (deadline / fuel / rows / cancellation).
    pub budget_rejections: u64,
    /// Times the breaker tripped open.
    pub breaker_trips: u64,
    /// FLWOR prefixes executed through the streaming hash-join pipeline
    /// (reported by admitted queries; zero unless the service runs with
    /// [`ExecStrategy::HashJoin`]).
    pub hash_joins: u64,
    /// Join-shaped FLWORs that fell back to the nested-loop interpreter.
    /// Together with `hash_joins` this makes the fast-path fraction of a
    /// workload an observable number rather than a claim.
    pub join_fallbacks: u64,
    /// Breaker state at snapshot time.
    pub breaker_state: BreakerState,
}

impl GovernorStats {
    /// All pre-execution rejections.
    pub fn rejected(&self) -> u64 {
        self.shed + self.breaker_rejections + self.statement_rejections
    }

    /// The accounting identity (see type docs).
    pub fn is_consistent(&self) -> bool {
        self.submitted == self.admitted + self.rejected()
    }
}

/// The composed guard a query front end runs every statement through:
/// size check, breaker check, admission gate — in that order, with every
/// outcome counted.
pub struct Governor {
    config: GovernorConfig,
    gate: Option<AdmissionGate>,
    breaker: CircuitBreaker,
    submitted: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    breaker_rejections: AtomicU64,
    statement_rejections: AtomicU64,
    budget_rejections: AtomicU64,
    hash_joins: AtomicU64,
    join_fallbacks: AtomicU64,
}

impl Default for Governor {
    fn default() -> Governor {
        Governor::new(GovernorConfig::default())
    }
}

impl Governor {
    /// A governor with the given tuning.
    pub fn new(config: GovernorConfig) -> Governor {
        Governor {
            gate: (config.max_concurrency > 0).then(|| AdmissionGate::new(config.max_concurrency)),
            breaker: CircuitBreaker::new(config.breaker),
            config,
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            breaker_rejections: AtomicU64::new(0),
            statement_rejections: AtomicU64::new(0),
            budget_rejections: AtomicU64::new(0),
            hash_joins: AtomicU64::new(0),
            join_fallbacks: AtomicU64::new(0),
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> GovernorConfig {
        self.config
    }

    /// The backend breaker (outcome reporting goes through
    /// [`Governor::record_backend_success`] / `record_backend_failure`).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Runs the pre-execution guards for a statement of `statement_len`
    /// bytes. On success the returned permit must be held for the whole
    /// execution (dropping it frees the admission slot).
    pub fn admit(
        &self,
        statement_len: usize,
    ) -> Result<Option<AdmissionPermit<'_>>, AdmissionError> {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let cap = self.config.max_statement_bytes;
        if cap > 0 && statement_len > cap {
            self.statement_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(AdmissionError::StatementTooLarge(
                BudgetError::StatementTooLarge {
                    len: statement_len as u64,
                    cap: cap as u64,
                },
            ));
        }
        if !self.breaker.admit() {
            self.breaker_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(AdmissionError::BreakerOpen);
        }
        let permit = match &self.gate {
            None => None,
            Some(gate) => match gate.acquire(self.config.queue_timeout) {
                Some(permit) => Some(permit),
                None => {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(AdmissionError::QueueTimeout {
                        waited: self.config.queue_timeout,
                    });
                }
            },
        };
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(permit)
    }

    /// Reports a healthy backend interaction (closes the breaker).
    pub fn record_backend_success(&self) {
        self.breaker.record_success();
    }

    /// Reports a backend failure (counts toward opening the breaker).
    pub fn record_backend_failure(&self) {
        self.breaker.record_failure();
    }

    /// Reports an admitted query that ended in a budget violation.
    pub fn record_budget_rejection(&self) {
        self.budget_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Reports execution-strategy telemetry for one finished query,
    /// typically the deltas from [`QueryBudget::take_exec_counts`].
    pub fn record_exec(&self, hash_joins: u64, join_fallbacks: u64) {
        self.hash_joins.fetch_add(hash_joins, Ordering::Relaxed);
        self.join_fallbacks
            .fetch_add(join_fallbacks, Ordering::Relaxed);
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> GovernorStats {
        GovernorStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            breaker_rejections: self.breaker_rejections.load(Ordering::Relaxed),
            statement_rejections: self.statement_rejections.load(Ordering::Relaxed),
            budget_rejections: self.budget_rejections.load(Ordering::Relaxed),
            breaker_trips: self.breaker.trips(),
            hash_joins: self.hash_joins.load(Ordering::Relaxed),
            join_fallbacks: self.join_fallbacks.load(Ordering::Relaxed),
            breaker_state: self.breaker.state(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn unlimited_budget_always_passes() {
        let budget = QueryBudget::unlimited();
        assert!(budget.check().is_ok());
        for _ in 0..10_000 {
            assert!(budget.charge(1).is_ok());
        }
        assert!(budget.check_rows(u64::MAX - 1).is_ok());
        assert_eq!(budget.fuel_spent(), 10_000);
    }

    #[test]
    fn fuel_exhaustion_is_typed() {
        let budget = QueryBudget::unlimited().with_fuel(100);
        for _ in 0..100 {
            budget.charge(1).unwrap();
        }
        assert_eq!(
            budget.charge(1),
            Err(BudgetError::FuelExhausted { limit: 100 })
        );
    }

    #[test]
    fn cancellation_observed_through_token() {
        let budget = QueryBudget::unlimited();
        let token = budget.token();
        assert!(budget.check().is_ok());
        token.cancel();
        assert_eq!(budget.check(), Err(BudgetError::Cancelled));
        // charge() polls the flag on its check cadence.
        let budget = QueryBudget::unlimited();
        budget.cancel();
        let mut saw = false;
        for _ in 0..(CHECK_INTERVAL * 2) {
            if budget.charge(1).is_err() {
                saw = true;
                break;
            }
        }
        assert!(saw, "cancellation never observed by charge()");
    }

    #[test]
    fn deadline_trips_after_elapse() {
        let budget = QueryBudget::unlimited().with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(matches!(
            budget.check(),
            Err(BudgetError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn row_cap_trips() {
        let budget = QueryBudget::unlimited().with_row_cap(10);
        assert!(budget.check_rows(10).is_ok());
        assert_eq!(
            budget.check_rows(11),
            Err(BudgetError::RowCapExceeded { rows: 11, cap: 10 })
        );
    }

    #[test]
    fn clones_share_counters() {
        let a = QueryBudget::unlimited().with_fuel(10);
        let b = a.clone();
        for _ in 0..10 {
            a.charge(1).unwrap();
        }
        assert!(b.charge(1).is_err(), "clone did not share fuel");
        b.cancel();
        assert_eq!(a.check(), Err(BudgetError::Cancelled));
    }

    #[test]
    fn exec_counters_accumulate_survive_rebuild_and_drain() {
        assert_eq!(ExecStrategy::default(), ExecStrategy::NestedLoop);
        let budget = QueryBudget::unlimited();
        budget.record_hash_join(2);
        budget.record_join_fallback();
        // Builder rebuilds must carry the counters across.
        let budget = budget.with_fuel(1_000);
        assert_eq!(budget.hash_joins(), 2);
        assert_eq!(budget.join_fallbacks(), 1);
        // Clones share the counters, like fuel.
        let clone = budget.clone();
        clone.record_hash_join(1);
        assert_eq!(budget.hash_joins(), 3);
        // Draining yields deltas and resets.
        assert_eq!(budget.take_exec_counts(), (3, 1));
        assert_eq!(budget.take_exec_counts(), (0, 0));
    }

    #[test]
    fn governor_accumulates_exec_telemetry() {
        let governor = Governor::default();
        governor.record_exec(5, 2);
        governor.record_exec(1, 0);
        let stats = governor.stats();
        assert_eq!(stats.hash_joins, 6);
        assert_eq!(stats.join_fallbacks, 2);
        assert!(stats.is_consistent(), "exec telemetry broke the identity");
    }

    #[test]
    fn admission_gate_bounds_concurrency() {
        let gate = AdmissionGate::new(2);
        let p1 = gate.acquire(Duration::ZERO).expect("slot 1");
        let _p2 = gate.acquire(Duration::ZERO).expect("slot 2");
        assert!(gate.acquire(Duration::from_millis(1)).is_none());
        drop(p1);
        assert!(gate.acquire(Duration::ZERO).is_some());
    }

    #[test]
    fn admission_gate_wakes_waiters() {
        let gate = Arc::new(AdmissionGate::new(1));
        let held = gate.acquire(Duration::ZERO).unwrap();
        let woken = Arc::new(AtomicUsize::new(0));
        let handle = {
            let gate = Arc::clone(&gate);
            let woken = Arc::clone(&woken);
            std::thread::spawn(move || {
                if gate.acquire(Duration::from_secs(5)).is_some() {
                    woken.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        drop(held);
        handle.join().unwrap();
        assert_eq!(woken.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn breaker_opens_probes_and_closes() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            open_duration: Duration::from_millis(5),
        });
        assert_eq!(breaker.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert!(breaker.admit());
            breaker.record_failure();
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.admit());
        assert_eq!(breaker.trips(), 1);

        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(breaker.admit(), "half-open admits one probe");
        assert!(!breaker.admit(), "only one probe at a time");
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.admit());
    }

    #[test]
    fn failed_probe_reopens() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_duration: Duration::from_millis(5),
        });
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(10));
        assert!(breaker.admit());
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.trips(), 2);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            open_duration: Duration::from_millis(5),
        });
        breaker.record_failure();
        breaker.record_success();
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn governor_counts_every_outcome() {
        let governor = Governor::new(GovernorConfig {
            max_concurrency: 1,
            queue_timeout: Duration::from_millis(1),
            max_statement_bytes: 64,
            breaker: BreakerConfig::default(),
        });
        // Oversize statement.
        assert!(matches!(
            governor.admit(65),
            Err(AdmissionError::StatementTooLarge(_))
        ));
        // Admitted, slot held; second caller sheds.
        let permit = governor.admit(10).unwrap();
        assert!(matches!(
            governor.admit(10),
            Err(AdmissionError::QueueTimeout { .. })
        ));
        drop(permit);
        let stats = governor.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.statement_rejections, 1);
        assert!(stats.is_consistent(), "{stats:#?}");
    }

    #[test]
    fn governor_respects_breaker() {
        let governor = Governor::new(GovernorConfig {
            max_concurrency: 0,
            queue_timeout: Duration::ZERO,
            max_statement_bytes: 0,
            breaker: BreakerConfig {
                failure_threshold: 1,
                open_duration: Duration::from_secs(60),
            },
        });
        governor.admit(10).unwrap();
        governor.record_backend_failure();
        assert!(matches!(
            governor.admit(10),
            Err(AdmissionError::BreakerOpen)
        ));
        let stats = governor.stats();
        assert_eq!(stats.breaker_rejections, 1);
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(stats.breaker_state, BreakerState::Open);
        assert!(stats.is_consistent());
    }
}
