//! Layer 4: catalog-seeded cardinality and cost estimation with the
//! `P001`–`P008` performance lints.
//!
//! The translation scheme (paper §3–§4) maps every SQL block onto nested
//! FLWOR loops: one `for` per FROM input, the whole WHERE in the where
//! zone after the innermost `for`, joins as nested loops whose inner
//! source is re-evaluated per outer tuple, and predicate subqueries
//! re-evaluated per candidate row. That structure is *correct* but its
//! cost is invisible until the evaluator runs out of fuel. This layer
//! makes the cost static:
//!
//! * a **bottom-up cardinality estimator** over the stage-2 IR, seeded
//!   with [`CatalogStats`] row counts and per-column NDV, using the
//!   textbook selectivity heuristics — equality `1/NDV`, range `1/3`,
//!   conjunction independence, join containment `1/max(NDV)`;
//! * a **cost algebra in evaluator-fuel units** mirroring how
//!   `aldsp-xquery` actually iterates (one fuel per expression node per
//!   evaluation, one per FLWOR tuple): the nested-loop pipeline cost of a
//!   FROM list is `c1 + n1*(c2 + n2*(c3 + ...))`, predicates cost their
//!   node count once per surviving tuple, sorts cost `n·log n`
//!   comparisons, and subqueries in predicate position cost their full
//!   estimate once per candidate row;
//! * an independent **FLWOR fuel walk** over the *generated* XQuery AST
//!   ([`estimate_program_fuel`]), resolving table-function sources
//!   through the prepared query's schemas — a structural cross-check on
//!   the IR-level estimate that sees exactly what the evaluator sees;
//! * the **`P` lints** on top of the estimates (see [`DiagCode`]):
//!   cartesian products (P001), unpushed join predicates (P002),
//!   DISTINCT/ORDER-BY work made redundant by a declared-unique key
//!   (P003/P004), the NULL-literal predicates plan-cache normalization
//!   cannot extract (P005), estimates past the governor row cap (P006),
//!   large-table nested-loop re-scans (P007), and expensive per-row
//!   subquery re-evaluation (P008).
//!
//! `P` findings are *advisory*: unlike the `A`/`T` layers, a flagged
//! query still computes the correct answer, so the `debug-analyze`
//! validator and [`crate::TranslationReport::is_clean`] deliberately do
//! not fail on them — chaos workloads legitimately run cartesian
//! stressors. The estimator itself never panics and degrades to the
//! documented [`aldsp_catalog::stats`] defaults when stats are missing.
//! E10 (EXPERIMENTS.md) calibrates the whole algebra against measured
//! [`aldsp_governor::QueryBudget`] fuel.

use crate::diag::{DiagCode, Diagnostic};
use aldsp_catalog::stats::{CatalogStats, ColumnStats};
use aldsp_core::ir::{PreparedBody, PreparedQuery, PreparedSelect, Rsn, TExpr, TExprKind};
use aldsp_sql::{CompareOp, JoinKind, SetOp};
use aldsp_xquery::ast as xq;
use std::collections::HashMap;

/// Tuning for one cost analysis.
#[derive(Debug, Clone)]
pub struct CostOptions {
    /// The statistics snapshot estimates are seeded from. Defaults answer
    /// every lookup when no stats were gathered.
    pub stats: CatalogStats,
    /// The governor row cap the query will run under; `None` (the
    /// default) disables P006.
    pub row_cap: Option<u64>,
    /// P007 fires only when a nested-loop inner table holds at least this
    /// many rows (default 10 000 — the assumed-stats default of 1 000
    /// never trips it).
    pub large_table_rows: u64,
    /// P007 fires only when the estimated total re-scan work (outer
    /// tuples x inner rows) reaches this many fuel units (default 1e8).
    pub rescan_work: f64,
    /// P008 fires only when a predicate subquery's estimated total work
    /// (candidate tuples x per-evaluation cost) reaches this many fuel
    /// units (default 1e8).
    pub subquery_work: f64,
}

impl Default for CostOptions {
    fn default() -> CostOptions {
        CostOptions {
            stats: CatalogStats::default(),
            row_cap: None,
            large_table_rows: 10_000,
            rescan_work: 1e8,
            subquery_work: 1e8,
        }
    }
}

/// A bottom-up estimate for one (sub)query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated result rows.
    pub rows: f64,
    /// Estimated evaluation cost, in evaluator-fuel units.
    pub cost: f64,
}

/// The layer-4 result: the estimate, the optional XQuery-side fuel walk,
/// and the `P`-series findings.
#[derive(Debug, Clone, Default)]
pub struct CostReport {
    /// Estimated output rows of the whole statement.
    pub rows: f64,
    /// Estimated evaluation cost of the whole statement (fuel units),
    /// from the IR-level algebra.
    pub cost: f64,
    /// The structural fuel estimate from walking the generated XQuery
    /// AST; `None` when no program was supplied (or it did not parse —
    /// layer 2 reports that as `A100`).
    pub flwor_fuel: Option<f64>,
    /// `P001`–`P008` findings.
    pub diagnostics: Vec<Diagnostic>,
}

/// Runs the full layer-4 analysis: IR-level estimation plus lints, and —
/// when the generated program is supplied — the FLWOR fuel walk.
pub fn check_cost(
    prepared: &PreparedQuery,
    program: Option<&xq::Program>,
    options: &CostOptions,
) -> CostReport {
    let mut estimator = Estimator::new(options);
    let estimate = estimator.query(prepared, true);
    estimator.check_row_cap(estimate);
    CostReport {
        rows: estimate.rows,
        cost: estimate.cost,
        flwor_fuel: program.map(|p| estimate_program_fuel(prepared, p, &options.stats)),
        diagnostics: estimator.diags,
    }
}

/// The estimate alone — no lints collected. Used by the plan cache to
/// price plans at build time.
pub fn estimate_prepared(prepared: &PreparedQuery, options: &CostOptions) -> Estimate {
    let mut estimator = Estimator::new(options);
    estimator.query(prepared, false)
}

// --- the IR-level estimator ---------------------------------------------

/// Fuel charged per scanned base-table tuple: the tuple charge itself
/// plus the row materialization the table function performs.
const SCAN_TUPLE_FUEL: f64 = 2.0;
/// Selectivity assumed for range predicates (`<`, `<=`, `>`, `>=`,
/// `BETWEEN`) — the System R third.
const RANGE_SEL: f64 = 1.0 / 3.0;
/// Selectivity assumed for `LIKE`.
const LIKE_SEL: f64 = 0.25;
/// Selectivity assumed for `IS NULL` on a nullable column.
const NULL_SEL: f64 = 0.1;
/// Selectivity assumed when nothing better is known (subquery membership,
/// quantified comparisons, opaque predicates are estimated as 1.0 —
/// over-estimating keeps conjunction monotone; this constant is for
/// equality against a column whose NDV cannot be resolved).
const FALLBACK_EQ_SEL: f64 = 0.1;

/// What the estimator knows about one in-scope column.
#[derive(Debug, Clone, Copy)]
struct ScopeCol {
    ndv: f64,
    unique: bool,
}

/// One SELECT block's resolution scope: per-range-variable column stats
/// and cardinalities.
#[derive(Debug, Default)]
struct Scope {
    cols: HashMap<(String, String), ScopeCol>,
    input_rows: HashMap<String, f64>,
}

/// One direct FROM input, for the connectivity (P001) and pushdown
/// (P002) lints — for P002 a flattened INNER/CROSS join operand counts
/// as its own input (see `flatten_loops`).
struct FromInput {
    range_vars: Vec<String>,
    rows: f64,
}

struct Estimator<'a> {
    options: &'a CostOptions,
    /// Scope stack, innermost last (correlated subqueries resolve
    /// outward like stage 3 does).
    scopes: Vec<Scope>,
    diags: Vec<Diagnostic>,
    /// Lints are only collected for the top-level invocation flag; the
    /// plan cache prices plans without collecting.
    lint: bool,
}

impl<'a> Estimator<'a> {
    fn new(options: &'a CostOptions) -> Estimator<'a> {
        Estimator {
            options,
            scopes: Vec::new(),
            diags: Vec::new(),
            lint: true,
        }
    }

    fn report(&mut self, code: DiagCode, message: String) {
        if self.lint {
            self.diags.push(Diagnostic::new(code, message));
        }
    }

    fn query(&mut self, query: &PreparedQuery, lint: bool) -> Estimate {
        let previous = self.lint;
        self.lint = lint && previous;
        let mut estimate = self.body(&query.body);
        if !query.order_by.is_empty() {
            // Key evaluation per row plus the comparison sort.
            let n = estimate.rows.max(1.0);
            estimate.cost += estimate.rows * query.order_by.len() as f64 + n * n.log2().max(1.0);
            self.check_order_by(query);
        }
        self.lint = previous;
        estimate
    }

    fn body(&mut self, body: &PreparedBody) -> Estimate {
        match body {
            PreparedBody::Select(select) => self.select(select),
            PreparedBody::SetOp {
                left,
                op,
                all,
                right,
                ..
            } => {
                let l = self.body(left);
                let r = self.body(right);
                let mut rows = match op {
                    SetOp::Union => l.rows + r.rows,
                    SetOp::Intersect => l.rows.min(r.rows),
                    SetOp::Except => l.rows,
                };
                let mut cost = l.cost + r.cost + l.rows + r.rows;
                if !all {
                    // Distinct semantics pay a dedup pass over both sides.
                    let n = (l.rows + r.rows).max(1.0);
                    cost += n * n.log2().max(1.0);
                    rows *= 0.75;
                }
                if matches!(op, SetOp::Intersect | SetOp::Except) {
                    // Membership probes of the right side per left row.
                    cost += l.rows * r.rows.max(1.0).log2().max(1.0);
                    rows *= 0.5;
                }
                Estimate { rows, cost }
            }
        }
    }

    fn select(&mut self, select: &PreparedSelect) -> Estimate {
        self.scopes.push(Scope::default());

        // FROM: the nested-loop pipeline. Each input's source is
        // (re-)evaluated once per tuple of the inputs before it, exactly
        // like the generated `for` nesting.
        let mut inputs: Vec<FromInput> = Vec::new();
        let mut tuples = 1.0f64;
        let mut cost = 0.0f64;
        for rsn in &select.from {
            let (rows, scan_cost) = self.rsn(rsn, tuples);
            cost += tuples.max(1.0) * scan_cost;
            self.check_rescan(rsn, tuples);
            inputs.push(FromInput {
                range_vars: rsn.range_vars().iter().map(|v| v.to_string()).collect(),
                rows,
            });
            tuples *= rows;
        }
        // One fuel per tuple of the full stream.
        cost += tuples;

        self.check_cartesian(select, &inputs);
        self.check_pushdown(select);

        // WHERE: evaluated once per tuple of the cross stream.
        let mut rows = tuples;
        if let Some(w) = &select.where_clause {
            cost += tuples.max(1.0) * self.expr_cost(w);
            rows *= self.selectivity(w);
            self.check_null_literal(w);
            self.check_subquery_work(w, tuples, "WHERE");
        }

        // Grouping: key evaluation per input row, then each aggregate
        // iterates its group's partition (sum over groups = input rows).
        if select.grouped {
            let groups = if select.group_by.is_empty() {
                1.0
            } else {
                let ndv_bound: f64 = select
                    .group_by
                    .iter()
                    .map(|k| self.expr_ndv(k).max(1.0))
                    .product();
                ndv_bound.min(rows.max(1.0))
            };
            cost += rows * select.group_by.len() as f64;
            let aggregates = count_aggregates(select);
            cost += aggregates as f64 * rows;
            rows = groups;
            if let Some(h) = &select.having {
                cost += rows.max(1.0) * self.expr_cost(h);
                rows *= self.selectivity(h);
                self.check_null_literal(h);
                self.check_subquery_work(h, groups, "HAVING");
            }
        }

        // Projection + `<RECORD>` construction per emitted row.
        let item_cost: f64 = select.items.iter().map(|i| self.expr_cost(&i.expr)).sum();
        cost += rows.max(1.0) * (item_cost + 1.0 + 2.0 * select.items.len() as f64);

        // DISTINCT: a dedup pass, bounded by the projected NDV product.
        if select.distinct {
            let n = rows.max(1.0);
            cost += n * n.log2().max(1.0);
            let bound: f64 = select
                .items
                .iter()
                .map(|i| self.expr_ndv(&i.expr).max(1.0))
                .product();
            rows = rows.min(bound);
            self.check_distinct(select, &inputs);
        }

        self.scopes.pop();
        Estimate { rows, cost }
    }

    /// Estimates one FROM input: `(cardinality, per-scan cost)`. Registers
    /// the input's columns and cardinality in the current scope.
    fn rsn(&mut self, rsn: &Rsn, outer_tuples: f64) -> (f64, f64) {
        match rsn {
            Rsn::Table { range_var, entry } => {
                let table = &entry.schema.table_name;
                let rows = self.options.stats.rows(table) as f64;
                for column in &entry.schema.columns {
                    let stats = self.options.stats.column(table, &column.name);
                    self.bind(range_var, &column.name, stats, rows);
                }
                self.scope().input_rows.insert(range_var.clone(), rows);
                // Source evaluation plus per-tuple scan fuel.
                (rows, 1.0 + rows * SCAN_TUPLE_FUEL)
            }
            Rsn::Derived { range_var, query } => {
                let estimate = self.query(query, true);
                // Derived outputs: propagate plain-column NDV through the
                // subquery's projection where possible; assume a tenth of
                // the derived cardinality otherwise.
                let inner_cols = derived_column_stats(query, estimate.rows, &self.options.stats);
                for (name, col) in inner_cols {
                    self.bind(range_var, &name, col, estimate.rows);
                }
                self.scope()
                    .input_rows
                    .insert(range_var.clone(), estimate.rows);
                (estimate.rows, estimate.cost)
            }
            Rsn::Join {
                kind,
                left,
                right,
                on,
            } => {
                let (left_rows, left_cost) = self.rsn(left, outer_tuples);
                // The inner `for` source is re-evaluated per outer tuple.
                let (right_rows, right_cost) = self.rsn(right, outer_tuples * left_rows.max(1.0));
                let cross = left_rows * right_rows;
                let mut cost = left_cost + left_rows.max(1.0) * right_cost + cross;
                let mut rows = cross;
                if let Some(on) = on {
                    cost += cross.max(1.0) * self.expr_cost(on);
                    rows *= self.selectivity(on);
                    self.check_null_literal(on);
                    self.check_join_equality(kind, left, right, on, cross);
                } else if matches!(kind, JoinKind::Inner | JoinKind::Cross) {
                    self.report(
                        DiagCode::P001,
                        format!(
                            "join of {} and {} has no ON predicate: the generated FLWOR \
                             enumerates the full cross product (~{:.0} tuples)",
                            join_vars(left),
                            join_vars(right),
                            cross
                        ),
                    );
                }
                // Outer joins pad instead of dropping unmatched rows.
                rows = match kind {
                    JoinKind::LeftOuter => rows.max(left_rows),
                    JoinKind::RightOuter => rows.max(right_rows),
                    JoinKind::FullOuter => rows.max(left_rows).max(right_rows),
                    JoinKind::Inner | JoinKind::Cross => rows,
                };
                self.check_join_rescan(kind, left, right, left_rows, right_rows, outer_tuples);
                cost += rows;
                (rows, cost)
            }
        }
    }

    fn bind(&mut self, range_var: &str, column: &str, stats: ColumnStats, rows: f64) {
        let ndv = (stats.ndv as f64).min(rows.max(1.0));
        self.scope().cols.insert(
            (range_var.to_string(), column.to_string()),
            ScopeCol {
                ndv: ndv.max(1.0),
                unique: stats.unique,
            },
        );
    }

    fn scope(&mut self) -> &mut Scope {
        self.scopes.last_mut().expect("estimator scope underflow")
    }

    /// Resolves a column against the scope stack, innermost out.
    fn lookup(&self, range_var: &str, column: &str) -> Option<ScopeCol> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.cols.get(&(range_var.to_string(), column.to_string())))
            .copied()
    }

    // --- selectivity ----------------------------------------------------

    /// Predicate selectivity in `[0, 1]`. Everything unknown estimates as
    /// 1.0, so conjoining a predicate can never *raise* a cardinality
    /// estimate (the monotonicity property pinned in `tests/analyzer.rs`).
    fn selectivity(&self, e: &TExpr) -> f64 {
        let s = match &e.kind {
            TExprKind::And(a, b) => self.selectivity(a) * self.selectivity(b),
            TExprKind::Or(a, b) => {
                let (sa, sb) = (self.selectivity(a), self.selectivity(b));
                sa + sb - sa * sb
            }
            TExprKind::Not(a) => 1.0 - self.selectivity(a),
            TExprKind::Compare { op, left, right } => self.compare_selectivity(*op, left, right),
            TExprKind::Between { negated, .. } => negate(RANGE_SEL, *negated),
            TExprKind::Like { negated, .. } => negate(LIKE_SEL, *negated),
            TExprKind::IsNull { expr, negated } => {
                let base = if expr.nullable { NULL_SEL } else { 0.0 };
                negate(base, *negated)
            }
            TExprKind::InList {
                expr,
                list,
                negated,
            } => {
                let ndv = self.expr_ndv(expr);
                let base = (list.len() as f64 / ndv.max(1.0)).min(1.0);
                negate(base, *negated)
            }
            // Membership and quantified predicates over subqueries, and
            // anything opaque: assume they keep everything.
            _ => 1.0,
        };
        s.clamp(0.0, 1.0)
    }

    fn compare_selectivity(&self, op: CompareOp, left: &TExpr, right: &TExpr) -> f64 {
        match op {
            CompareOp::Eq => match (self.expr_col(left), self.expr_col(right)) {
                // Join containment: the smaller domain is contained in
                // the larger.
                (Some(l), Some(r)) => 1.0 / l.ndv.max(r.ndv).max(1.0),
                (Some(c), None) | (None, Some(c)) => 1.0 / c.ndv.max(1.0),
                (None, None) => FALLBACK_EQ_SEL,
            },
            CompareOp::NotEq => match (self.expr_col(left), self.expr_col(right)) {
                (Some(c), None) | (None, Some(c)) => 1.0 - 1.0 / c.ndv.max(1.0),
                _ => 1.0 - FALLBACK_EQ_SEL,
            },
            CompareOp::Lt | CompareOp::LtEq | CompareOp::Gt | CompareOp::GtEq => RANGE_SEL,
        }
    }

    /// The scope stats behind an expression, when it is a plain column.
    fn expr_col(&self, e: &TExpr) -> Option<ScopeCol> {
        match &e.kind {
            TExprKind::Column { range_var, column } => self.lookup(range_var, column),
            TExprKind::Cast { expr, .. } => self.expr_col(expr),
            _ => None,
        }
    }

    /// NDV of an arbitrary expression: the column's for plain columns, a
    /// tenth of the innermost input's cardinality otherwise.
    fn expr_ndv(&self, e: &TExpr) -> f64 {
        if let Some(col) = self.expr_col(e) {
            return col.ndv;
        }
        if let TExprKind::Literal(_) | TExprKind::Parameter(_) = e.kind {
            return 1.0;
        }
        let input_rows: f64 = self
            .scopes
            .last()
            .map(|s| s.input_rows.values().product())
            .unwrap_or(1.0);
        (input_rows / 10.0).max(1.0)
    }

    // --- per-evaluation expression cost ---------------------------------

    /// Fuel for evaluating `e` once: one unit per node (mirroring the
    /// evaluator's per-expression charge), plus the full estimated cost
    /// of any subquery — the generated XQuery re-evaluates predicate
    /// subqueries at every site evaluation.
    fn expr_cost(&mut self, e: &TExpr) -> f64 {
        let mut cost = 1.0;
        match &e.kind {
            TExprKind::InSubquery { expr, query, .. } => {
                cost += self.expr_cost(expr);
                cost += self.query(query, true).cost;
            }
            TExprKind::Exists { query, .. } => cost += self.query(query, true).cost,
            TExprKind::ScalarSubquery(query) => cost += self.query(query, true).cost,
            TExprKind::Quantified { expr, query, .. } => {
                cost += self.expr_cost(expr);
                cost += self.query(query, true).cost;
            }
            _ => {
                let mut child_cost = 0.0;
                e.visit_children(&mut |c| child_cost += self.expr_cost(c));
                cost += child_cost;
            }
        }
        cost
    }

    // --- lints ----------------------------------------------------------

    /// P001 over a comma FROM list: every input must be connected to the
    /// rest through some equality conjunct of the WHERE clause.
    fn check_cartesian(&mut self, select: &PreparedSelect, inputs: &[FromInput]) {
        if inputs.len() < 2 || !self.lint {
            return;
        }
        // Union-find over input indices, joined by cross-input equality
        // conjuncts.
        let mut component: Vec<usize> = (0..inputs.len()).collect();
        fn root(component: &mut [usize], mut i: usize) -> usize {
            while component[i] != i {
                component[i] = component[component[i]];
                i = component[i];
            }
            i
        }
        let input_of = |rv: &str| -> Option<usize> {
            inputs
                .iter()
                .position(|i| i.range_vars.iter().any(|v| v == rv))
        };
        let mut conjuncts = Vec::new();
        if let Some(w) = &select.where_clause {
            collect_conjuncts(w, &mut conjuncts);
        }
        for c in &conjuncts {
            if let TExprKind::Compare {
                op: CompareOp::Eq,
                left,
                right,
            } = &c.kind
            {
                let (mut lv, mut rv) = (Vec::new(), Vec::new());
                collect_range_vars(left, &mut lv);
                collect_range_vars(right, &mut rv);
                for l in &lv {
                    for r in &rv {
                        if let (Some(a), Some(b)) = (input_of(l), input_of(r)) {
                            let (ra, rb) = (root(&mut component, a), root(&mut component, b));
                            component[ra] = rb;
                        }
                    }
                }
            }
        }
        let first = root(&mut component, 0);
        let disconnected: Vec<&str> = (1..inputs.len())
            .filter(|&i| root(&mut component, i) != first)
            .map(|i| inputs[i].range_vars[0].as_str())
            .collect();
        if !disconnected.is_empty() {
            let tuples: f64 = inputs.iter().map(|i| i.rows).product();
            self.report(
                DiagCode::P001,
                format!(
                    "FROM input(s) {} join no other input by equality: the generated \
                     FLWOR enumerates the full cross product (~{tuples:.0} tuples)",
                    disconnected.join(", ")
                ),
            );
        }
    }

    /// P002: a WHERE conjunct that references inputs but none bound by
    /// the *last* `for` of the generated loop nest could have filtered
    /// the stream before the innermost loop multiplied it. The loop nest
    /// is the comma FROM list with every INNER/CROSS join chain
    /// flattened the way stage 3 flattens it into sequential `for`s;
    /// outer-join subtrees stay opaque (their padded-view shape blocks
    /// pushdown inside them).
    fn check_pushdown(&mut self, select: &PreparedSelect) {
        if !self.lint {
            return;
        }
        let Some(w) = &select.where_clause else {
            return;
        };
        let mut loops: Vec<FromInput> = Vec::new();
        for rsn in &select.from {
            self.flatten_loops(rsn, &mut loops);
        }
        if loops.len() < 2 {
            return;
        }
        let last = loops.last().expect("non-empty loops");
        let own: Vec<&str> = loops
            .iter()
            .flat_map(|i| i.range_vars.iter().map(|v| v.as_str()))
            .collect();
        let mut conjuncts = Vec::new();
        collect_conjuncts(w, &mut conjuncts);
        for (index, c) in conjuncts.iter().enumerate() {
            let mut refs = Vec::new();
            collect_range_vars(c, &mut refs);
            let local: Vec<&String> = refs.iter().filter(|r| own.contains(&r.as_str())).collect();
            if !local.is_empty()
                && local
                    .iter()
                    .all(|r| !last.range_vars.iter().any(|v| v == *r))
            {
                self.report(
                    DiagCode::P002,
                    format!(
                        "WHERE conjunct {} references only {} and is evaluated after the \
                         innermost for (which binds {}); pushing it before that loop would \
                         filter ~{:.0} tuples earlier",
                        index + 1,
                        join_names(&local),
                        last.range_vars.join(", "),
                        last.rows
                    ),
                );
            }
        }
    }

    /// P003: DISTINCT over a single-table projection that includes a
    /// declared-unique column.
    fn check_distinct(&mut self, select: &PreparedSelect, inputs: &[FromInput]) {
        if !self.lint || select.grouped || inputs.len() != 1 || inputs[0].range_vars.len() != 1 {
            return;
        }
        for item in &select.items {
            if let Some(col) = self.expr_col(&item.expr) {
                if col.unique {
                    if let TExprKind::Column { range_var, column } = &item.expr.kind {
                        self.report(
                            DiagCode::P003,
                            format!(
                                "DISTINCT is redundant: projected column {range_var}.{column} \
                                 is declared unique, every row is already distinct"
                            ),
                        );
                        return;
                    }
                }
            }
        }
    }

    /// P004: ORDER BY keys after a declared-unique leading key.
    fn check_order_by(&mut self, query: &PreparedQuery) {
        if !self.lint || query.order_by.len() < 2 {
            return;
        }
        let PreparedBody::Select(select) = &query.body else {
            return;
        };
        if select.from.len() != 1 || select.from[0].range_vars().len() != 1 {
            return;
        }
        let first = query.order_by[0].column;
        let Some(item) = select.items.iter().find(|i| i.output == first) else {
            return;
        };
        // The scope was popped when the select finished; re-resolve the
        // leading key against the stats directly.
        let Rsn::Table { range_var, entry } = &select.from[0] else {
            return;
        };
        let TExprKind::Column {
            range_var: col_rv,
            column,
        } = &item.expr.kind
        else {
            return;
        };
        if col_rv != range_var {
            return;
        }
        let stats = self.options.stats.column(&entry.schema.table_name, column);
        if stats.unique {
            self.report(
                DiagCode::P004,
                format!(
                    "ORDER BY keys after {col_rv}.{column} are redundant: the leading key \
                     is declared unique, ties cannot occur ({} extra key evaluation(s) per row)",
                    query.order_by.len() - 1
                ),
            );
        }
    }

    /// The sequential `for` nest stage 3 generates for `rsn`:
    /// INNER/CROSS join chains flatten left to right into one loop input
    /// per operand; an outer-join subtree is a single opaque input sized
    /// by its cross-product upper bound.
    fn flatten_loops(&mut self, rsn: &Rsn, out: &mut Vec<FromInput>) {
        match rsn {
            Rsn::Join {
                kind: JoinKind::Inner | JoinKind::Cross,
                left,
                right,
                ..
            } => {
                self.flatten_loops(left, out);
                self.flatten_loops(right, out);
            }
            Rsn::Join { left, right, .. } => {
                let mut sides: Vec<FromInput> = Vec::new();
                self.flatten_loops(left, &mut sides);
                self.flatten_loops(right, &mut sides);
                out.push(FromInput {
                    range_vars: rsn.range_vars().iter().map(|v| v.to_string()).collect(),
                    rows: sides.iter().map(|i| i.rows.max(1.0)).product(),
                });
            }
            Rsn::Table { range_var, entry } => out.push(FromInput {
                range_vars: vec![range_var.clone()],
                rows: self.options.stats.rows(&entry.schema.table_name) as f64,
            }),
            Rsn::Derived { range_var, query } => {
                let rows = self.query(query, false).rows;
                out.push(FromInput {
                    range_vars: vec![range_var.clone()],
                    rows,
                });
            }
        }
    }

    /// P005: comparisons against a NULL literal — never true under 3VL,
    /// and the one predicate-zone literal normalization leaves verbatim.
    fn check_null_literal(&mut self, predicate: &TExpr) {
        if !self.lint {
            return;
        }
        let mut sites = 0usize;
        count_null_comparisons(predicate, &mut sites);
        for _ in 0..sites {
            self.report(
                DiagCode::P005,
                "predicate compares against a NULL literal: never true under three-valued \
                 logic, and plan-cache normalization must leave it verbatim (use IS NULL)"
                    .to_string(),
            );
        }
    }

    /// P007 (comma-join flavor): a base-table input scanned once per
    /// tuple of the inputs before it.
    fn check_rescan(&mut self, rsn: &Rsn, outer_tuples: f64) {
        if !self.lint || outer_tuples <= 1.0 {
            return;
        }
        if let Rsn::Table { range_var, entry } = rsn {
            let rows = self.options.stats.rows(&entry.schema.table_name);
            let work = outer_tuples * rows as f64;
            if rows >= self.options.large_table_rows && work >= self.options.rescan_work {
                self.report(
                    DiagCode::P007,
                    format!(
                        "{range_var} ({} rows) is re-scanned for each of ~{outer_tuples:.0} \
                         outer tuples (~{work:.0} fuel)",
                        rows
                    ),
                );
            }
        }
    }

    /// P007 (explicit-join flavor): the operand bound by the inner `for`
    /// of the generated nested loop. RIGHT OUTER generates as LEFT OUTER
    /// with swapped operands, so its inner side is the left operand.
    fn check_join_rescan(
        &mut self,
        kind: &JoinKind,
        left: &Rsn,
        right: &Rsn,
        left_rows: f64,
        right_rows: f64,
        outer_tuples: f64,
    ) {
        if !self.lint {
            return;
        }
        let (inner, inner_rows, outer_rows) = match kind {
            JoinKind::RightOuter => (left, left_rows, right_rows),
            _ => (right, right_rows, left_rows),
        };
        let Rsn::Table { range_var, entry } = inner else {
            return;
        };
        let rows = self.options.stats.rows(&entry.schema.table_name);
        let loops = outer_rows * outer_tuples.max(1.0);
        let work = loops * inner_rows;
        if rows >= self.options.large_table_rows && work >= self.options.rescan_work {
            self.report(
                DiagCode::P007,
                format!(
                    "nested-loop join re-scans {range_var} ({rows} rows) for each of \
                     ~{loops:.0} outer tuples (~{work:.0} fuel)"
                ),
            );
        }
    }

    /// P001 (explicit-join flavor): an ON clause with no equality conjunct
    /// relating the two sides degenerates to a filtered cross product.
    fn check_join_equality(
        &mut self,
        kind: &JoinKind,
        left: &Rsn,
        right: &Rsn,
        on: &TExpr,
        cross: f64,
    ) {
        if !self.lint || !matches!(kind, JoinKind::Inner | JoinKind::Cross) {
            return;
        }
        let left_vars = left.range_vars();
        let right_vars = right.range_vars();
        let mut conjuncts = Vec::new();
        collect_conjuncts(on, &mut conjuncts);
        let relates = conjuncts.iter().any(|c| {
            if let TExprKind::Compare {
                op: CompareOp::Eq,
                left: l,
                right: r,
            } = &c.kind
            {
                let (mut lv, mut rv) = (Vec::new(), Vec::new());
                collect_range_vars(l, &mut lv);
                collect_range_vars(r, &mut rv);
                let touches = |vars: &[String], side: &[&str]| {
                    vars.iter().any(|v| side.contains(&v.as_str()))
                };
                (touches(&lv, &left_vars) && touches(&rv, &right_vars))
                    || (touches(&lv, &right_vars) && touches(&rv, &left_vars))
            } else {
                false
            }
        });
        if !relates {
            self.report(
                DiagCode::P001,
                format!(
                    "ON predicate contains no equality relating {} to {}: the join \
                     degenerates to a filtered cross product (~{cross:.0} tuples)",
                    join_vars(left),
                    join_vars(right)
                ),
            );
        }
    }

    /// P008: predicate subqueries re-evaluated once per candidate tuple.
    fn check_subquery_work(&mut self, predicate: &TExpr, tuples: f64, zone: &str) {
        if !self.lint {
            return;
        }
        let mut subqueries: Vec<(&'static str, &PreparedQuery)> = Vec::new();
        collect_subqueries(predicate, &mut subqueries);
        for (what, query) in subqueries {
            let per_eval = self.query(query, false).cost;
            let work = tuples * per_eval;
            if work >= self.options.subquery_work {
                self.report(
                    DiagCode::P008,
                    format!(
                        "{what} subquery in {zone} is re-evaluated for each of \
                         ~{tuples:.0} candidate tuples (~{per_eval:.0} fuel per \
                         evaluation, ~{work:.0} total)"
                    ),
                );
            }
        }
    }

    /// P006: the final estimate against the governor row cap.
    fn check_row_cap(&mut self, estimate: Estimate) {
        if let Some(cap) = self.options.row_cap {
            if estimate.rows > cap as f64 {
                self.report(
                    DiagCode::P006,
                    format!(
                        "estimated result cardinality ~{:.0} exceeds the governor row cap \
                         {cap}: the evaluator is predicted to abort after doing most of \
                         the work",
                        estimate.rows
                    ),
                );
            }
        }
    }
}

fn negate(s: f64, negated: bool) -> f64 {
    if negated {
        1.0 - s
    } else {
        s
    }
}

fn join_names(names: &[&String]) -> String {
    let mut sorted: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.join(", ")
}

fn join_vars(rsn: &Rsn) -> String {
    rsn.range_vars().join(", ")
}

/// Direct children of `e`, borrowing with `e`'s own lifetime (the
/// `TExpr::visit_children` callback lifetime is too short for walkers
/// that collect references). Subquery bodies are not children.
fn children(e: &TExpr) -> Vec<&TExpr> {
    use TExprKind::*;
    match &e.kind {
        Column { .. } | Literal(_) | Parameter(_) | Generated { .. } => Vec::new(),
        Neg(a) | Not(a) | Cast { expr: a, .. } | IsNull { expr: a, .. } => vec![a],
        Arith { left, right, .. }
        | Compare { left, right, .. }
        | Concat(left, right)
        | And(left, right)
        | Or(left, right)
        | Position {
            needle: left,
            haystack: right,
        } => vec![left, right],
        ScalarFn { args, .. } => args.iter().collect(),
        Aggregate { arg, .. } => arg.iter().map(|a| a.as_ref()).collect(),
        Case {
            operand,
            branches,
            else_result,
        } => {
            let mut v: Vec<&TExpr> = Vec::new();
            v.extend(operand.iter().map(|o| o.as_ref()));
            for (when, then) in branches {
                v.push(when);
                v.push(then);
            }
            v.extend(else_result.iter().map(|o| o.as_ref()));
            v
        }
        Between {
            expr, low, high, ..
        } => vec![expr, low, high],
        InList { expr, list, .. } => {
            let mut v = vec![expr.as_ref()];
            v.extend(list.iter());
            v
        }
        InSubquery { expr, .. } | Quantified { expr, .. } => vec![expr],
        Exists { .. } | ScalarSubquery(_) => Vec::new(),
        Like {
            expr,
            pattern,
            escape,
            ..
        } => {
            let mut v = vec![expr.as_ref(), pattern.as_ref()];
            v.extend(escape.iter().map(|o| o.as_ref()));
            v
        }
        Substring {
            expr,
            start,
            length,
        } => {
            let mut v = vec![expr.as_ref(), start.as_ref()];
            v.extend(length.iter().map(|o| o.as_ref()));
            v
        }
        Trim {
            trim_chars, expr, ..
        } => {
            let mut v: Vec<&TExpr> = Vec::new();
            v.extend(trim_chars.iter().map(|o| o.as_ref()));
            v.push(expr);
            v
        }
    }
}

/// Splits a predicate into its top-level AND conjuncts.
fn collect_conjuncts<'e>(e: &'e TExpr, out: &mut Vec<&'e TExpr>) {
    if let TExprKind::And(a, b) = &e.kind {
        collect_conjuncts(a, out);
        collect_conjuncts(b, out);
    } else {
        out.push(e);
    }
}

/// Every range variable referenced anywhere under `e`, including inside
/// subqueries (a correlated reference still ties the conjunct to its
/// input).
fn collect_range_vars(e: &TExpr, out: &mut Vec<String>) {
    match &e.kind {
        TExprKind::Column { range_var, .. } => out.push(range_var.clone()),
        TExprKind::InSubquery { expr, query, .. } => {
            collect_range_vars(expr, out);
            collect_range_vars_query(query, out);
        }
        TExprKind::Exists { query, .. } => collect_range_vars_query(query, out),
        TExprKind::ScalarSubquery(query) => collect_range_vars_query(query, out),
        TExprKind::Quantified { expr, query, .. } => {
            collect_range_vars(expr, out);
            collect_range_vars_query(query, out);
        }
        _ => e.visit_children(&mut |c| collect_range_vars(c, out)),
    }
}

fn collect_range_vars_query(q: &PreparedQuery, out: &mut Vec<String>) {
    fn body(b: &PreparedBody, out: &mut Vec<String>) {
        match b {
            PreparedBody::Select(s) => {
                for item in &s.items {
                    collect_range_vars(&item.expr, out);
                }
                if let Some(w) = &s.where_clause {
                    collect_range_vars(w, out);
                }
                for k in &s.group_by {
                    collect_range_vars(k, out);
                }
                if let Some(h) = &s.having {
                    collect_range_vars(h, out);
                }
            }
            PreparedBody::SetOp { left, right, .. } => {
                body(left, out);
                body(right, out);
            }
        }
    }
    body(&q.body, out);
}

/// Comparison sites where one operand is a NULL literal (including NULL
/// elements of IN lists).
fn count_null_comparisons(e: &TExpr, out: &mut usize) {
    let is_null_literal = |x: &TExpr| matches!(&x.kind, TExprKind::Literal(l) if l.is_null());
    match &e.kind {
        TExprKind::Compare { left, right, .. }
            if is_null_literal(left) || is_null_literal(right) =>
        {
            *out += 1;
        }
        TExprKind::InList { list, .. } if list.iter().any(is_null_literal) => {
            *out += 1;
        }
        TExprKind::Between {
            expr, low, high, ..
        } if is_null_literal(expr) || is_null_literal(low) || is_null_literal(high) => {
            *out += 1;
        }
        _ => {}
    }
    e.visit_children(&mut |c| count_null_comparisons(c, out));
}

/// Predicate-position subqueries directly under `e` (not descending into
/// nested subqueries — each select lints its own zones).
fn collect_subqueries<'e>(e: &'e TExpr, out: &mut Vec<(&'static str, &'e PreparedQuery)>) {
    match &e.kind {
        TExprKind::InSubquery { query, .. } => out.push(("IN", query)),
        TExprKind::Exists { query, .. } => out.push(("EXISTS", query)),
        TExprKind::ScalarSubquery(query) => out.push(("scalar", query)),
        TExprKind::Quantified { query, .. } => out.push(("quantified", query)),
        _ => {}
    }
    for child in children(e) {
        collect_subqueries(child, out);
    }
}

fn count_aggregates(select: &PreparedSelect) -> usize {
    fn count(e: &TExpr, out: &mut usize) {
        if e.is_aggregate() {
            *out += 1;
        }
        e.visit_children(&mut |c| count(c, out));
    }
    let mut n = 0;
    for item in &select.items {
        count(&item.expr, &mut n);
    }
    if let Some(h) = &select.having {
        count(h, &mut n);
    }
    n
}

/// NDV stats for a derived table's output columns: plain-column items
/// over a base table keep that column's catalog stats; computed items
/// (and set-op outputs) assume the default heuristic over the derived
/// cardinality.
fn derived_column_stats(
    query: &PreparedQuery,
    rows: f64,
    stats: &CatalogStats,
) -> Vec<(String, ColumnStats)> {
    let assumed = || ColumnStats::assumed(rows.max(0.0) as u64);
    let PreparedBody::Select(select) = &query.body else {
        return query
            .output
            .iter()
            .map(|o| (o.label.clone(), assumed()))
            .collect();
    };
    // range variable -> base table name, over the subquery's FROM tree.
    fn tables<'r>(rsn: &'r Rsn, out: &mut HashMap<&'r str, &'r str>) {
        match rsn {
            Rsn::Table { range_var, entry } => {
                out.insert(range_var.as_str(), entry.schema.table_name.as_str());
            }
            Rsn::Derived { .. } => {}
            Rsn::Join { left, right, .. } => {
                tables(left, out);
                tables(right, out);
            }
        }
    }
    let mut table_of: HashMap<&str, &str> = HashMap::new();
    for rsn in &select.from {
        tables(rsn, &mut table_of);
    }
    query
        .output
        .iter()
        .enumerate()
        .map(|(index, o)| {
            let col = select
                .items
                .iter()
                .find(|i| i.output == index)
                .and_then(|item| match &item.expr.kind {
                    TExprKind::Column { range_var, column } => table_of
                        .get(range_var.as_str())
                        .map(|table| stats.column(table, column)),
                    _ => None,
                })
                .unwrap_or_else(assumed);
            (o.label.clone(), col)
        })
        .collect()
}

// --- the XQuery-side FLWOR fuel walk ------------------------------------

/// Walks the generated program and estimates total evaluator fuel the way
/// the evaluator spends it: one unit per expression node per evaluation,
/// one per FLWOR tuple, `for` sources re-evaluated per upstream tuple.
/// Table-function sources (`ns0:CUSTOMERS()`) resolve to stats row counts
/// through the prepared query's schema imports; opaque filters assume
/// half the stream survives.
pub fn estimate_program_fuel(
    prepared: &PreparedQuery,
    program: &xq::Program,
    stats: &CatalogStats,
) -> f64 {
    // prefix -> row count, joined through namespace.
    let mut rows_by_namespace: HashMap<&str, f64> = HashMap::new();
    collect_table_rows(&prepared.body, stats, &mut rows_by_namespace);
    let mut rows_by_prefix: HashMap<&str, f64> = HashMap::new();
    for import in &program.imports {
        if let Some(rows) = rows_by_namespace.get(import.namespace.as_str()) {
            rows_by_prefix.insert(import.prefix.as_str(), *rows);
        }
    }
    let walker = FuelWalker {
        rows_by_prefix,
        default_rows: stats.default_rows as f64,
    };
    walker.expr(&program.body).cost
}

fn collect_table_rows<'a>(
    body: &'a PreparedBody,
    stats: &CatalogStats,
    out: &mut HashMap<&'a str, f64>,
) {
    fn rsn<'a>(r: &'a Rsn, stats: &CatalogStats, out: &mut HashMap<&'a str, f64>) {
        match r {
            Rsn::Table { entry, .. } => {
                out.insert(
                    entry.schema.namespace.as_str(),
                    stats.rows(&entry.schema.table_name) as f64,
                );
            }
            Rsn::Derived { query, .. } => collect_table_rows(&query.body, stats, out),
            Rsn::Join { left, right, .. } => {
                rsn(left, stats, out);
                rsn(right, stats, out);
            }
        }
    }
    fn expr<'a>(e: &'a TExpr, stats: &CatalogStats, out: &mut HashMap<&'a str, f64>) {
        match &e.kind {
            TExprKind::InSubquery { query, .. }
            | TExprKind::Exists { query, .. }
            | TExprKind::Quantified { query, .. } => collect_table_rows(&query.body, stats, out),
            TExprKind::ScalarSubquery(query) => collect_table_rows(&query.body, stats, out),
            _ => {
                for child in children(e) {
                    expr(child, stats, out);
                }
            }
        }
    }
    match body {
        PreparedBody::Select(s) => {
            for r in &s.from {
                rsn(r, stats, out);
            }
            for item in &s.items {
                expr(&item.expr, stats, out);
            }
            if let Some(w) = &s.where_clause {
                expr(w, stats, out);
            }
            if let Some(h) = &s.having {
                expr(h, stats, out);
            }
        }
        PreparedBody::SetOp { left, right, .. } => {
            collect_table_rows(left, stats, out);
            collect_table_rows(right, stats, out);
        }
    }
}

/// `(cardinality, cost)` of one XQuery expression evaluation.
struct Fuel {
    card: f64,
    cost: f64,
}

struct FuelWalker<'a> {
    rows_by_prefix: HashMap<&'a str, f64>,
    default_rows: f64,
}

impl FuelWalker<'_> {
    fn expr(&self, e: &xq::Expr) -> Fuel {
        use xq::Expr::*;
        match e {
            Literal(_) | VarRef(_) | ContextItem => Fuel {
                card: 1.0,
                cost: 1.0,
            },
            EmptySequence => Fuel {
                card: 0.0,
                cost: 1.0,
            },
            Sequence(items) => {
                let mut card = 0.0;
                let mut cost = 1.0;
                for item in items {
                    let f = self.expr(item);
                    card += f.card;
                    cost += f.cost;
                }
                Fuel { card, cost }
            }
            FunctionCall { name, args } => {
                // A data-service table function materializes its rows.
                if args.is_empty() {
                    if let Some(prefix) = name.split(':').next() {
                        if let Some(rows) = self.rows_by_prefix.get(prefix) {
                            return Fuel {
                                card: *rows,
                                cost: 1.0 + *rows,
                            };
                        }
                        if name.starts_with("ns") && !name.starts_with("fn") {
                            return Fuel {
                                card: self.default_rows,
                                cost: 1.0 + self.default_rows,
                            };
                        }
                    }
                }
                let mut cost = 1.0;
                for a in args {
                    cost += self.expr(a).cost;
                }
                Fuel { card: 1.0, cost }
            }
            Path { start, steps } => {
                let base = match &**start {
                    xq::PathStart::Var(_) | xq::PathStart::Context => Fuel {
                        card: 1.0,
                        cost: 1.0,
                    },
                    xq::PathStart::Expr(e) => self.expr(e),
                };
                let mut cost = base.cost + steps.len() as f64;
                for step in steps {
                    for p in &step.predicates {
                        cost += base.card.max(1.0) * self.expr(p).cost;
                    }
                }
                Fuel {
                    card: base.card,
                    cost,
                }
            }
            Filter { base, predicates } => {
                let b = self.expr(base);
                let mut cost = b.cost;
                let mut card = b.card;
                for p in predicates {
                    cost += card.max(1.0) * self.expr(p).cost;
                    card *= 0.5;
                }
                Fuel { card, cost }
            }
            Flwor(flwor) => self.flwor(flwor),
            If { cond, then, els } => {
                let c = self.expr(cond);
                let t = self.expr(then);
                let e = self.expr(els);
                Fuel {
                    card: t.card.max(e.card),
                    cost: 1.0 + c.cost + t.cost.max(e.cost),
                }
            }
            Or(a, b) | And(a, b) => Fuel {
                card: 1.0,
                cost: 1.0 + self.expr(a).cost + self.expr(b).cost,
            },
            GeneralComp { left, right, .. }
            | ValueComp { left, right, .. }
            | Arith { left, right, .. } => Fuel {
                card: 1.0,
                cost: 1.0 + self.expr(left).cost + self.expr(right).cost,
            },
            UnaryMinus(a) => Fuel {
                card: 1.0,
                cost: 1.0 + self.expr(a).cost,
            },
            Quantified {
                source, satisfies, ..
            } => {
                let s = self.expr(source);
                Fuel {
                    card: 1.0,
                    cost: 1.0 + s.cost + s.card.max(1.0) * self.expr(satisfies).cost,
                }
            }
            Element(ctor) => self.element(ctor),
        }
    }

    fn element(&self, ctor: &xq::ElementCtor) -> Fuel {
        let mut cost = 1.0;
        for (_, parts) in &ctor.attributes {
            for part in parts {
                if let xq::AttrPart::Enclosed(e) = part {
                    cost += self.expr(e).cost;
                }
            }
        }
        for content in &ctor.content {
            match content {
                xq::Content::Text(_) => {}
                xq::Content::Enclosed(e) => cost += self.expr(e).cost,
                xq::Content::Element(nested) => cost += self.element(nested).cost,
            }
        }
        Fuel { card: 1.0, cost }
    }

    fn flwor(&self, flwor: &xq::Flwor) -> Fuel {
        let mut tuples = 1.0f64;
        let mut cost = 0.0f64;
        for clause in &flwor.clauses {
            match clause {
                xq::Clause::For { source, .. } => {
                    let s = self.expr(source);
                    // The source is re-evaluated per upstream tuple, and
                    // every produced tuple is charged.
                    cost += tuples.max(1.0) * s.cost;
                    tuples *= s.card.max(0.0);
                    cost += tuples;
                }
                xq::Clause::Let { value, .. } => {
                    cost += tuples.max(1.0) * self.expr(value).cost;
                }
                xq::Clause::Where(e) => {
                    cost += tuples.max(1.0) * self.expr(e).cost;
                    tuples *= 0.5;
                }
                xq::Clause::GroupBy(group) => {
                    for (key, _) in &group.keys {
                        cost += tuples.max(1.0) * self.expr(key).cost;
                    }
                    tuples = tuples.max(0.0).sqrt();
                }
                xq::Clause::OrderBy(specs) => {
                    for spec in specs {
                        cost += tuples.max(1.0) * self.expr(&spec.key).cost;
                    }
                    let n = tuples.max(1.0);
                    cost += n * n.log2().max(1.0);
                }
            }
        }
        let r = self.expr(&flwor.ret);
        cost += tuples.max(1.0) * r.cost;
        Fuel {
            card: tuples * r.card.max(1.0),
            cost,
        }
    }
}
