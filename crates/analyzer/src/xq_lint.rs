//! Layer 2: scope/def-use lint over generated XQuery.
//!
//! Stage three emits query *text*, so the lint re-parses it with the
//! `aldsp-xquery` parser (a parse failure is itself a diagnostic, `A100`)
//! and then runs a single scoped walk that checks, per paper §3.5 (iv):
//!
//! * **A101** — every `$var` reference is bound by an enclosing `for` /
//!   `let` / `group` / quantifier clause (or is an external `$sqlParamN`
//!   the driver binds at execution time);
//! * **A102** — no binding shadows another in-scope binding (the
//!   generator's per-`(ctx, zone)` counters make every name unique, so
//!   shadowing always indicates a counter bug);
//! * **A103** — every `let` binding is referenced at least once;
//! * **A104** — every binding follows the `var<ctx><zone><n>` naming
//!   discipline and its zone tag matches the clause that binds it (an
//!   `FR` variable must be `for`-bound, a guard `GD` variable
//!   `let`-bound, an `SQ` variable quantifier-bound, ...);
//! * **A105/A106** — every function call resolves: `fn:` / `fn-bea:` /
//!   `xs:` names against the builtin library, any other prefix against
//!   the prolog's schema imports (data-service functions).
//!
//! Scoping mirrors the evaluator: FLWOR clauses extend the environment
//! sequentially, the BEA group clause keeps pre-group variables visible
//! (the representative-tuple rule), and a quantifier variable is visible
//! only in its `satisfies` expression.

use crate::diag::{DiagCode, Diagnostic};
use aldsp_xquery::ast::{AttrPart, Clause, Content, ElementCtor, Expr, Flwor, PathStart, Program};
use aldsp_xquery::functions;
use aldsp_xquery::visit::{walk_expr, BindingKind, Visitor};
use std::collections::HashSet;

/// Parses and lints generated query text. A parse failure yields a single
/// `A100` diagnostic.
pub fn lint_text(text: &str) -> Vec<Diagnostic> {
    match aldsp_xquery::parse_program(text) {
        Ok(program) => lint_program(&program),
        Err(e) => vec![Diagnostic::new(
            DiagCode::A100,
            format!("generated XQuery does not parse: {e}"),
        )],
    }
}

/// Lints a parsed program.
pub fn lint_program(program: &Program) -> Vec<Diagnostic> {
    let mut linter = Linter {
        diags: Vec::new(),
        scope: Vec::new(),
        prefixes: program
            .imports
            .iter()
            .map(|import| import.prefix.clone())
            .collect(),
    };
    linter.visit_expr(&program.body);
    linter.unbind_to(0);
    linter.diags
}

struct Binding {
    name: String,
    kind: BindingKind,
    used: bool,
}

struct Linter {
    diags: Vec<Diagnostic>,
    /// Innermost binding last.
    scope: Vec<Binding>,
    /// Prolog import prefixes (`ns0`, `ns1`, ...).
    prefixes: HashSet<String>,
}

impl Linter {
    fn push(&mut self, code: DiagCode, message: String) {
        self.diags.push(Diagnostic::new(code, message));
    }

    fn use_var(&mut self, name: &str) {
        if let Some(binding) = self.scope.iter_mut().rev().find(|b| b.name == name) {
            binding.used = true;
        } else if !is_external(name) {
            self.push(DiagCode::A101, format!("${name} is not in scope"));
        }
    }

    fn bind(&mut self, name: &str, kind: BindingKind) {
        match expected_kinds(name) {
            None => self.push(
                DiagCode::A104,
                format!("${name} does not follow the var<ctx><zone><n> naming discipline"),
            ),
            Some(kinds) if !kinds.contains(&kind) => self.push(
                DiagCode::A104,
                format!(
                    "${name} is bound by a {} clause; its zone allows {}",
                    kind.describe(),
                    kinds
                        .iter()
                        .map(|k| k.describe())
                        .collect::<Vec<_>>()
                        .join("/")
                ),
            ),
            Some(_) => {}
        }
        if self.scope.iter().any(|b| b.name == name) {
            self.push(
                DiagCode::A102,
                format!("${name} shadows an in-scope binding"),
            );
        }
        self.scope.push(Binding {
            name: name.to_string(),
            kind,
            used: false,
        });
    }

    /// Pops bindings down to `depth`, reporting dead `let`s on the way.
    fn unbind_to(&mut self, depth: usize) {
        while self.scope.len() > depth {
            let binding = self.scope.pop().expect("depth bounded by len");
            if binding.kind == BindingKind::Let && !binding.used {
                self.push(
                    DiagCode::A103,
                    format!("let ${} is never referenced", binding.name),
                );
            }
        }
    }

    fn check_call(&mut self, name: &str) {
        match name.split_once(':') {
            Some((prefix @ ("fn" | "fn-bea" | "xs"), _)) => {
                if !functions::is_builtin(name) {
                    self.push(
                        DiagCode::A105,
                        format!("{name} is not in the {prefix}: builtin library"),
                    );
                }
            }
            Some((prefix, _)) => {
                if !self.prefixes.contains(prefix) {
                    self.push(
                        DiagCode::A106,
                        format!("call {name} uses prefix {prefix} with no matching schema import"),
                    );
                }
            }
            None => self.push(
                DiagCode::A105,
                format!("unprefixed call {name} cannot resolve in the generated dialect"),
            ),
        }
    }

    fn lint_flwor(&mut self, flwor: &Flwor) {
        let depth = self.scope.len();
        for clause in &flwor.clauses {
            match clause {
                Clause::For { var, source } => {
                    self.visit_expr(source);
                    self.bind(var, BindingKind::For);
                }
                Clause::Let { var, value } => {
                    self.visit_expr(value);
                    self.bind(var, BindingKind::Let);
                }
                Clause::Where(predicate) => self.visit_expr(predicate),
                Clause::GroupBy(group) => {
                    for (key, _) in &group.keys {
                        self.visit_expr(key);
                    }
                    // The partition concatenates the source variable's
                    // per-tuple values — that is a use.
                    self.use_var(&group.source_var);
                    self.bind(&group.partition_var, BindingKind::GroupPartition);
                    for (_, key_var) in &group.keys {
                        self.bind(key_var, BindingKind::GroupKey);
                    }
                    // Pre-group bindings stay in scope: the evaluator
                    // keeps each group's representative tuple.
                }
                Clause::OrderBy(specs) => {
                    for spec in specs {
                        self.visit_expr(&spec.key);
                    }
                }
            }
        }
        self.visit_expr(&flwor.ret);
        self.unbind_to(depth);
    }

    fn lint_element(&mut self, ctor: &ElementCtor) {
        for (_, parts) in &ctor.attributes {
            for part in parts {
                if let AttrPart::Enclosed(expr) = part {
                    self.visit_expr(expr);
                }
            }
        }
        for content in &ctor.content {
            match content {
                Content::Text(_) => {}
                Content::Enclosed(expr) => self.visit_expr(expr),
                Content::Element(nested) => self.lint_element(nested),
            }
        }
    }
}

impl Visitor for Linter {
    fn visit_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::VarRef(name) => self.use_var(name),
            Expr::Path { start, .. } => {
                if let PathStart::Var(name) = &**start {
                    self.use_var(name);
                }
                // Recurses into an expression start and step predicates.
                walk_expr(self, expr);
            }
            Expr::FunctionCall { name, .. } => {
                self.check_call(name);
                walk_expr(self, expr);
            }
            Expr::Flwor(flwor) => self.lint_flwor(flwor),
            Expr::Quantified {
                var,
                source,
                satisfies,
                ..
            } => {
                self.visit_expr(source);
                let depth = self.scope.len();
                self.bind(var, BindingKind::Quantifier);
                self.visit_expr(satisfies);
                self.unbind_to(depth);
            }
            Expr::Element(ctor) => self.lint_element(ctor),
            _ => walk_expr(self, expr),
        }
    }
}

/// External variables the driver binds at execution time: `$sqlParamN`.
fn is_external(name: &str) -> bool {
    name.strip_prefix("sqlParam")
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

/// The clause forms each zone tag may be bound by (derived from every
/// `fresh`/`fresh_temp` call site in `core::stage3` and the wrapper):
///
/// | name form                  | clause              |
/// |----------------------------|---------------------|
/// | `var<ctx>FR/OB/SL/DT<n>`   | `for`               |
/// | `var<ctx>ST<n>`            | `for` or quantifier |
/// | `var<ctx>AG<n>`            | `for` or `let`      |
/// | `var<ctx>GD/CS<n>`         | `let`               |
/// | `var<ctx>HX<n>`            | `let` (optimizer-hoisted invariant) |
/// | `var<ctx>SQ<n>`            | quantifier          |
/// | `var<ctx>GB<n>`            | group key           |
/// | `var<ctx>Partition<n>`     | group partition or `let` (implicit group) |
/// | `tempvar<ctx><zone><n>`    | `let`               |
/// | `varNewlet<n>`             | `for` (group-by row) |
/// | `inter<ctx>`               | `let`               |
/// | `actualQuery`/`tokenQuery` | `let` / `for` (text-transport wrapper) |
fn expected_kinds(name: &str) -> Option<&'static [BindingKind]> {
    use BindingKind::*;
    const ZONES: &[(&str, &[BindingKind])] = &[
        ("FR", &[For]),
        ("OB", &[For]),
        ("SL", &[For]),
        ("DT", &[For]),
        ("ST", &[For, Quantifier]),
        ("AG", &[For, Let]),
        ("GD", &[Let]),
        ("CS", &[Let]),
        // The optimizer's hoisted-invariant zone: `aldsp-optimizer` moves
        // loop-invariant sources into position-0 `let` bindings named
        // `var0HX<n>`, and its safety gate re-runs this lint.
        ("HX", &[Let]),
        ("SQ", &[Quantifier]),
        ("GB", &[GroupKey]),
        ("Partition", &[GroupPartition, Let]),
    ];
    match name {
        "actualQuery" => return Some(&[Let]),
        "tokenQuery" => return Some(&[For]),
        _ => {}
    }
    if let Some(rest) = name.strip_prefix("varNewlet") {
        return all_digits(rest).then_some(&[For] as &[BindingKind]);
    }
    if let Some(rest) = name.strip_prefix("inter") {
        return all_digits(rest).then_some(&[Let] as &[BindingKind]);
    }
    let rest = name
        .strip_prefix("tempvar")
        .or_else(|| name.strip_prefix("var"))?;
    let temp = name.starts_with("tempvar");
    // `<ctx><zone><n>`: leading context digits, a known zone tag, a
    // trailing counter.
    let zone_start = rest.find(|c: char| !c.is_ascii_digit())?;
    if zone_start == 0 {
        return None;
    }
    let zone_and_n = &rest[zone_start..];
    let counter_digits = zone_and_n
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit())
        .count();
    let (zone, n) = zone_and_n.split_at(zone_and_n.len() - counter_digits);
    if n.is_empty() {
        return None;
    }
    let kinds = ZONES.iter().find(|(z, _)| *z == zone).map(|(_, k)| *k)?;
    if temp {
        Some(&[BindingKind::Let])
    } else {
        Some(kinds)
    }
}

fn all_digits(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(text: &str) -> Vec<DiagCode> {
        let mut codes: Vec<DiagCode> = lint_text(text).into_iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    #[test]
    fn naming_table_classifies_generated_names() {
        use BindingKind::*;
        assert_eq!(expected_kinds("var1FR2"), Some(&[For] as &[_]));
        assert_eq!(expected_kinds("var0GD3"), Some(&[Let] as &[_]));
        assert_eq!(expected_kinds("var0HX1"), Some(&[Let] as &[_]));
        assert_eq!(expected_kinds("var12GB4"), Some(&[GroupKey] as &[_]));
        assert_eq!(
            expected_kinds("var1Partition1"),
            Some(&[GroupPartition, Let] as &[_])
        );
        assert_eq!(expected_kinds("tempvar1OB1"), Some(&[Let] as &[_]));
        assert_eq!(expected_kinds("varNewlet3"), Some(&[For] as &[_]));
        assert_eq!(expected_kinds("inter2"), Some(&[Let] as &[_]));
        assert_eq!(expected_kinds("var1XX1"), None);
        assert_eq!(expected_kinds("varFR1"), None); // no context digits
        assert_eq!(expected_kinds("var1FR"), None); // no counter
        assert_eq!(expected_kinds("mystery"), None);
    }

    #[test]
    fn clean_generated_shape_lints_clean() {
        let text = "import schema namespace ns0 = \"ld:T/C\" at \"ld:T/schemas/C.xsd\";\n\
                    <RECORDSET>{ for $var1FR1 in ns0:CUSTOMERS() \
                    where $var1FR1/ID = $sqlParam1 \
                    return <RECORD>{ fn:data($var1FR1/NAME) }</RECORD> }</RECORDSET>";
        assert!(codes(text).is_empty(), "{:?}", lint_text(text));
    }

    #[test]
    fn unbound_variable_is_a101() {
        assert_eq!(
            codes("<RECORDSET>{ fn:data($var1FR1/ID) }</RECORDSET>"),
            vec![DiagCode::A101]
        );
    }

    #[test]
    fn quantifier_variable_does_not_leak() {
        let text = "for $var1FR1 in (1, 2) \
                    where some $var0SQ1 in (3) satisfies $var0SQ1 = $var1FR1 \
                    return $var0SQ1";
        assert_eq!(codes(text), vec![DiagCode::A101]);
    }

    #[test]
    fn parse_failure_is_a100() {
        assert_eq!(codes("for $x in"), vec![DiagCode::A100]);
    }

    #[test]
    fn undeclared_prefix_and_unknown_builtin() {
        assert_eq!(
            codes("ns7:CUSTOMERS()"),
            vec![DiagCode::A106],
            "no import declares ns7"
        );
        assert_eq!(codes("fn:frobnicate(1)"), vec![DiagCode::A105]);
        assert!(codes("xs:integer(\"3\")").is_empty());
    }
}
