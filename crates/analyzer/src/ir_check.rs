//! Layer 1: invariant checks over the stage-1/stage-2 IR.
//!
//! The paper's translator rests on structural discipline: one query
//! context per (sub)query block (§3.4.3), one RSN per table / derived
//! table / join / set operation (§3.4.2, Fig. 4), every column reference
//! resolved against catalog metadata after wildcard expansion, and the
//! GROUP BY legality rule (§3.5 (v)). Stage two is supposed to establish
//! all of this; this pass re-verifies it on the prepared IR so a stage-2
//! regression (or a hand-built IR) is caught as a stable `A0xx`
//! diagnostic instead of a confusing downstream evaluation diff.

use crate::diag::{DiagCode, Diagnostic};
use aldsp_core::ir::{
    PreparedBody, PreparedQuery, PreparedSelect, Rsn, RsnColumn, TExpr, TExprKind,
};
use std::collections::{HashMap, HashSet};

/// Checks every invariant over a prepared query tree. Empty result means
/// the IR is well-formed.
pub fn check_prepared(query: &PreparedQuery) -> Vec<Diagnostic> {
    let mut checker = IrChecker::default();
    checker.check_query(query);
    let mut by_ctx: HashMap<u32, u32> = HashMap::new();
    for ctx in &checker.ctx_ids {
        *by_ctx.entry(*ctx).or_insert(0) += 1;
    }
    let mut dups: Vec<u32> = by_ctx
        .iter()
        .filter(|(_, n)| **n > 1)
        .map(|(ctx, _)| *ctx)
        .collect();
    dups.sort_unstable();
    for ctx in dups {
        checker.diags.push(Diagnostic::new(
            DiagCode::A001,
            format!("query context {ctx} is owned by more than one query block"),
        ));
    }
    checker.diags
}

#[derive(Default)]
struct IrChecker {
    diags: Vec<Diagnostic>,
    /// Every select block's context id, for the global uniqueness check.
    ctx_ids: Vec<u32>,
    /// Column-visibility frames, innermost last. A frame holds the columns
    /// of one select's FROM clause (or of one join subtree while its ON
    /// predicate is checked).
    frames: Vec<Vec<RsnColumn>>,
}

impl IrChecker {
    fn push(&mut self, code: DiagCode, message: String) {
        self.diags.push(Diagnostic::new(code, message));
    }

    fn check_query(&mut self, query: &PreparedQuery) {
        self.check_body(&query.body);
        for order in &query.order_by {
            if order.column >= query.output.len() {
                self.push(
                    DiagCode::A006,
                    format!(
                        "ORDER BY resolved to output index {} but the query has {} output column(s)",
                        order.column,
                        query.output.len()
                    ),
                );
            }
        }
    }

    fn check_body(&mut self, body: &PreparedBody) {
        match body {
            PreparedBody::Select(select) => self.check_select(select),
            PreparedBody::SetOp {
                left,
                op,
                right,
                output,
                ..
            } => {
                let l = left.output().len();
                let r = right.output().len();
                if l != r || l != output.len() {
                    self.push(
                        DiagCode::A007,
                        format!(
                            "{op:?} operands expose {l} and {r} column(s); the node declares {}",
                            output.len()
                        ),
                    );
                }
                self.check_body(left);
                self.check_body(right);
            }
        }
    }

    fn check_select(&mut self, select: &PreparedSelect) {
        if select.ctx_id == 0 {
            self.push(
                DiagCode::A001,
                "query block carries reserved context id 0 (stage-one ids start at 1)".into(),
            );
        }
        self.ctx_ids.push(select.ctx_id);

        // A002: each range variable names exactly one RSN in this FROM.
        let mut seen: HashSet<&str> = HashSet::new();
        for rsn in &select.from {
            for range_var in rsn.range_vars() {
                if !seen.insert(range_var) {
                    self.push(
                        DiagCode::A002,
                        format!(
                            "range variable \"{range_var}\" is bound more than once in context {}",
                            select.ctx_id
                        ),
                    );
                }
            }
        }

        // Derived-table subqueries and join ON predicates are checked
        // *before* this select's frame is pushed: a derived table is
        // uncorrelated with its sibling RSNs, so only the enclosing
        // frames are visible to it (this mirrors stage three, which
        // generates derived tables against the parent scope).
        for rsn in &select.from {
            self.check_rsn(rsn);
        }

        let frame: Vec<RsnColumn> = select.from.iter().flat_map(|rsn| rsn.columns()).collect();
        self.frames.push(frame);

        // A005: items ↔ output columns is a bijection.
        let mut covered = vec![false; select.output.len()];
        for item in &select.items {
            match covered.get_mut(item.output) {
                Some(slot) if !*slot => *slot = true,
                Some(_) => self.push(
                    DiagCode::A005,
                    format!(
                        "two projection items target output column {} in context {}",
                        item.output, select.ctx_id
                    ),
                ),
                None => self.push(
                    DiagCode::A005,
                    format!(
                        "projection item targets output index {} but the block has {} column(s)",
                        item.output,
                        select.output.len()
                    ),
                ),
            }
            self.check_expr(&item.expr);
        }
        for (index, hit) in covered.iter().enumerate() {
            if !hit {
                self.push(
                    DiagCode::A005,
                    format!(
                        "output column {index} (\"{}\") has no projection item in context {}",
                        select.output[index].name, select.ctx_id
                    ),
                );
            }
        }

        if let Some(predicate) = &select.where_clause {
            self.check_expr(predicate);
        }
        for key in &select.group_by {
            self.check_expr(key);
        }
        if let Some(predicate) = &select.having {
            self.check_expr(predicate);
        }

        // A004: post-restructuring GROUP BY legality. Every projection
        // and HAVING expression over a grouped block must be built from
        // group keys, aggregates, and constants.
        if select.grouped {
            for item in &select.items {
                self.check_grouped_expr(&item.expr, select, "projection item");
            }
            if let Some(predicate) = &select.having {
                self.check_grouped_expr(predicate, select, "HAVING predicate");
            }
        }

        self.frames.pop();
    }

    fn check_rsn(&mut self, rsn: &Rsn) {
        match rsn {
            Rsn::Table { .. } => {}
            Rsn::Derived { query, .. } => self.check_query(query),
            Rsn::Join {
                left, right, on, ..
            } => {
                self.check_rsn(left);
                self.check_rsn(right);
                if let Some(predicate) = on {
                    // The ON predicate sees this join subtree's columns
                    // (plus enclosing frames for correlated cases).
                    self.frames.push(rsn.columns());
                    self.check_expr(predicate);
                    self.frames.pop();
                }
            }
        }
    }

    /// Resolves one column reference against the frame stack, innermost
    /// first. Stage two records the resolution winner's range variable, so
    /// existence of the (range var, column) pair is the whole check.
    fn resolve(&self, range_var: &str, column: &str) -> bool {
        self.frames.iter().rev().any(|frame| {
            frame
                .iter()
                .any(|c| c.range_var == range_var && c.name == column)
        })
    }

    fn check_expr(&mut self, expr: &TExpr) {
        match &expr.kind {
            TExprKind::Column { range_var, column } if !self.resolve(range_var, column) => {
                self.push(
                    DiagCode::A003,
                    format!(
                        "column {range_var}.{column} does not resolve against any RSN in scope"
                    ),
                );
            }
            TExprKind::Column { .. } => {}
            TExprKind::Generated { xquery } => {
                self.push(
                    DiagCode::A008,
                    format!(
                        "stage-3 internal Generated node (\"{}\") present in stage-2 output",
                        truncate(xquery)
                    ),
                );
            }
            TExprKind::InSubquery { query, .. }
            | TExprKind::Exists { query, .. }
            | TExprKind::Quantified { query, .. } => {
                // Predicate subqueries are correlated: they see the full
                // current frame stack, so no frames are popped.
                self.check_query(query);
            }
            TExprKind::ScalarSubquery(query) => self.check_query(query),
            _ => {}
        }
        expr.visit_children(&mut |child| self.check_expr(child));
    }

    /// A004: `expr` over a grouped block must be a group key (structural
    /// match), an aggregate, a constant, a subquery (whose own blocks are
    /// checked separately), or a composition of legal parts.
    fn check_grouped_expr(&mut self, expr: &TExpr, select: &PreparedSelect, site: &str) {
        if !grouped_legal(expr, &select.group_by) {
            self.push(
                DiagCode::A004,
                format!(
                    "{site} in grouped context {} references non-grouped columns outside an aggregate",
                    select.ctx_id
                ),
            );
        }
    }
}

fn grouped_legal(expr: &TExpr, keys: &[TExpr]) -> bool {
    if keys.iter().any(|key| key == expr) {
        return true;
    }
    match &expr.kind {
        TExprKind::Aggregate { .. } => true,
        TExprKind::Column { .. } => false,
        TExprKind::Literal(_) | TExprKind::Parameter(_) => true,
        // Subquery operands may correlate arbitrarily; their own blocks
        // are verified by `check_query`. The *comparison operand* on the
        // outer side still has to be legal.
        TExprKind::InSubquery { expr, .. } | TExprKind::Quantified { expr, .. } => {
            grouped_legal(expr, keys)
        }
        TExprKind::Exists { .. } | TExprKind::ScalarSubquery(_) => true,
        _ => {
            let mut legal = true;
            expr.visit_children(&mut |child| {
                if !grouped_legal(child, keys) {
                    legal = false;
                }
            });
            legal
        }
    }
}

fn truncate(text: &str) -> String {
    const LIMIT: usize = 40;
    if text.len() <= LIMIT {
        text.to_string()
    } else {
        let cut = text
            .char_indices()
            .take_while(|(i, _)| *i < LIMIT)
            .last()
            .map(|(i, c)| i + c.len_utf8())
            .unwrap_or(0);
        format!("{}...", &text[..cut])
    }
}
