//! Diagnostic codes and the diagnostic record.
//!
//! Codes are stable API: tests assert on them, and DESIGN.md §10 documents
//! the full table. `A0xx` codes come from the layer-1 IR checker (stage-1
//! /stage-2 invariants, paper §3.4); `A1xx` codes come from the layer-2
//! XQuery lint (scope/def-use over the generated query, paper §3.5).

use std::fmt;

/// A stable diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiagCode {
    /// Duplicate (or reserved-zero) query-context id — each query block
    /// must own exactly one context (§3.4.3).
    A001,
    /// Range-variable collision inside one FROM clause.
    A002,
    /// Column reference that does not resolve against the RSNs in scope.
    A003,
    /// GROUP BY legality violated after stage-2 restructuring: a
    /// projection/HAVING expression references a non-grouped column
    /// outside an aggregate.
    A004,
    /// Projection items do not map one-to-one onto the output columns.
    A005,
    /// ORDER BY resolved to an output index that is out of range.
    A006,
    /// Set-operation operands (or its declared output) disagree on arity.
    A007,
    /// A stage-3-internal `Generated` node appeared in stage-2 output.
    A008,
    /// The generated XQuery text failed to parse.
    A100,
    /// Unbound variable reference.
    A101,
    /// A binding shadows an in-scope variable of the same name.
    A102,
    /// A `let` binding that is never referenced.
    A103,
    /// Variable-naming violation: the name does not follow the
    /// `var<ctx><zone><n>` discipline, or its zone tag does not match the
    /// clause that binds it (§3.5 (iv)).
    A104,
    /// A function call that is neither a `fn:`/`fn-bea:`/`xs:` builtin nor
    /// a data-service function of a declared import.
    A105,
    /// A function call whose namespace prefix is not declared.
    A106,
}

impl DiagCode {
    /// The code as printed (`"A101"`).
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::A001 => "A001",
            DiagCode::A002 => "A002",
            DiagCode::A003 => "A003",
            DiagCode::A004 => "A004",
            DiagCode::A005 => "A005",
            DiagCode::A006 => "A006",
            DiagCode::A007 => "A007",
            DiagCode::A008 => "A008",
            DiagCode::A100 => "A100",
            DiagCode::A101 => "A101",
            DiagCode::A102 => "A102",
            DiagCode::A103 => "A103",
            DiagCode::A104 => "A104",
            DiagCode::A105 => "A105",
            DiagCode::A106 => "A106",
        }
    }

    /// Short rule name, for the `analyze` bin's listing.
    pub fn rule(self) -> &'static str {
        match self {
            DiagCode::A001 => "duplicate query-context id",
            DiagCode::A002 => "range-variable collision",
            DiagCode::A003 => "unresolved column reference",
            DiagCode::A004 => "GROUP BY legality",
            DiagCode::A005 => "projection/output mismatch",
            DiagCode::A006 => "ORDER BY index out of range",
            DiagCode::A007 => "set-operation arity mismatch",
            DiagCode::A008 => "internal node leaked from stage two",
            DiagCode::A100 => "generated XQuery does not parse",
            DiagCode::A101 => "unbound variable",
            DiagCode::A102 => "shadowed binding",
            DiagCode::A103 => "dead let binding",
            DiagCode::A104 => "variable naming/zone violation",
            DiagCode::A105 => "unmapped function call",
            DiagCode::A106 => "undeclared namespace prefix",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Human-readable detail naming the offending construct.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(code: DiagCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.code, self.code.rule(), self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_and_rule() {
        let d = Diagnostic::new(DiagCode::A101, "$x is not in scope");
        assert_eq!(d.to_string(), "A101 [unbound variable]: $x is not in scope");
    }
}
