//! Diagnostic codes and the diagnostic record.
//!
//! Codes are stable API: tests assert on them, and DESIGN.md §10/§11
//! document the full table. `A0xx` codes come from the layer-1 IR checker
//! (stage-1/stage-2 invariants, paper §3.4); `A1xx` codes come from the
//! layer-2 XQuery lint (scope/def-use over the generated query, paper
//! §3.5); `T0xx` codes come from the layer-3 type pass (independent type
//! re-inference over the IR and the generated query, plus the per-output-
//! column diff between the two, paper §3.1/§3.5 (v)/§4); `P0xx` codes
//! come from the layer-4 cost pass (catalog-seeded cardinality/cost
//! estimation over the IR and the generated FLWOR nesting, DESIGN.md
//! §14); `V0xx` codes come from the layer-5 translation validator
//! (bounded equivalence checking of the generated XQuery against a
//! reference relational interpreter over enumerated witness databases,
//! DESIGN.md §15). `A`/`T`/`V` findings are correctness defects; `P`
//! findings are advisory performance lints — a `P`-flagged query still
//! computes the right answer, it just pays for it. The split is made
//! explicit by [`Severity`], derived in exactly one place
//! ([`DiagCode::severity`]).

use std::fmt;

/// How serious a finding is. Derived from the code in one place
/// ([`DiagCode::severity`]) instead of prefix string-matching scattered
/// through the report predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// A correctness defect: the translation is (or may be) wrong. All
    /// `A`, `T` and `V` codes. Errors fail `is_clean` and the
    /// debug-validate hook.
    Error,
    /// A performance finding that predicts a *runtime failure or refusal*
    /// under the configured governor/cache policy rather than mere waste
    /// (`P005`, `P006`).
    Warning,
    /// A pure performance lint: the query computes the right answer but
    /// pays more than it needs to (the remaining `P` codes).
    Advisory,
}

impl Severity {
    /// Lower-case label, as printed by `analyze --format json`.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Advisory => "advisory",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A stable diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiagCode {
    /// Duplicate (or reserved-zero) query-context id — each query block
    /// must own exactly one context (§3.4.3).
    A001,
    /// Range-variable collision inside one FROM clause.
    A002,
    /// Column reference that does not resolve against the RSNs in scope.
    A003,
    /// GROUP BY legality violated after stage-2 restructuring: a
    /// projection/HAVING expression references a non-grouped column
    /// outside an aggregate.
    A004,
    /// Projection items do not map one-to-one onto the output columns.
    A005,
    /// ORDER BY resolved to an output index that is out of range.
    A006,
    /// Set-operation operands (or its declared output) disagree on arity.
    A007,
    /// A stage-3-internal `Generated` node appeared in stage-2 output.
    A008,
    /// The generated XQuery text failed to parse.
    A100,
    /// Unbound variable reference.
    A101,
    /// A binding shadows an in-scope variable of the same name.
    A102,
    /// A `let` binding that is never referenced.
    A103,
    /// Variable-naming violation: the name does not follow the
    /// `var<ctx><zone><n>` discipline, or its zone tag does not match the
    /// clause that binds it (§3.5 (iv)).
    A104,
    /// A function call that is neither a `fn:`/`fn-bea:`/`xs:` builtin nor
    /// a data-service function of a declared import.
    A105,
    /// A function call whose namespace prefix is not declared.
    A106,
    /// Re-inferred expression typing disagrees with the stage-2
    /// annotation recorded on the IR node (type or nullability).
    T001,
    /// An ill-typed operation in the prepared IR (arithmetic over a
    /// non-numeric, an ordered/numeric aggregate over an incomparable
    /// type, comparison across incompatible type classes).
    T002,
    /// An output column's declared type/nullability disagrees with its
    /// projection item's inferred typing.
    T003,
    /// The generated `<RECORD>` shape does not match the declared output
    /// columns (arity, element names, or order).
    T004,
    /// A result column's type class differs between the SQL-side and the
    /// XQuery-side inference (a cast was lost or widened in generation).
    T005,
    /// A result column's nullability differs between the two inferences
    /// (conditional construction where the column is NOT NULL, or
    /// unconditional construction where NULL is possible).
    T006,
    /// A result column may yield more than one item per row (a missing
    /// `fn:zero-or-one`/aggregation guard) — no SQL column has that
    /// cardinality.
    T007,
    /// Driver-visible `ResultSetMetaData` disagrees with the inferred
    /// output typing (paper §4: the computed result schema drives the
    /// JDBC metadata).
    T008,
    /// Cartesian product: a FROM input joins no other input — no
    /// equality predicate (WHERE or ON) relates it to the rest, so the
    /// generated FLWOR nesting enumerates the full cross product.
    P001,
    /// A WHERE conjunct over an implicit (comma) join references only
    /// earlier FROM inputs, yet stage 3 evaluates it in the outermost
    /// where zone — after the innermost `for` has already multiplied the
    /// tuple stream it could have filtered.
    P002,
    /// DISTINCT over a projection that includes a declared-unique column
    /// of the (single) scanned table: every row is already distinct, the
    /// dedup pass is pure cost.
    P003,
    /// ORDER BY keys following a declared-unique leading key: the tie
    /// they would break cannot occur, the extra key evaluations are pure
    /// cost.
    P004,
    /// A predicate compares against a NULL literal — the one
    /// predicate-zone literal plan-cache normalization must leave
    /// verbatim (it defeats canonical-text sharing), and under
    /// three-valued logic the comparison never holds anyway.
    P005,
    /// The estimated result cardinality exceeds the governor row cap the
    /// query will run under: the evaluator is predicted to hit
    /// `RowCapExceeded` after doing most of the work.
    P006,
    /// A nested-loop join re-scans a large inner table once per outer
    /// tuple (the generated FLWOR re-evaluates the inner `for` source
    /// each iteration) and the estimated total re-scan work is large.
    P007,
    /// A predicate-position subquery (IN / EXISTS / quantified / scalar)
    /// is re-evaluated for every candidate row and the estimated total
    /// work is large.
    P008,
    /// Row-set mismatch: on some witness database the generated XQuery
    /// returns a different set of rows than the reference interpreter
    /// (rows present on one side only).
    V001,
    /// Duplicate-multiplicity mismatch: both sides agree on the distinct
    /// rows but disagree on how many times some row appears (bag
    /// semantics, SQL-92 §7.10).
    V002,
    /// NULL-handling divergence: both sides return the same number of
    /// rows, and every disagreeing cell has a NULL on exactly one side
    /// (lost or invented NULLs — 3VL or padding gone wrong).
    V003,
    /// Ordering divergence: the result bags agree but the generated
    /// query's row order violates the statement's ORDER BY specification.
    V004,
    /// Column-value divergence: both sides return the same number of rows
    /// but some non-NULL cell values differ (a miscompiled expression).
    V005,
    /// The XQuery evaluator rejected (or the transport failed to decode)
    /// a translation the reference interpreter executes cleanly.
    V006,
}

impl DiagCode {
    /// The code as printed (`"A101"`).
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::A001 => "A001",
            DiagCode::A002 => "A002",
            DiagCode::A003 => "A003",
            DiagCode::A004 => "A004",
            DiagCode::A005 => "A005",
            DiagCode::A006 => "A006",
            DiagCode::A007 => "A007",
            DiagCode::A008 => "A008",
            DiagCode::A100 => "A100",
            DiagCode::A101 => "A101",
            DiagCode::A102 => "A102",
            DiagCode::A103 => "A103",
            DiagCode::A104 => "A104",
            DiagCode::A105 => "A105",
            DiagCode::A106 => "A106",
            DiagCode::T001 => "T001",
            DiagCode::T002 => "T002",
            DiagCode::T003 => "T003",
            DiagCode::T004 => "T004",
            DiagCode::T005 => "T005",
            DiagCode::T006 => "T006",
            DiagCode::T007 => "T007",
            DiagCode::T008 => "T008",
            DiagCode::P001 => "P001",
            DiagCode::P002 => "P002",
            DiagCode::P003 => "P003",
            DiagCode::P004 => "P004",
            DiagCode::P005 => "P005",
            DiagCode::P006 => "P006",
            DiagCode::P007 => "P007",
            DiagCode::P008 => "P008",
            DiagCode::V001 => "V001",
            DiagCode::V002 => "V002",
            DiagCode::V003 => "V003",
            DiagCode::V004 => "V004",
            DiagCode::V005 => "V005",
            DiagCode::V006 => "V006",
        }
    }

    /// The analyzer layer that produces the code, as printed by
    /// `analyze --format json`.
    pub fn layer(self) -> &'static str {
        match self.as_str().as_bytes()[0] {
            b'A' if self.as_str() < "A100" => "ir",
            b'A' => "xquery",
            b'T' => "types",
            b'P' => "cost",
            _ => "validation",
        }
    }

    /// Severity, derived from the code in exactly one place: every `A`,
    /// `T` and `V` code is a correctness [`Severity::Error`]; `P005` and
    /// `P006` predict a runtime refusal and are [`Severity::Warning`];
    /// the remaining `P` codes are [`Severity::Advisory`].
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::P005 | DiagCode::P006 => Severity::Warning,
            DiagCode::P001
            | DiagCode::P002
            | DiagCode::P003
            | DiagCode::P004
            | DiagCode::P007
            | DiagCode::P008 => Severity::Advisory,
            _ => Severity::Error,
        }
    }

    /// Short rule name, for the `analyze` bin's listing.
    pub fn rule(self) -> &'static str {
        match self {
            DiagCode::A001 => "duplicate query-context id",
            DiagCode::A002 => "range-variable collision",
            DiagCode::A003 => "unresolved column reference",
            DiagCode::A004 => "GROUP BY legality",
            DiagCode::A005 => "projection/output mismatch",
            DiagCode::A006 => "ORDER BY index out of range",
            DiagCode::A007 => "set-operation arity mismatch",
            DiagCode::A008 => "internal node leaked from stage two",
            DiagCode::A100 => "generated XQuery does not parse",
            DiagCode::A101 => "unbound variable",
            DiagCode::A102 => "shadowed binding",
            DiagCode::A103 => "dead let binding",
            DiagCode::A104 => "variable naming/zone violation",
            DiagCode::A105 => "unmapped function call",
            DiagCode::A106 => "undeclared namespace prefix",
            DiagCode::T001 => "stage-2 type annotation mismatch",
            DiagCode::T002 => "ill-typed operation",
            DiagCode::T003 => "output column typing mismatch",
            DiagCode::T004 => "RECORD shape mismatch",
            DiagCode::T005 => "type lost in translation",
            DiagCode::T006 => "nullability lost in translation",
            DiagCode::T007 => "cardinality violation",
            DiagCode::T008 => "result-set metadata mismatch",
            DiagCode::P001 => "cartesian product",
            DiagCode::P002 => "predicate not pushed",
            DiagCode::P003 => "redundant DISTINCT under unique key",
            DiagCode::P004 => "redundant ORDER BY keys under unique key",
            DiagCode::P005 => "non-normalizable NULL-literal predicate",
            DiagCode::P006 => "estimated rows exceed governor cap",
            DiagCode::P007 => "nested-loop re-scan of large table",
            DiagCode::P008 => "per-row subquery re-evaluation",
            DiagCode::V001 => "row-set mismatch on witness database",
            DiagCode::V002 => "duplicate-multiplicity mismatch",
            DiagCode::V003 => "NULL-handling divergence",
            DiagCode::V004 => "ordering divergence under ORDER BY",
            DiagCode::V005 => "column-value divergence",
            DiagCode::V006 => "evaluator rejected a valid translation",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Human-readable detail naming the offending construct.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(code: DiagCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            message: message.into(),
        }
    }

    /// The finding's severity (delegates to [`DiagCode::severity`]).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.code, self.code.rule(), self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_and_rule() {
        let d = Diagnostic::new(DiagCode::A101, "$x is not in scope");
        assert_eq!(d.to_string(), "A101 [unbound variable]: $x is not in scope");
    }

    #[test]
    fn severity_is_derived_from_code() {
        assert_eq!(DiagCode::A003.severity(), Severity::Error);
        assert_eq!(DiagCode::T005.severity(), Severity::Error);
        assert_eq!(DiagCode::V001.severity(), Severity::Error);
        assert_eq!(DiagCode::P005.severity(), Severity::Warning);
        assert_eq!(DiagCode::P006.severity(), Severity::Warning);
        assert_eq!(DiagCode::P001.severity(), Severity::Advisory);
        assert_eq!(DiagCode::P008.severity(), Severity::Advisory);
    }

    #[test]
    fn layer_is_derived_from_code() {
        assert_eq!(DiagCode::A001.layer(), "ir");
        assert_eq!(DiagCode::A100.layer(), "xquery");
        assert_eq!(DiagCode::T004.layer(), "types");
        assert_eq!(DiagCode::P003.layer(), "cost");
        assert_eq!(DiagCode::V002.layer(), "validation");
    }
}
