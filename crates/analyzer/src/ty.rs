//! Layer 3: type-flow analysis and translation validation (`T0xx`).
//!
//! Two independent type inferences, then a diff:
//!
//! 1. **SQL side** — a bottom-up re-inference over the stage-2 prepared
//!    IR. Every `TExpr` gets a `(type, nullability)` pair derived from
//!    catalog column metadata, SQL-92 literal typing and numeric
//!    promotion (paper §3.5 (v): "the resulting datatype is inferred by
//!    applying the SQL rules of promotion and casting"), aggregate result
//!    typing, and three-valued NULL propagation. Disagreements with the
//!    annotations stage 2 recorded are `T001`; operations that are
//!    ill-typed regardless of annotation are `T002`; projection items
//!    whose typing disagrees with the declared output column are `T003`.
//!
//! 2. **XQuery side** — an abstract interpretation of the *generated*
//!    query. Data-service function calls seed element shapes from the
//!    imported XML schemas (paper §3.1: every data service function has
//!    a return type defined in an XML Schema file); FLWOR clauses,
//!    paths, constructors, casts, and the `fn:`/`fn-bea:` builtins
//!    propagate abstract values of the form *(item type, cardinality)*.
//!    Anything the interpreter does not recognize degrades to *unknown*
//!    rather than guessing, so every reported mismatch is meaningful.
//!
//! The per-output-column diff compares the two typings in the XML-value
//! domain (`SqlColumnType::to_xs` images): a shape mismatch is `T004`, a
//! type-class mismatch `T005`, a nullability mismatch `T006` (SQL NULL
//! must remain an *absent* element — a column constructed
//! unconditionally turns NULL into an empty string), and a column that
//! can yield more than one value per row is `T007`. Finally,
//! [`check_metadata`] cross-checks the driver's `ResultSetMetaData`
//! surface against the inferred typing (`T008`).

use crate::diag::{DiagCode, Diagnostic};
use aldsp_catalog::{SqlColumnType, TableSchema};
use aldsp_core::funcmap;
use aldsp_core::ir::{
    AggFunc, OutputColumn, PreparedBody, PreparedQuery, PreparedSelect, Rsn, RsnColumn, TExpr,
    TExprKind,
};
use aldsp_sql::Literal;
use aldsp_xml::XsType;
use aldsp_xquery::ast::{Clause, Content, ElementCtor, Expr, Flwor, NodeTest, PathStart, Program};
use aldsp_xquery::functions::{builtin_return_type, BuiltinReturn};
use std::collections::HashMap;

// =====================================================================
// Public surface
// =====================================================================

/// One output column as the type pass infers it from the prepared IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferredColumn {
    /// Result element name (`OutputColumn::name`).
    pub name: String,
    /// Bare label (what JDBC metadata reports).
    pub label: String,
    /// Inferred type; `None` when statically unknown.
    pub sql_type: Option<SqlColumnType>,
    /// Inferred nullability.
    pub nullable: bool,
}

/// The SQL-side result: the inferred output typing plus any findings.
#[derive(Debug, Clone, Default)]
pub struct TypeFlow {
    /// Inferred typing of the query's output columns, in order.
    pub columns: Vec<InferredColumn>,
    /// `T001`/`T002`/`T003` findings.
    pub diagnostics: Vec<Diagnostic>,
}

/// One column as surfaced through the driver's `ResultSetMetaData`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportedColumn {
    /// `getColumnLabel`.
    pub label: String,
    /// `getColumnTypeName` (e.g. `"INTEGER"`).
    pub type_name: String,
    /// `isNullable`.
    pub nullable: bool,
}

/// Re-infers types over the prepared IR and checks them against the
/// stage-2 annotations (`T001`), flags ill-typed operations (`T002`),
/// and diffs projection items against declared output columns (`T003`).
pub fn check_types(query: &PreparedQuery) -> TypeFlow {
    let mut checker = SqlTypeChecker::default();
    let columns = checker.check_query(query);
    TypeFlow {
        columns,
        diagnostics: checker.diags,
    }
}

/// Re-infers the result typing of the generated XQuery and diffs it per
/// output column against the SQL-side inference (`T004`–`T007`).
///
/// `inferred` is [`TypeFlow::columns`] from [`check_types`]; `prepared`
/// supplies the schemas behind the program's imports.
pub fn check_translation(
    prepared: &PreparedQuery,
    program: &Program,
    inferred: &[InferredColumn],
) -> Vec<Diagnostic> {
    let mut schemas: HashMap<String, TableSchema> = HashMap::new();
    collect_schemas_body(&prepared.body, &mut schemas);
    let mut interp = XqInterp::new(program, &schemas);
    let result = interp.eval(&program.body);
    let records = interp.captured_actual.unwrap_or(result);
    let Some(cols) = record_columns(&records) else {
        // The result shape is untracked (or not a RECORDSET) — nothing
        // to diff. Unknown never becomes a finding.
        return Vec::new();
    };
    diff_columns(inferred, &cols)
}

/// Cross-checks the driver's `ResultSetMetaData` surface against the
/// inferred SQL-side typing (`T008`).
pub fn check_metadata(inferred: &[InferredColumn], reported: &[ReportedColumn]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if inferred.len() != reported.len() {
        diags.push(Diagnostic::new(
            DiagCode::T008,
            format!(
                "result-set metadata reports {} column(s), inference produced {}",
                reported.len(),
                inferred.len()
            ),
        ));
        return diags;
    }
    for (i, (inf, rep)) in inferred.iter().zip(reported).enumerate() {
        if inf.label != rep.label {
            diags.push(Diagnostic::new(
                DiagCode::T008,
                format!(
                    "column {}: metadata label {} != inferred label {}",
                    i + 1,
                    rep.label,
                    inf.label
                ),
            ));
        }
        // The driver reports VARCHAR for statically-unknown types; only
        // a *known* inferred type can disagree. The reported name is
        // parsed back through the shared type table so the comparison is
        // on types, not spellings.
        if let Some(t) = inf.sql_type {
            if aldsp_relational::column_type_from_name(&rep.type_name) != Some(t) {
                diags.push(Diagnostic::new(
                    DiagCode::T008,
                    format!(
                        "column {}: metadata type {} != inferred {}",
                        rep.label,
                        rep.type_name,
                        t.sql_name()
                    ),
                ));
            }
        }
        if inf.nullable != rep.nullable {
            diags.push(Diagnostic::new(
                DiagCode::T008,
                format!(
                    "column {}: metadata nullable={} != inferred nullable={}",
                    rep.label, rep.nullable, inf.nullable
                ),
            ));
        }
    }
    diags
}

// =====================================================================
// SQL side: bottom-up re-inference over the prepared IR
// =====================================================================

/// An inferred `(type, nullability)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ty {
    ty: Option<SqlColumnType>,
    nullable: bool,
}

impl Ty {
    fn new(ty: Option<SqlColumnType>, nullable: bool) -> Ty {
        Ty { ty, nullable }
    }
}

/// Coarse comparability classes: SQL-92 requires comparison operands to
/// share one. Dates compare with character strings (date literals travel
/// as strings through the paper's pipeline), so they share the text
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TypeClass {
    Numeric,
    Text,
    Boolean,
}

fn class_of(t: SqlColumnType) -> TypeClass {
    if t.is_numeric() {
        TypeClass::Numeric
    } else if t == SqlColumnType::Boolean {
        TypeClass::Boolean
    } else {
        // Char, Varchar, Date.
        TypeClass::Text
    }
}

/// SQL numeric promotion, re-derived (independently of stage 2) from the
/// SQL-92 §6.12 hierarchy: smallint < integer < bigint < decimal < real
/// < double.
fn promote(a: SqlColumnType, b: SqlColumnType) -> SqlColumnType {
    use SqlColumnType as T;
    let rank = |t: T| match t {
        T::Smallint => 1,
        T::Integer => 2,
        T::Bigint => 3,
        T::Decimal => 4,
        T::Real => 5,
        T::Double => 6,
        _ => 0,
    };
    if rank(a) > 0 && rank(b) > 0 && rank(b) > rank(a) {
        b
    } else {
        a
    }
}

/// SQL-92 §5.3 literal typing, via the face-type table shared with the
/// plan-cache normalizer ([`Literal::type_name`] +
/// [`aldsp_relational::type_name_to_column`]): both consumers agree on
/// what type a literal carries, so a plan cached for an extracted literal
/// type-checks identically to the inline original.
fn literal_ty(l: &Literal) -> Ty {
    match l.type_name() {
        Some(name) => Ty::new(Some(aldsp_relational::type_name_to_column(name)), false),
        // NULL belongs to every type.
        None => Ty::new(None, true),
    }
}

#[derive(Default)]
struct SqlTypeChecker {
    diags: Vec<Diagnostic>,
    /// Column-resolution frames, innermost last — the same stack
    /// discipline as the layer-1 checker.
    frames: Vec<Vec<RsnColumn>>,
}

impl SqlTypeChecker {
    fn check_query(&mut self, query: &PreparedQuery) -> Vec<InferredColumn> {
        self.check_body(&query.body)
    }

    fn check_body(&mut self, body: &PreparedBody) -> Vec<InferredColumn> {
        match body {
            PreparedBody::Select(select) => self.check_select(select),
            PreparedBody::SetOp {
                left,
                right,
                output,
                ..
            } => {
                let l = self.check_body(left);
                let r = self.check_body(right);
                let mut columns = Vec::with_capacity(output.len());
                for (i, declared) in output.iter().enumerate() {
                    // Set-operation output: left names, types promoted
                    // across sides, nullable when either side is.
                    let derived = match (l.get(i), r.get(i)) {
                        (Some(lc), Some(rc)) => Some(Ty::new(
                            match (lc.sql_type, rc.sql_type) {
                                (Some(a), Some(b)) => Some(promote(a, b)),
                                (t, None) | (None, t) => t,
                            },
                            lc.nullable || rc.nullable,
                        )),
                        // Arity mismatch is layer 1's A007; skip here.
                        _ => None,
                    };
                    let used = self.check_output(declared, derived, "set operation");
                    columns.push(InferredColumn {
                        name: declared.name.clone(),
                        label: declared.label.clone(),
                        sql_type: used.ty,
                        nullable: used.nullable,
                    });
                }
                columns
            }
        }
    }

    fn check_select(&mut self, select: &PreparedSelect) -> Vec<InferredColumn> {
        // Derived tables are uncorrelated: their bodies type-check in the
        // enclosing scope, *before* this select's frame exists. Join ON
        // predicates see only the join subtree's columns.
        for rsn in &select.from {
            self.check_rsn(rsn);
        }
        let frame: Vec<RsnColumn> = select.from.iter().flat_map(|r| r.columns()).collect();
        self.frames.push(frame);

        let mut by_output: Vec<Option<Ty>> = vec![None; select.output.len()];
        for item in &select.items {
            let t = self.infer(&item.expr);
            if let Some(slot) = by_output.get_mut(item.output) {
                *slot = Some(t);
            }
        }
        if let Some(w) = &select.where_clause {
            let t = self.infer(w);
            self.expect_boolean(&t, "WHERE");
        }
        for key in &select.group_by {
            self.infer(key);
        }
        if let Some(h) = &select.having {
            let t = self.infer(h);
            self.expect_boolean(&t, "HAVING");
        }
        self.frames.pop();

        select
            .output
            .iter()
            .zip(by_output)
            .map(|(declared, derived)| {
                let used = self.check_output(declared, derived, "projection");
                InferredColumn {
                    name: declared.name.clone(),
                    label: declared.label.clone(),
                    sql_type: used.ty,
                    nullable: used.nullable,
                }
            })
            .collect()
    }

    /// Diffs a declared output column against its derived typing (`T003`)
    /// and returns the typing downstream consumers should use.
    fn check_output(&mut self, declared: &OutputColumn, derived: Option<Ty>, what: &str) -> Ty {
        let annotated = Ty::new(declared.sql_type, declared.nullable);
        let Some(derived) = derived else {
            return annotated;
        };
        if derived.ty.is_some() && derived.ty != declared.sql_type {
            self.diags.push(Diagnostic::new(
                DiagCode::T003,
                format!(
                    "{what} column {} declares {} but its expression infers {}",
                    declared.name,
                    type_str(declared.sql_type),
                    type_str(derived.ty)
                ),
            ));
            return derived;
        }
        if derived.nullable != declared.nullable {
            self.diags.push(Diagnostic::new(
                DiagCode::T003,
                format!(
                    "{what} column {} declares nullable={} but its expression infers nullable={}",
                    declared.name, declared.nullable, derived.nullable
                ),
            ));
            return derived;
        }
        annotated
    }

    /// Type-checks sources below an RSN: derived-table bodies and join
    /// ON predicates (which see the join subtree's combined columns).
    fn check_rsn(&mut self, rsn: &Rsn) {
        match rsn {
            Rsn::Table { .. } => {}
            Rsn::Derived { query, .. } => {
                self.check_query(query);
            }
            Rsn::Join {
                left, right, on, ..
            } => {
                self.check_rsn(left);
                self.check_rsn(right);
                if let Some(on) = on {
                    // The ON predicate evaluates *during* the join, so it
                    // sees the operands' own column views — outer-join
                    // NULL padding does not apply at this position (it
                    // only affects columns referenced above the join).
                    let mut frame = left.columns();
                    frame.extend(right.columns());
                    self.frames.push(frame);
                    let t = self.infer(on);
                    self.expect_boolean(&t, "join ON");
                    self.frames.pop();
                }
            }
        }
    }

    fn expect_boolean(&mut self, t: &Ty, position: &str) {
        if let Some(ty) = t.ty {
            if ty != SqlColumnType::Boolean {
                self.diags.push(Diagnostic::new(
                    DiagCode::T002,
                    format!(
                        "{position} predicate has type {}, expected BOOLEAN",
                        ty.sql_name()
                    ),
                ));
            }
        }
    }

    fn resolve_column(&self, range_var: &str, column: &str) -> Option<Ty> {
        for frame in self.frames.iter().rev() {
            for col in frame {
                if col.range_var == range_var && col.name == column {
                    return Some(Ty::new(col.sql_type, col.nullable));
                }
            }
        }
        None
    }

    /// Infers a `(type, nullability)` pair bottom-up and compares it
    /// against the annotation stage 2 recorded on the node (`T001`).
    fn infer(&mut self, expr: &TExpr) -> Ty {
        let Some(derived) = self.infer_kind(expr) else {
            // Not independently derivable (unresolved column, generated
            // fragment): trust the annotation, no comparison.
            return Ty::new(expr.ty, expr.nullable);
        };
        if (derived.ty.is_some() || expr.ty.is_some()) && derived.ty != expr.ty {
            self.diags.push(Diagnostic::new(
                DiagCode::T001,
                format!(
                    "{} annotated as {} but re-inference gives {}",
                    kind_name(&expr.kind),
                    type_str(expr.ty),
                    type_str(derived.ty)
                ),
            ));
        } else if derived.nullable != expr.nullable {
            self.diags.push(Diagnostic::new(
                DiagCode::T001,
                format!(
                    "{} annotated nullable={} but re-inference gives nullable={}",
                    kind_name(&expr.kind),
                    expr.nullable,
                    derived.nullable
                ),
            ));
        }
        derived
    }

    /// Flags a comparison whose operands cannot share a comparability
    /// class (`T002`).
    fn check_comparable(&mut self, a: &Ty, b: &Ty, what: &str) {
        if let (Some(x), Some(y)) = (a.ty, b.ty) {
            if class_of(x) != class_of(y) {
                self.diags.push(Diagnostic::new(
                    DiagCode::T002,
                    format!(
                        "{what} compares incomparable types {} and {}",
                        x.sql_name(),
                        y.sql_name()
                    ),
                ));
            }
        }
    }

    fn check_numeric(&mut self, t: &Ty, what: &str) {
        if let Some(ty) = t.ty {
            if !ty.is_numeric() {
                self.diags.push(Diagnostic::new(
                    DiagCode::T002,
                    format!("{what} over non-numeric type {}", ty.sql_name()),
                ));
            }
        }
    }

    /// The core rule table. `None` = not independently derivable.
    fn infer_kind(&mut self, expr: &TExpr) -> Option<Ty> {
        use TExprKind::*;
        Some(match &expr.kind {
            Column { range_var, column } => return self.resolve_column(range_var, column),
            Generated { .. } => return None,
            Literal(l) => literal_ty(l),
            Parameter(_) => Ty::new(None, true),
            Neg(inner) => {
                let t = self.infer(inner);
                self.check_numeric(&t, "unary minus");
                t
            }
            Not(inner) => {
                let t = self.infer(inner);
                self.expect_boolean(&t, "NOT");
                Ty::new(Some(SqlColumnType::Boolean), t.nullable)
            }
            Arith { left, right, .. } => {
                let l = self.infer(left);
                let r = self.infer(right);
                self.check_numeric(&l, "arithmetic");
                self.check_numeric(&r, "arithmetic");
                let ty = match (l.ty, r.ty) {
                    (Some(a), Some(b)) if a.is_numeric() && b.is_numeric() => Some(promote(a, b)),
                    (Some(t), None) | (None, Some(t)) if t.is_numeric() => Some(t),
                    _ => None,
                };
                Ty::new(ty, l.nullable || r.nullable)
            }
            Concat(l, r) => {
                let l = self.infer(l);
                let r = self.infer(r);
                Ty::new(Some(SqlColumnType::Varchar), l.nullable || r.nullable)
            }
            Compare { left, right, .. } => {
                let l = self.infer(left);
                let r = self.infer(right);
                self.check_comparable(&l, &r, "comparison");
                Ty::new(Some(SqlColumnType::Boolean), l.nullable || r.nullable)
            }
            And(l, r) | Or(l, r) => {
                let l = self.infer(l);
                let r = self.infer(r);
                self.expect_boolean(&l, "logical operand");
                self.expect_boolean(&r, "logical operand");
                Ty::new(Some(SqlColumnType::Boolean), l.nullable || r.nullable)
            }
            ScalarFn { name, args } => {
                let arg_tys: Vec<Ty> = args.iter().map(|a| self.infer(a)).collect();
                return self.infer_scalar_fn(name, &arg_tys);
            }
            Aggregate { func, arg, .. } => {
                let arg_ty = arg.as_deref().map(|a| self.infer(a));
                match (func, arg_ty) {
                    (AggFunc::Count, _) => Ty::new(Some(SqlColumnType::Bigint), false),
                    (AggFunc::Sum, Some(t)) => {
                        self.check_numeric(&t, "SUM");
                        Ty::new(t.ty, true)
                    }
                    (AggFunc::Avg, Some(t)) => {
                        self.check_numeric(&t, "AVG");
                        let ty = match t.ty {
                            Some(SqlColumnType::Real) | Some(SqlColumnType::Double) => {
                                Some(SqlColumnType::Double)
                            }
                            Some(_) => Some(SqlColumnType::Decimal),
                            None => None,
                        };
                        Ty::new(ty, true)
                    }
                    (AggFunc::Min, Some(t)) | (AggFunc::Max, Some(t)) => Ty::new(t.ty, true),
                    // SUM/AVG/MIN/MAX without argument: malformed IR,
                    // but arity is not this layer's business.
                    (_, None) => return None,
                }
            }
            Case {
                operand,
                branches,
                else_result,
            } => {
                if let Some(o) = operand {
                    let op_ty = self.infer(o);
                    for (when, _) in branches {
                        let w = self.infer(when);
                        self.check_comparable(&op_ty, &w, "CASE WHEN");
                    }
                } else {
                    for (when, _) in branches {
                        let w = self.infer(when);
                        self.expect_boolean(&w, "CASE WHEN");
                    }
                }
                let results: Vec<Ty> = branches.iter().map(|(_, r)| self.infer(r)).collect();
                let else_ty = else_result.as_deref().map(|e| self.infer(e));
                let ty = results.iter().chain(else_ty.iter()).find_map(|t| t.ty);
                let nullable = else_ty.is_none()
                    || results.iter().any(|t| t.nullable)
                    || else_ty.is_some_and(|t| t.nullable);
                Ty::new(ty, nullable)
            }
            Cast {
                expr: inner,
                target,
            } => {
                let t = self.infer(inner);
                Ty::new(Some(*target), t.nullable)
            }
            IsNull { expr: inner, .. } => {
                self.infer(inner);
                Ty::new(Some(SqlColumnType::Boolean), false)
            }
            Between {
                expr: e, low, high, ..
            } => {
                let t = self.infer(e);
                let lo = self.infer(low);
                let hi = self.infer(high);
                self.check_comparable(&t, &lo, "BETWEEN");
                self.check_comparable(&t, &hi, "BETWEEN");
                Ty::new(
                    Some(SqlColumnType::Boolean),
                    t.nullable || lo.nullable || hi.nullable,
                )
            }
            InList { expr: e, list, .. } => {
                let t = self.infer(e);
                let mut nullable = t.nullable;
                for item in list {
                    let it = self.infer(item);
                    self.check_comparable(&t, &it, "IN list");
                    nullable |= it.nullable;
                }
                Ty::new(Some(SqlColumnType::Boolean), nullable)
            }
            InSubquery { expr: e, query, .. } => {
                let t = self.infer(e);
                let sub = self.check_query(query);
                if let Some(first) = sub.first() {
                    self.check_comparable(
                        &t,
                        &Ty::new(first.sql_type, first.nullable),
                        "IN subquery",
                    );
                }
                Ty::new(Some(SqlColumnType::Boolean), t.nullable)
            }
            Exists { query, .. } => {
                self.check_query(query);
                Ty::new(Some(SqlColumnType::Boolean), false)
            }
            ScalarSubquery(query) => {
                let sub = self.check_query(query);
                let ty = sub.first().and_then(|c| c.sql_type);
                Ty::new(ty, true)
            }
            Quantified { expr: e, query, .. } => {
                let t = self.infer(e);
                let sub = self.check_query(query);
                if let Some(first) = sub.first() {
                    self.check_comparable(
                        &t,
                        &Ty::new(first.sql_type, first.nullable),
                        "quantified comparison",
                    );
                }
                Ty::new(Some(SqlColumnType::Boolean), t.nullable)
            }
            Like {
                expr: e,
                pattern,
                escape,
                ..
            } => {
                let t = self.infer(e);
                let p = self.infer(pattern);
                if let Some(x) = escape {
                    self.infer(x);
                }
                Ty::new(Some(SqlColumnType::Boolean), t.nullable || p.nullable)
            }
            Substring {
                expr: e,
                start,
                length,
            } => {
                let t = self.infer(e);
                let s = self.infer(start);
                let l = length.as_deref().map(|x| self.infer(x));
                Ty::new(
                    Some(SqlColumnType::Varchar),
                    t.nullable || s.nullable || l.is_some_and(|x| x.nullable),
                )
            }
            Trim {
                trim_chars,
                expr: e,
                ..
            } => {
                let t = self.infer(e);
                let chars = trim_chars.as_deref().map(|x| self.infer(x));
                Ty::new(
                    Some(SqlColumnType::Varchar),
                    t.nullable || chars.is_some_and(|x| x.nullable),
                )
            }
            Position { needle, haystack } => {
                let n = self.infer(needle);
                let h = self.infer(haystack);
                Ty::new(Some(SqlColumnType::Integer), n.nullable || h.nullable)
            }
        })
    }

    fn infer_scalar_fn(&mut self, name: &str, args: &[Ty]) -> Option<Ty> {
        let any_nullable = args.iter().any(|a| a.nullable);
        match name {
            "MOD" => {
                for a in args {
                    self.check_numeric(a, "MOD");
                }
                Some(Ty::new(Some(SqlColumnType::Integer), any_nullable))
            }
            "COALESCE" => Some(Ty::new(
                args.iter().find_map(|a| a.ty),
                args.iter().all(|a| a.nullable),
            )),
            "NULLIF" => Some(Ty::new(args.first().and_then(|a| a.ty), true)),
            _ => {
                // Mapped functions declare their return type in the
                // SQL→XQuery function map.
                let mapping = funcmap::lookup(name)?;
                let arg_types: Vec<Option<SqlColumnType>> = args.iter().map(|a| a.ty).collect();
                Some(Ty::new(
                    mapping.result_type.resolve(&arg_types),
                    any_nullable,
                ))
            }
        }
    }
}

fn type_str(t: Option<SqlColumnType>) -> &'static str {
    t.map_or("<unknown>", |t| t.sql_name())
}

fn kind_name(kind: &TExprKind) -> &'static str {
    use TExprKind::*;
    match kind {
        Column { .. } => "column",
        Literal(_) => "literal",
        Parameter(_) => "parameter",
        Neg(_) => "unary minus",
        Not(_) => "NOT",
        Arith { .. } => "arithmetic",
        Concat(..) => "concatenation",
        Compare { .. } => "comparison",
        And(..) => "AND",
        Or(..) => "OR",
        ScalarFn { .. } => "scalar function",
        Aggregate { .. } => "aggregate",
        Case { .. } => "CASE",
        Cast { .. } => "CAST",
        IsNull { .. } => "IS NULL",
        Between { .. } => "BETWEEN",
        InList { .. } => "IN list",
        InSubquery { .. } => "IN subquery",
        Exists { .. } => "EXISTS",
        ScalarSubquery(_) => "scalar subquery",
        Quantified { .. } => "quantified comparison",
        Like { .. } => "LIKE",
        Substring { .. } => "SUBSTRING",
        Trim { .. } => "TRIM",
        Position { .. } => "POSITION",
        Generated { .. } => "generated fragment",
    }
}

fn collect_schemas_body(body: &PreparedBody, out: &mut HashMap<String, TableSchema>) {
    match body {
        PreparedBody::Select(s) => {
            for rsn in &s.from {
                collect_schemas_rsn(rsn, out);
            }
            for item in &s.items {
                collect_schemas_expr(&item.expr, out);
            }
            if let Some(w) = &s.where_clause {
                collect_schemas_expr(w, out);
            }
            for k in &s.group_by {
                collect_schemas_expr(k, out);
            }
            if let Some(h) = &s.having {
                collect_schemas_expr(h, out);
            }
        }
        PreparedBody::SetOp { left, right, .. } => {
            collect_schemas_body(left, out);
            collect_schemas_body(right, out);
        }
    }
}

fn collect_schemas_rsn(rsn: &Rsn, out: &mut HashMap<String, TableSchema>) {
    match rsn {
        Rsn::Table { entry, .. } => {
            out.entry(entry.schema.namespace.clone())
                .or_insert_with(|| entry.schema.clone());
        }
        Rsn::Derived { query, .. } => collect_schemas_body(&query.body, out),
        Rsn::Join {
            left, right, on, ..
        } => {
            collect_schemas_rsn(left, out);
            collect_schemas_rsn(right, out);
            if let Some(on) = on {
                collect_schemas_expr(on, out);
            }
        }
    }
}

fn collect_schemas_expr(expr: &TExpr, out: &mut HashMap<String, TableSchema>) {
    use TExprKind::*;
    match &expr.kind {
        InSubquery { expr: e, query, .. } => {
            collect_schemas_expr(e, out);
            collect_schemas_body(&query.body, out);
        }
        Exists { query, .. } => collect_schemas_body(&query.body, out),
        ScalarSubquery(query) => collect_schemas_body(&query.body, out),
        Quantified { expr: e, query, .. } => {
            collect_schemas_expr(e, out);
            collect_schemas_body(&query.body, out);
        }
        _ => expr.visit_children(&mut |child| collect_schemas_expr(child, out)),
    }
}

// =====================================================================
// XQuery side: abstract interpretation of the generated program
// =====================================================================

/// Sequence cardinality: may the sequence be empty / hold more than one
/// item?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Card {
    opt: bool,
    many: bool,
}

impl Card {
    const ONE: Card = Card {
        opt: false,
        many: false,
    };

    /// Nesting/iteration: occurrences multiply.
    fn times(self, other: Card) -> Card {
        Card {
            opt: self.opt || other.opt,
            many: self.many || other.many,
        }
    }
}

/// `Option<Card>` algebra: `None` = unknown, which contaminates.
fn card_times(a: Option<Card>, b: Option<Card>) -> Option<Card> {
    Some(a?.times(b?))
}

fn card_join(a: Option<Card>, b: Option<Card>) -> Option<Card> {
    let (a, b) = (a?, b?);
    Some(Card {
        opt: a.opt || b.opt,
        many: a.many || b.many,
    })
}

/// The shape of one element kind.
#[derive(Debug, Clone, PartialEq)]
struct Shape {
    name: String,
    kind: ShapeKind,
}

#[derive(Debug, Clone, PartialEq)]
enum ShapeKind {
    /// Simple content carrying one atomic value of this type (a column
    /// element). `content_opt` is whether the enclosed value may be the
    /// empty sequence — a constructed element with empty content is an
    /// empty string, NOT an absent element, which is the corruption
    /// `T006` exists to catch.
    Leaf {
        ty: Option<XsType>,
        content_opt: Option<bool>,
    },
    /// Element children, in order (a `RECORD` / `RECORDSET`).
    Tree { children: Vec<Slot> },
    /// Content untracked.
    Opaque,
}

/// One child-element position inside a [`ShapeKind::Tree`].
#[derive(Debug, Clone, PartialEq)]
struct Slot {
    shape: Shape,
    /// Occurrences per parent; `None` = unknown.
    card: Option<Card>,
}

/// An abstract value.
#[derive(Debug, Clone, PartialEq)]
enum Abs {
    /// Statically the empty sequence.
    Empty,
    /// A sequence of atomic items.
    Atomic {
        ty: Option<XsType>,
        card: Option<Card>,
    },
    /// A sequence of elements, all of one shape.
    Elems { shape: Shape, card: Option<Card> },
    /// Untracked. Never produces a finding.
    Unknown,
}

impl Abs {
    fn card(&self) -> Option<Card> {
        match self {
            Abs::Empty => Some(Card {
                opt: true,
                many: false,
            }),
            Abs::Atomic { card, .. } | Abs::Elems { card, .. } => *card,
            Abs::Unknown => None,
        }
    }

    /// The atomized item type (`fn:data` semantics: a leaf element's
    /// typed value, an atomic itself).
    fn item_ty(&self) -> Option<XsType> {
        match self {
            Abs::Atomic { ty, .. } => *ty,
            Abs::Elems { shape, .. } => match &shape.kind {
                ShapeKind::Leaf { ty, .. } => *ty,
                _ => None,
            },
            Abs::Empty | Abs::Unknown => None,
        }
    }

    fn scaled(self, mult: Option<Card>) -> Abs {
        match self {
            Abs::Empty => Abs::Empty,
            Abs::Atomic { ty, card } => Abs::Atomic {
                ty,
                card: card_times(card, mult),
            },
            Abs::Elems { shape, card } => Abs::Elems {
                shape,
                card: card_times(card, mult),
            },
            Abs::Unknown => Abs::Unknown,
        }
    }
}

/// Branch join (`if`/`else`, sequence merging). Type disagreement
/// degrades to unknown rather than guessing a promotion: the two type
/// systems disagree on mixed-branch widening, and unknown never yields a
/// false finding.
fn join_abs(a: Abs, b: Abs) -> Abs {
    match (a, b) {
        (Abs::Empty, Abs::Empty) => Abs::Empty,
        (Abs::Empty, x) | (x, Abs::Empty) => match x {
            Abs::Atomic { ty, card } => Abs::Atomic {
                ty,
                card: card.map(|c| Card { opt: true, ..c }),
            },
            Abs::Elems { shape, card } => Abs::Elems {
                shape,
                card: card.map(|c| Card { opt: true, ..c }),
            },
            other => other,
        },
        (Abs::Atomic { ty: ta, card: ca }, Abs::Atomic { ty: tb, card: cb }) => Abs::Atomic {
            ty: if ta == tb { ta } else { None },
            card: card_join(ca, cb),
        },
        (
            Abs::Elems {
                shape: sa,
                card: ca,
            },
            Abs::Elems {
                shape: sb,
                card: cb,
            },
        ) => match join_shapes(sa, sb) {
            Some(shape) => Abs::Elems {
                shape,
                card: card_join(ca, cb),
            },
            None => Abs::Unknown,
        },
        _ => Abs::Unknown,
    }
}

/// Joins two element shapes of the same name. Tree children merge by
/// name (a child present on only one side becomes optional — this is how
/// outer-join padding surfaces as nullability).
fn join_shapes(a: Shape, b: Shape) -> Option<Shape> {
    if a.name != b.name {
        return None;
    }
    let kind = match (a.kind, b.kind) {
        (
            ShapeKind::Leaf {
                ty: ta,
                content_opt: oa,
            },
            ShapeKind::Leaf {
                ty: tb,
                content_opt: ob,
            },
        ) => ShapeKind::Leaf {
            ty: if ta == tb { ta } else { None },
            content_opt: match (oa, ob) {
                (Some(x), Some(y)) => Some(x || y),
                _ => None,
            },
        },
        (ShapeKind::Tree { children: ca }, ShapeKind::Tree { children: cb }) => {
            let mut merged: Vec<Slot> = Vec::with_capacity(ca.len().max(cb.len()));
            let mut used_b = vec![false; cb.len()];
            for slot_a in ca {
                if let Some(i) = cb
                    .iter()
                    .position(|s| s.shape.name == slot_a.shape.name)
                    .filter(|&i| !used_b[i])
                {
                    used_b[i] = true;
                    let slot_b = &cb[i];
                    let shape = join_shapes(slot_a.shape, slot_b.shape.clone())
                        .unwrap_or_else(|| unreachable!("names match"));
                    merged.push(Slot {
                        shape,
                        card: card_join(slot_a.card, slot_b.card),
                    });
                } else {
                    merged.push(Slot {
                        card: slot_a.card.map(|c| Card { opt: true, ..c }),
                        shape: slot_a.shape,
                    });
                }
            }
            for (i, slot_b) in cb.into_iter().enumerate() {
                if !used_b[i] {
                    merged.push(Slot {
                        card: slot_b.card.map(|c| Card { opt: true, ..c }),
                        shape: slot_b.shape,
                    });
                }
            }
            ShapeKind::Tree { children: merged }
        }
        _ => ShapeKind::Opaque,
    };
    Some(Shape { name: a.name, kind })
}

struct XqInterp<'a> {
    /// `prefix → namespace` from the program prolog.
    prefixes: HashMap<&'a str, &'a str>,
    /// `namespace → schema` from the prepared IR's table entries.
    schemas: &'a HashMap<String, TableSchema>,
    /// Lexical bindings, innermost last.
    env: Vec<(String, Abs)>,
    /// The transport wrapper's `let $actualQuery := ...` binding, if the
    /// program has one — the result rows before text serialization.
    captured_actual: Option<Abs>,
}

impl<'a> XqInterp<'a> {
    fn new(program: &'a Program, schemas: &'a HashMap<String, TableSchema>) -> XqInterp<'a> {
        XqInterp {
            prefixes: program
                .imports
                .iter()
                .map(|i| (i.prefix.as_str(), i.namespace.as_str()))
                .collect(),
            schemas,
            env: Vec::new(),
            captured_actual: None,
        }
    }

    fn lookup(&self, var: &str) -> Abs {
        for (name, value) in self.env.iter().rev() {
            if name == var {
                return value.clone();
            }
        }
        Abs::Unknown
    }

    fn eval(&mut self, expr: &Expr) -> Abs {
        match expr {
            Expr::Literal(a) => Abs::Atomic {
                ty: Some(a.xs_type()),
                card: Some(Card::ONE),
            },
            Expr::EmptySequence => Abs::Empty,
            Expr::Sequence(items) => self.eval_sequence(items),
            Expr::VarRef(name) => self.lookup(name),
            Expr::ContextItem => Abs::Unknown,
            Expr::FunctionCall { name, args } => self.eval_call(name, args),
            Expr::Path { start, steps } => {
                let mut value = match &**start {
                    PathStart::Var(v) => self.lookup(v),
                    PathStart::Expr(e) => self.eval(e),
                    PathStart::Context => Abs::Unknown,
                };
                for step in steps {
                    value = navigate(value, &step.test);
                    if !step.predicates.is_empty() {
                        value = filtered(value);
                    }
                }
                value
            }
            Expr::Filter { base, .. } => filtered(self.eval(base)),
            Expr::Flwor(f) => self.eval_flwor(f),
            Expr::If { then, els, .. } => {
                let t = self.eval(then);
                let e = self.eval(els);
                join_abs(t, e)
            }
            Expr::Or(..) | Expr::And(..) | Expr::GeneralComp { .. } | Expr::ValueComp { .. } => {
                Abs::Atomic {
                    ty: Some(XsType::Boolean),
                    card: Some(Card::ONE),
                }
            }
            Expr::Quantified { .. } => Abs::Atomic {
                ty: Some(XsType::Boolean),
                card: Some(Card::ONE),
            },
            Expr::Arith { op, left, right } => {
                let l = self.eval(left);
                let r = self.eval(right);
                let ty = arith_ty(*op, l.item_ty(), r.item_ty());
                // Arithmetic over the empty sequence is empty; over
                // singletons it is a singleton.
                let card = card_times(l.card(), r.card()).map(|c| Card { many: false, ..c });
                Abs::Atomic { ty, card }
            }
            Expr::UnaryMinus(inner) => {
                let v = self.eval(inner);
                Abs::Atomic {
                    ty: v.item_ty(),
                    card: v.card(),
                }
            }
            Expr::Element(ctor) => self.eval_element(ctor),
        }
    }

    fn eval_sequence(&mut self, items: &[Expr]) -> Abs {
        let values: Vec<Abs> = items
            .iter()
            .map(|e| self.eval(e))
            .filter(|v| *v != Abs::Empty)
            .collect();
        match values.len() {
            0 => Abs::Empty,
            1 => values.into_iter().next().unwrap(),
            _ => {
                let mut iter = values.into_iter();
                let mut acc = iter.next().unwrap();
                for next in iter {
                    // Concatenation: the result holds both sides' items.
                    acc = match join_abs(acc, next) {
                        Abs::Atomic { ty, card } => Abs::Atomic {
                            ty,
                            card: card.map(|c| Card { many: true, ..c }),
                        },
                        Abs::Elems { shape, card } => Abs::Elems {
                            shape,
                            card: card.map(|c| Card { many: true, ..c }),
                        },
                        other => other,
                    };
                }
                acc
            }
        }
    }

    fn eval_call(&mut self, name: &str, args: &[Expr]) -> Abs {
        // `xs:*` constructor cast.
        if name.starts_with("xs:") {
            if let Some(ty) = XsType::from_xs_name(name) {
                let arg = args.first().map(|a| self.eval(a));
                let card = arg
                    .as_ref()
                    .and_then(|a| a.card())
                    .map(|c| Card { many: false, ..c });
                return Abs::Atomic { ty: Some(ty), card };
            }
            return Abs::Unknown;
        }
        // A data-service function call: rows per the imported schema.
        if let Some((prefix, _)) = name.split_once(':') {
            if let Some(namespace) = self.prefixes.get(prefix) {
                if let Some(schema) = self.schemas.get(*namespace) {
                    return table_rows(schema);
                }
                // Declared import without collected schema (a table the
                // IR walk missed): shape unknown.
                return Abs::Unknown;
            }
        }
        // `fn-bea:if-empty` is a value-level join, not a plain builtin.
        if name == "fn-bea:if-empty" && args.len() == 2 {
            let a = self.eval(&args[0]);
            let b = self.eval(&args[1]);
            let ty = match (a.item_ty(), b.item_ty()) {
                (Some(x), Some(y)) if x == y => Some(x),
                _ => None,
            };
            let card = match (a.card(), b.card()) {
                (Some(ca), Some(cb)) => Some(Card {
                    // Empty only when the value is empty *and* the
                    // fallback is empty.
                    opt: ca.opt && cb.opt,
                    many: ca.many || cb.many,
                }),
                _ => None,
            };
            return Abs::Atomic { ty, card };
        }
        let values: Vec<Abs> = args.iter().map(|a| self.eval(a)).collect();
        match builtin_return_type(name) {
            Some(BuiltinReturn::Fixed(ty)) => Abs::Atomic {
                ty: Some(ty),
                card: fixed_builtin_card(name, &values),
            },
            Some(BuiltinReturn::OfArg) => self.of_arg_call(name, &values),
            Some(BuiltinReturn::Average) => {
                let arg = values.first();
                let ty = match arg.and_then(|a| a.item_ty()) {
                    Some(XsType::Double) => Some(XsType::Double),
                    Some(XsType::Integer) | Some(XsType::Decimal) => Some(XsType::Decimal),
                    _ => None,
                };
                Abs::Atomic {
                    ty,
                    card: aggregate_card(arg),
                }
            }
            None => Abs::Unknown,
        }
    }

    fn of_arg_call(&mut self, name: &str, values: &[Abs]) -> Abs {
        let arg = values.first();
        match name {
            // Record-sequence combinators: elements pass through.
            "fn-bea:distinct-records"
            | "fn-bea:intersect-all-records"
            | "fn-bea:except-all-records" => {
                let mut shapes = values.iter().filter_map(|v| match v {
                    Abs::Elems { shape, .. } => Some(shape.clone()),
                    _ => None,
                });
                let Some(first) = shapes.next() else {
                    return Abs::Unknown;
                };
                let mut acc = Some(first);
                for s in shapes {
                    acc = acc.and_then(|a| join_shapes(a, s));
                }
                match acc {
                    Some(shape) => Abs::Elems {
                        shape,
                        card: Some(Card {
                            opt: true,
                            many: true,
                        }),
                    },
                    None => Abs::Unknown,
                }
            }
            "fn:data" => match arg {
                Some(v) => Abs::Atomic {
                    ty: v.item_ty(),
                    card: v.card(),
                },
                None => Abs::Unknown,
            },
            "fn:zero-or-one" => Abs::Atomic {
                ty: arg.and_then(|a| a.item_ty()),
                card: arg.and_then(|a| a.card()).map(|c| Card {
                    opt: c.opt || c.many,
                    many: false,
                }),
            },
            // `fn:sum(())` is 0 — always exactly one item.
            "fn:sum" => Abs::Atomic {
                ty: arg.and_then(|a| a.item_ty()),
                card: Some(Card::ONE),
            },
            "fn:min" | "fn:max" => Abs::Atomic {
                ty: arg.and_then(|a| a.item_ty()),
                card: aggregate_card(arg),
            },
            "fn:distinct-values" => Abs::Atomic {
                ty: arg.and_then(|a| a.item_ty()),
                card: arg.and_then(|a| a.card()),
            },
            // Numeric unaries: empty in, empty out.
            _ => Abs::Atomic {
                ty: arg.and_then(|a| a.item_ty()),
                card: arg
                    .and_then(|a| a.card())
                    .map(|c| Card { many: false, ..c }),
            },
        }
    }

    fn eval_flwor(&mut self, f: &Flwor) -> Abs {
        let depth = self.env.len();
        let mut mult = Some(Card::ONE);
        for clause in &f.clauses {
            match clause {
                Clause::For { var, source } => {
                    let s = self.eval(source);
                    let item = match &s {
                        Abs::Atomic { ty, .. } => Abs::Atomic {
                            ty: *ty,
                            card: Some(Card::ONE),
                        },
                        Abs::Elems { shape, .. } => Abs::Elems {
                            shape: shape.clone(),
                            card: Some(Card::ONE),
                        },
                        Abs::Empty => Abs::Empty,
                        Abs::Unknown => Abs::Unknown,
                    };
                    self.env.push((var.clone(), item));
                    mult = card_times(mult, s.card());
                }
                Clause::Let { var, value } => {
                    let v = self.eval(value);
                    if var == "actualQuery" {
                        self.captured_actual = Some(v.clone());
                    }
                    self.env.push((var.clone(), v));
                }
                Clause::Where(_) => {
                    // A filter can drop any tuple.
                    mult = mult.map(|c| Card { opt: true, ..c });
                }
                Clause::GroupBy(g) => {
                    let source = self.lookup(&g.source_var);
                    let partition = match source {
                        // Each output group holds at least one tuple.
                        Abs::Elems { shape, .. } => Abs::Elems {
                            shape,
                            card: Some(Card {
                                opt: false,
                                many: true,
                            }),
                        },
                        Abs::Atomic { ty, .. } => Abs::Atomic {
                            ty,
                            card: Some(Card {
                                opt: false,
                                many: true,
                            }),
                        },
                        other => other,
                    };
                    let keys: Vec<(String, Abs)> = g
                        .keys
                        .iter()
                        .map(|(expr, var)| (var.clone(), self.eval(expr)))
                        .collect();
                    self.env.push((g.partition_var.clone(), partition));
                    for (var, value) in keys {
                        self.env.push((var, value));
                    }
                    // Grouping merges tuples: zero groups exactly when
                    // the stream was empty, so multiplicity carries over.
                }
                Clause::OrderBy(_) => {}
            }
        }
        let ret = self.eval(&f.ret);
        self.env.truncate(depth);
        ret.scaled(mult)
    }

    fn eval_element(&mut self, ctor: &ElementCtor) -> Abs {
        let mut slots: Vec<Slot> = Vec::new();
        let mut single_enclosed: Option<Abs> = None;
        let mut pieces = 0usize;
        let mut opaque = false;
        for content in &ctor.content {
            match content {
                Content::Text(t) if t.trim().is_empty() => {}
                Content::Text(_) => opaque = true,
                Content::Element(child) => {
                    pieces += 1;
                    match self.eval_element(child) {
                        Abs::Elems { shape, .. } => slots.push(Slot {
                            shape,
                            card: Some(Card::ONE),
                        }),
                        _ => opaque = true,
                    }
                }
                Content::Enclosed(expr) => {
                    pieces += 1;
                    let v = self.eval(expr);
                    match &v {
                        Abs::Elems { shape, card } => slots.push(Slot {
                            shape: shape.clone(),
                            card: *card,
                        }),
                        Abs::Empty => {}
                        Abs::Atomic { .. } => {
                            single_enclosed = Some(v);
                        }
                        Abs::Unknown => opaque = true,
                    }
                }
            }
        }
        let kind = if opaque {
            ShapeKind::Opaque
        } else if let Some(atomic) = single_enclosed {
            if pieces == 1 {
                // `<COL>{value}</COL>` — a simple-typed leaf. The value's
                // emptiness does NOT make the element optional: an empty
                // *content* is still a constructed element (which is
                // exactly the NULL-vs-absent distinction `T006` guards),
                // so the emptiness is recorded on the content instead.
                ShapeKind::Leaf {
                    ty: atomic.item_ty(),
                    content_opt: atomic.card().map(|c| c.opt || c.many),
                }
            } else {
                ShapeKind::Opaque
            }
        } else {
            ShapeKind::Tree { children: slots }
        };
        Abs::Elems {
            shape: Shape {
                name: ctor.name.clone(),
                kind,
            },
            card: Some(Card::ONE),
        }
    }
}

/// Rows of a data-service function: the row element with one leaf slot
/// per declared column (`minOccurs="0"` for nullable — SQL NULL is an
/// absent element).
fn table_rows(schema: &TableSchema) -> Abs {
    Abs::Elems {
        shape: Shape {
            name: schema.row_element.clone(),
            kind: ShapeKind::Tree {
                children: schema
                    .columns
                    .iter()
                    .map(|c| Slot {
                        shape: Shape {
                            name: c.name.clone(),
                            kind: ShapeKind::Leaf {
                                ty: Some(c.sql_type.to_xs()),
                                // A present source element always carries
                                // its value; NULL is the *absent* element.
                                content_opt: Some(false),
                            },
                        },
                        card: Some(Card {
                            opt: c.nullable,
                            many: false,
                        }),
                    })
                    .collect(),
            },
        },
        card: Some(Card {
            opt: true,
            many: true,
        }),
    }
}

fn navigate(value: Abs, test: &NodeTest) -> Abs {
    let NodeTest::Name(name) = test else {
        return Abs::Unknown;
    };
    match value {
        Abs::Elems { shape, card } => match shape.kind {
            ShapeKind::Tree { children } => {
                let matches: Vec<Slot> = children
                    .into_iter()
                    .filter(|s| &s.shape.name == name)
                    .collect();
                match matches.len() {
                    0 => Abs::Empty,
                    1 => {
                        let slot = matches.into_iter().next().unwrap();
                        Abs::Elems {
                            shape: slot.shape,
                            card: card_times(card, slot.card),
                        }
                    }
                    _ => {
                        // Duplicate names: every match contributes.
                        let mut iter = matches.into_iter();
                        let first = iter.next().unwrap();
                        let mut shape = Some(first.shape);
                        for slot in iter {
                            shape = shape.and_then(|s| join_shapes(s, slot.shape));
                        }
                        match shape {
                            Some(shape) => Abs::Elems {
                                shape,
                                card: card.map(|c| Card { many: true, ..c }),
                            },
                            None => Abs::Unknown,
                        }
                    }
                }
            }
            ShapeKind::Leaf { .. } => Abs::Empty,
            ShapeKind::Opaque => Abs::Unknown,
        },
        Abs::Empty => Abs::Empty,
        Abs::Atomic { .. } => Abs::Empty,
        Abs::Unknown => Abs::Unknown,
    }
}

fn filtered(value: Abs) -> Abs {
    match value {
        Abs::Atomic { ty, card } => Abs::Atomic {
            ty,
            card: card.map(|c| Card { opt: true, ..c }),
        },
        Abs::Elems { shape, card } => Abs::Elems {
            shape,
            card: card.map(|c| Card { opt: true, ..c }),
        },
        other => other,
    }
}

fn arith_ty(
    op: aldsp_xquery::ast::ArithOp,
    l: Option<XsType>,
    r: Option<XsType>,
) -> Option<XsType> {
    use aldsp_xquery::ast::ArithOp;
    let (l, r) = (l?, r?);
    let numeric = |t: XsType| matches!(t, XsType::Integer | XsType::Decimal | XsType::Double);
    if !numeric(l) || !numeric(r) {
        return None;
    }
    Some(match op {
        ArithOp::IDiv => XsType::Integer,
        ArithOp::Div => {
            if l == XsType::Double || r == XsType::Double {
                XsType::Double
            } else {
                // Integer `div` yields xs:decimal (why the generator
                // wraps SQL integer division in `xs:integer(... idiv)`).
                XsType::Decimal
            }
        }
        ArithOp::Mod | ArithOp::Add | ArithOp::Sub | ArithOp::Mul => {
            if l == XsType::Double || r == XsType::Double {
                XsType::Double
            } else if l == XsType::Decimal || r == XsType::Decimal {
                XsType::Decimal
            } else {
                XsType::Integer
            }
        }
    })
}

/// Cardinality for `Fixed`-return builtins: the total functions coerce
/// the empty sequence to a default and always yield one item; the
/// `fn-bea:` serialization helpers propagate emptiness from their first
/// argument.
fn fixed_builtin_card(name: &str, args: &[Abs]) -> Option<Card> {
    const TOTAL: &[&str] = &[
        "fn:string",
        "fn:concat",
        "fn:string-join",
        "fn:upper-case",
        "fn:lower-case",
        "fn:substring",
        "fn:string-length",
        "fn:count",
        "fn:empty",
        "fn:exists",
        "fn:not",
        "fn:boolean",
        "fn:true",
        "fn:false",
        "fn:contains",
        "fn:starts-with",
        "fn:ends-with",
    ];
    if TOTAL.contains(&name) {
        return Some(Card::ONE);
    }
    // Empty-propagating: empty when any argument is empty.
    let mut opt = false;
    for a in args {
        match a.card() {
            Some(c) => opt |= c.opt,
            None => return None,
        }
    }
    Some(Card { opt, many: false })
}

/// Cardinality of `fn:min`/`fn:max`/`fn:avg`: empty exactly when the
/// input is (and the input may be empty whenever it is not known to be a
/// non-empty singleton-or-more).
fn aggregate_card(arg: Option<&Abs>) -> Option<Card> {
    arg?.card().map(|c| Card {
        opt: c.opt,
        many: false,
    })
}

// =====================================================================
// The diff
// =====================================================================

/// What the generated query yields for one output column.
#[derive(Debug, Clone, PartialEq)]
struct XqColumn {
    name: String,
    ty: Option<XsType>,
    card: Option<Card>,
    /// Whether a *constructed* element's content may be empty.
    content_opt: Option<bool>,
}

/// Extracts the per-column typing from the abstract result value: a
/// `RECORDSET` element holding `RECORD` rows.
fn record_columns(value: &Abs) -> Option<Vec<XqColumn>> {
    let Abs::Elems { shape, .. } = value else {
        return None;
    };
    let record = if shape.name == "RECORDSET" {
        let ShapeKind::Tree { children } = &shape.kind else {
            return None;
        };
        let slot = children.iter().find(|s| s.shape.name == "RECORD")?;
        &slot.shape
    } else if shape.name == "RECORD" {
        shape
    } else {
        return None;
    };
    let ShapeKind::Tree { children } = &record.kind else {
        return None;
    };
    Some(
        children
            .iter()
            .map(|slot| XqColumn {
                name: slot.shape.name.clone(),
                ty: match &slot.shape.kind {
                    ShapeKind::Leaf { ty, .. } => *ty,
                    _ => None,
                },
                card: slot.card,
                content_opt: match &slot.shape.kind {
                    ShapeKind::Leaf { content_opt, .. } => *content_opt,
                    _ => None,
                },
            })
            .collect(),
    )
}

fn diff_columns(inferred: &[InferredColumn], xq: &[XqColumn]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if inferred.len() != xq.len() || inferred.iter().zip(xq).any(|(i, x)| i.name != x.name) {
        let want: Vec<&str> = inferred.iter().map(|c| c.name.as_str()).collect();
        let got: Vec<&str> = xq.iter().map(|c| c.name.as_str()).collect();
        diags.push(Diagnostic::new(
            DiagCode::T004,
            format!(
                "RECORD shape mismatch: SQL output is [{}] but the generated RECORD holds [{}]",
                want.join(", "),
                got.join(", ")
            ),
        ));
        return diags;
    }
    for (sql, col) in inferred.iter().zip(xq) {
        if let Some(card) = col.card {
            if card.many {
                diags.push(Diagnostic::new(
                    DiagCode::T007,
                    format!("column {} may yield more than one value per row", col.name),
                ));
                continue;
            }
            if card.opt && !sql.nullable {
                // An element that may be absent for a NOT NULL column:
                // absence decodes as NULL where NULL is forbidden.
                diags.push(Diagnostic::new(
                    DiagCode::T006,
                    format!(
                        "column {}: SQL declares NOT NULL but the generated element may be absent",
                        col.name
                    ),
                ));
            } else if !card.opt && col.content_opt == Some(true) {
                // An always-constructed element whose content may be the
                // empty sequence: a NULL (or empty aggregate) serializes
                // as an empty string instead of an absent element. The
                // benign converse — SQL conservatively nullable, element
                // provably always present with a value (e.g. MAX over a
                // NOT NULL column in an explicit GROUP BY) — is NOT a
                // finding: the generation is merely more precise than
                // the metadata.
                diags.push(Diagnostic::new(
                    DiagCode::T006,
                    format!(
                        "column {}: element is always constructed but its content may be empty \
                         (NULL would become an empty string, not an absent element)",
                        col.name
                    ),
                ));
            }
        }
        if let (Some(sql_ty), Some(xq_ty)) = (sql.sql_type, col.ty) {
            if sql_ty.to_xs() != xq_ty {
                diags.push(Diagnostic::new(
                    DiagCode::T005,
                    format!(
                        "column {}: SQL type {} (xs class {:?}) but the generated value has xs class {:?}",
                        col.name,
                        sql_ty.sql_name(),
                        sql_ty.to_xs(),
                        xq_ty
                    ),
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_is_monotone_and_idempotent() {
        use SqlColumnType as T;
        assert_eq!(promote(T::Integer, T::Integer), T::Integer);
        assert_eq!(promote(T::Smallint, T::Bigint), T::Bigint);
        assert_eq!(promote(T::Integer, T::Decimal), T::Decimal);
        assert_eq!(promote(T::Decimal, T::Double), T::Double);
        assert_eq!(promote(T::Double, T::Integer), T::Double);
        // Non-numeric mixes keep the left type (set-op metadata rule).
        assert_eq!(promote(T::Varchar, T::Integer), T::Varchar);
    }

    #[test]
    fn literal_typing_follows_sql92() {
        assert_eq!(
            literal_ty(&Literal::Integer(1)),
            Ty::new(Some(SqlColumnType::Integer), false)
        );
        assert_eq!(literal_ty(&Literal::Null), Ty::new(None, true));
    }

    #[test]
    fn join_of_uneven_trees_marks_missing_children_optional() {
        let leaf = |name: &str| Shape {
            name: name.into(),
            kind: ShapeKind::Leaf {
                ty: Some(XsType::Integer),
                content_opt: Some(false),
            },
        };
        let tree = |slots: Vec<Slot>| Shape {
            name: "RECORD".into(),
            kind: ShapeKind::Tree { children: slots },
        };
        let one = Some(Card::ONE);
        let a = tree(vec![Slot {
            shape: leaf("A"),
            card: one,
        }]);
        let b = tree(vec![
            Slot {
                shape: leaf("A"),
                card: one,
            },
            Slot {
                shape: leaf("B"),
                card: one,
            },
        ]);
        let joined = join_shapes(a, b).unwrap();
        let ShapeKind::Tree { children } = joined.kind else {
            panic!()
        };
        assert_eq!(children.len(), 2);
        // A present on both sides: still required.
        assert_eq!(children[0].card, Some(Card::ONE));
        // B present on one side only: optional (outer-join padding).
        assert_eq!(
            children[1].card,
            Some(Card {
                opt: true,
                many: false
            })
        );
    }

    #[test]
    fn xquery_arith_typing_matches_the_generator_assumptions() {
        use aldsp_xquery::ast::ArithOp;
        // Integer div yields decimal — the reason stage 3 emits
        // `xs:integer((l idiv r))` for SQL integer division.
        assert_eq!(
            arith_ty(ArithOp::Div, Some(XsType::Integer), Some(XsType::Integer)),
            Some(XsType::Decimal)
        );
        assert_eq!(
            arith_ty(ArithOp::IDiv, Some(XsType::Integer), Some(XsType::Integer)),
            Some(XsType::Integer)
        );
        assert_eq!(
            arith_ty(ArithOp::Add, Some(XsType::Integer), Some(XsType::Double)),
            Some(XsType::Double)
        );
        assert_eq!(
            arith_ty(ArithOp::Add, Some(XsType::String), Some(XsType::Integer)),
            None
        );
    }
}
