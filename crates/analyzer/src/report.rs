//! The combined five-layer report, plus the end-to-end entry point the
//! `analyze` bin and the workload harnesses use.

use crate::cost::{self, CostOptions, CostReport};
use crate::diag::{Diagnostic, Severity};
use crate::validate::{self, ValidateOptions};
use crate::{ir_check, ty, xq_lint};
use aldsp_catalog::MetadataApi;
use aldsp_core::ir::PreparedQuery;
use aldsp_core::{stage1, stage2, stage3, wrapper, TranslateError, TranslationOptions, Transport};

/// All five analysis layers over one translation.
#[derive(Debug, Clone, Default)]
pub struct TranslationReport {
    /// Layer-1 findings (IR invariants, `A0xx`).
    pub ir: Vec<Diagnostic>,
    /// Layer-2 findings (XQuery lint, `A1xx`).
    pub xquery: Vec<Diagnostic>,
    /// Layer-3 findings (type flow + translation type diff, `T0xx`).
    pub types: Vec<Diagnostic>,
    /// Layer-5 findings (bounded equivalence validation, `V0xx`).
    /// Empty unless validation was requested
    /// ([`analyze_sql_validated`] / [`validate::check_equivalence`]).
    pub validation: Vec<Diagnostic>,
    /// Layer-4 result: cardinality/cost estimates and the advisory
    /// `P0xx` findings.
    pub cost: CostReport,
}

impl TranslationReport {
    /// True when no finding of [`Severity::Error`] is present — the
    /// correctness layers (`A`/`T` codes) and, when validation ran, the
    /// `V` codes. Layer-4 `P` findings are advisory or warning — a
    /// `P`-flagged query still computes the right answer — so they
    /// deliberately do not dirty this predicate (chaos workloads run
    /// cartesian stressors on purpose). Use
    /// [`TranslationReport::is_performance_clean`] or
    /// [`TranslationReport::all`] when `P` findings should count.
    pub fn is_clean(&self) -> bool {
        self.all().all(|d| d.severity() != Severity::Error)
    }

    /// True when there are no warning/advisory findings either (today:
    /// layer 4's performance lints).
    pub fn is_performance_clean(&self) -> bool {
        !self.all().any(|d| d.severity() != Severity::Error)
    }

    /// All findings, layer 1 first, advisory layer-4 findings last.
    pub fn all(&self) -> impl Iterator<Item = &Diagnostic> {
        self.ir
            .iter()
            .chain(self.xquery.iter())
            .chain(self.types.iter())
            .chain(self.validation.iter())
            .chain(self.cost.diagnostics.iter())
    }

    /// One line per finding.
    pub fn render(&self) -> String {
        self.all()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Analyzes one already-produced translation: layer 1 over the prepared
/// IR, layer 2 over the generated query text (wrapped or unwrapped),
/// layer 3 re-inferring types on both sides of the translation and
/// diffing them, layer 4 estimating cardinality/cost under
/// `cost_options`. Returns the report together with the SQL-side
/// inferred output typing.
pub fn analyze_translation_typed_with(
    prepared: &PreparedQuery,
    xquery_text: &str,
    cost_options: &CostOptions,
) -> (TranslationReport, Vec<ty::InferredColumn>) {
    let ir = ir_check::check_prepared(prepared);
    let xquery = xq_lint::lint_text(xquery_text);
    let flow = ty::check_types(prepared);
    let mut types = flow.diagnostics;
    // The translation diff (and layer 4's FLWOR fuel walk) need a
    // parseable program; when the text does not parse, layer 2 already
    // reports `A100` and both are moot.
    let program = aldsp_xquery::parse_program(xquery_text).ok();
    if let Some(program) = &program {
        types.extend(ty::check_translation(prepared, program, &flow.columns));
    }
    let cost = cost::check_cost(prepared, program.as_ref(), cost_options);
    (
        TranslationReport {
            ir,
            xquery,
            types,
            validation: Vec::new(),
            cost,
        },
        flow.columns,
    )
}

/// [`analyze_translation_typed_with`] under default (stats-less) cost
/// options.
pub fn analyze_translation_typed(
    prepared: &PreparedQuery,
    xquery_text: &str,
) -> (TranslationReport, Vec<ty::InferredColumn>) {
    analyze_translation_typed_with(prepared, xquery_text, &CostOptions::default())
}

/// [`analyze_translation_typed`] without the typing (the original
/// two-argument surface, kept for the debug validator and callers that
/// only want the findings).
pub fn analyze_translation(prepared: &PreparedQuery, xquery_text: &str) -> TranslationReport {
    analyze_translation_typed(prepared, xquery_text).0
}

/// An end-to-end analysis: the translation plus its report.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The generated query text, per the requested transport.
    pub xquery: String,
    /// The four-layer report.
    pub report: TranslationReport,
    /// The SQL-side inferred output typing (layer 3's view of the
    /// result-set metadata).
    pub typing: Vec<ty::InferredColumn>,
}

/// Translates `sql` (stage 1 → 2 → 3 → transport wrapper) and analyzes
/// both the prepared IR and the generated text, estimating cost under
/// `cost_options`. Translation failures are returned as-is — they are
/// the translator rejecting the statement, not analyzer findings.
pub fn analyze_sql_with<M: MetadataApi>(
    sql: &str,
    metadata: &M,
    options: TranslationOptions,
    cost_options: &CostOptions,
) -> Result<Analysis, TranslateError> {
    let parsed = stage1::parse(sql)?;
    let prepared = stage2::prepare(&parsed, metadata)?;
    let generated = stage3::generate(&prepared)?;
    let xquery = match options.transport {
        Transport::Xml => generated.into_query_text(),
        Transport::DelimitedText => wrapper::wrap_delimited(generated, &prepared),
    };
    let (report, typing) = analyze_translation_typed_with(&prepared, &xquery, cost_options);
    Ok(Analysis {
        xquery,
        report,
        typing,
    })
}

/// [`analyze_sql_with`] under default (stats-less) cost options.
pub fn analyze_sql<M: MetadataApi>(
    sql: &str,
    metadata: &M,
    options: TranslationOptions,
) -> Result<Analysis, TranslateError> {
    analyze_sql_with(sql, metadata, options, &CostOptions::default())
}

/// [`analyze_sql_with`] plus layer 5: runs the bounded equivalence
/// validator over the translation under `validate_options`, filling
/// [`TranslationReport::validation`]. `V` findings are hard errors
/// ([`TranslationReport::is_clean`] goes false), because an observed
/// inequivalence on a concrete witness database is a miscompilation,
/// not advice.
pub fn analyze_sql_validated<M: MetadataApi>(
    sql: &str,
    metadata: &M,
    options: TranslationOptions,
    cost_options: &CostOptions,
    validate_options: &ValidateOptions,
) -> Result<Analysis, TranslateError> {
    let parsed = stage1::parse(sql)?;
    let prepared = stage2::prepare(&parsed, metadata)?;
    let generated = stage3::generate(&prepared)?;
    let xquery = match options.transport {
        Transport::Xml => generated.into_query_text(),
        Transport::DelimitedText => wrapper::wrap_delimited(generated, &prepared),
    };
    let (mut report, typing) = analyze_translation_typed_with(&prepared, &xquery, cost_options);
    report.validation = validate::check_equivalence(&prepared, &xquery, validate_options);
    Ok(Analysis {
        xquery,
        report,
        typing,
    })
}
