//! The combined two-layer report, plus the end-to-end entry point the
//! `analyze` bin and the workload harnesses use.

use crate::diag::Diagnostic;
use crate::{ir_check, xq_lint};
use aldsp_catalog::MetadataApi;
use aldsp_core::ir::PreparedQuery;
use aldsp_core::{stage1, stage2, stage3, wrapper, TranslateError, TranslationOptions, Transport};

/// Both analysis layers over one translation.
#[derive(Debug, Clone, Default)]
pub struct TranslationReport {
    /// Layer-1 findings (IR invariants, `A0xx`).
    pub ir: Vec<Diagnostic>,
    /// Layer-2 findings (XQuery lint, `A1xx`).
    pub xquery: Vec<Diagnostic>,
}

impl TranslationReport {
    /// True when neither layer found anything.
    pub fn is_clean(&self) -> bool {
        self.ir.is_empty() && self.xquery.is_empty()
    }

    /// All findings, layer 1 first.
    pub fn all(&self) -> impl Iterator<Item = &Diagnostic> {
        self.ir.iter().chain(self.xquery.iter())
    }

    /// One line per finding.
    pub fn render(&self) -> String {
        self.all()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Analyzes one already-produced translation: layer 1 over the prepared
/// IR, layer 2 over the generated query text (wrapped or unwrapped).
pub fn analyze_translation(prepared: &PreparedQuery, xquery_text: &str) -> TranslationReport {
    TranslationReport {
        ir: ir_check::check_prepared(prepared),
        xquery: xq_lint::lint_text(xquery_text),
    }
}

/// An end-to-end analysis: the translation plus its report.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The generated query text, per the requested transport.
    pub xquery: String,
    /// The two-layer report.
    pub report: TranslationReport,
}

/// Translates `sql` (stage 1 → 2 → 3 → transport wrapper) and analyzes
/// both the prepared IR and the generated text. Translation failures are
/// returned as-is — they are the translator rejecting the statement, not
/// analyzer findings.
pub fn analyze_sql<M: MetadataApi>(
    sql: &str,
    metadata: &M,
    options: TranslationOptions,
) -> Result<Analysis, TranslateError> {
    let parsed = stage1::parse(sql)?;
    let prepared = stage2::prepare(&parsed, metadata)?;
    let generated = stage3::generate(&prepared)?;
    let xquery = match options.transport {
        Transport::Xml => generated.into_query_text(),
        Transport::DelimitedText => wrapper::wrap_delimited(generated, &prepared),
    };
    let report = analyze_translation(&prepared, &xquery);
    Ok(Analysis { xquery, report })
}
