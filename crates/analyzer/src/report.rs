//! The combined three-layer report, plus the end-to-end entry point the
//! `analyze` bin and the workload harnesses use.

use crate::diag::Diagnostic;
use crate::{ir_check, ty, xq_lint};
use aldsp_catalog::MetadataApi;
use aldsp_core::ir::PreparedQuery;
use aldsp_core::{stage1, stage2, stage3, wrapper, TranslateError, TranslationOptions, Transport};

/// All three analysis layers over one translation.
#[derive(Debug, Clone, Default)]
pub struct TranslationReport {
    /// Layer-1 findings (IR invariants, `A0xx`).
    pub ir: Vec<Diagnostic>,
    /// Layer-2 findings (XQuery lint, `A1xx`).
    pub xquery: Vec<Diagnostic>,
    /// Layer-3 findings (type flow + translation type diff, `T0xx`).
    pub types: Vec<Diagnostic>,
}

impl TranslationReport {
    /// True when no layer found anything.
    pub fn is_clean(&self) -> bool {
        self.ir.is_empty() && self.xquery.is_empty() && self.types.is_empty()
    }

    /// All findings, layer 1 first.
    pub fn all(&self) -> impl Iterator<Item = &Diagnostic> {
        self.ir
            .iter()
            .chain(self.xquery.iter())
            .chain(self.types.iter())
    }

    /// One line per finding.
    pub fn render(&self) -> String {
        self.all()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Analyzes one already-produced translation: layer 1 over the prepared
/// IR, layer 2 over the generated query text (wrapped or unwrapped),
/// layer 3 re-inferring types on both sides of the translation and
/// diffing them. Returns the report together with the SQL-side inferred
/// output typing.
pub fn analyze_translation_typed(
    prepared: &PreparedQuery,
    xquery_text: &str,
) -> (TranslationReport, Vec<ty::InferredColumn>) {
    let ir = ir_check::check_prepared(prepared);
    let xquery = xq_lint::lint_text(xquery_text);
    let flow = ty::check_types(prepared);
    let mut types = flow.diagnostics;
    // The translation diff needs a parseable program; when the text does
    // not parse, layer 2 already reports `A100` and the diff is moot.
    if let Ok(program) = aldsp_xquery::parse_program(xquery_text) {
        types.extend(ty::check_translation(prepared, &program, &flow.columns));
    }
    (TranslationReport { ir, xquery, types }, flow.columns)
}

/// [`analyze_translation_typed`] without the typing (the original
/// two-argument surface, kept for the debug validator and callers that
/// only want the findings).
pub fn analyze_translation(prepared: &PreparedQuery, xquery_text: &str) -> TranslationReport {
    analyze_translation_typed(prepared, xquery_text).0
}

/// An end-to-end analysis: the translation plus its report.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The generated query text, per the requested transport.
    pub xquery: String,
    /// The three-layer report.
    pub report: TranslationReport,
    /// The SQL-side inferred output typing (layer 3's view of the
    /// result-set metadata).
    pub typing: Vec<ty::InferredColumn>,
}

/// Translates `sql` (stage 1 → 2 → 3 → transport wrapper) and analyzes
/// both the prepared IR and the generated text. Translation failures are
/// returned as-is — they are the translator rejecting the statement, not
/// analyzer findings.
pub fn analyze_sql<M: MetadataApi>(
    sql: &str,
    metadata: &M,
    options: TranslationOptions,
) -> Result<Analysis, TranslateError> {
    let parsed = stage1::parse(sql)?;
    let prepared = stage2::prepare(&parsed, metadata)?;
    let generated = stage3::generate(&prepared)?;
    let xquery = match options.transport {
        Transport::Xml => generated.into_query_text(),
        Transport::DelimitedText => wrapper::wrap_delimited(generated, &prepared),
    };
    let (report, typing) = analyze_translation_typed(&prepared, &xquery);
    Ok(Analysis {
        xquery,
        report,
        typing,
    })
}
