//! Layer 5: bounded translation validation (`V` codes).
//!
//! The four static layers check *necessary* conditions — invariants,
//! scopes, types, cost — but never the paper's central claim: that the
//! generated XQuery computes the same bag of rows as the source SQL
//! (§3.4/§3.5). This layer checks equivalence directly, bounded:
//!
//! 1. A **reference relational interpreter** ([`execute_reference`])
//!    executes the stage-2 [`PreparedQuery`] IR under SQL-92 bag
//!    semantics — 3VL WHERE/HAVING, GROUP BY and aggregates over groups
//!    discovered in row order, outer-join padding, set operations on
//!    multiplicities, DISTINCT, ORDER BY. It deliberately mirrors the
//!    oracle executor in `aldsp-relational::exec` (the differential
//!    harness's ground truth), but consumes the prepared IR instead of
//!    the SQL AST, so a stage-2 bug cannot hide in a shared frontend.
//! 2. A **witness-database enumerator** builds small databases over the
//!    tables the IR references: 0–2 rows per table drawn from a value
//!    domain seeded with literals harvested from the query (plus NULL,
//!    duplicates, empty strings, and off-by-one neighbours of integer
//!    literals so comparison boundaries are exercised). Columns the IR
//!    never touches are pinned to a single value. Databases are
//!    enumerated in ascending total-row order, so the first divergence
//!    found is a minimal witness.
//! 3. For each witness database, the prepared IR runs through the
//!    reference interpreter and the generated XQuery runs through the
//!    real `aldsp-xquery` evaluator against a [`FunctionSource`] serving
//!    the same rows as flat row elements (NULL = absent child, exactly
//!    like the driver's `DspServer`). The transport payload is decoded
//!    with the driver's own cell rules and the two row bags compared.
//!
//! Divergence classifies into stable codes `V001`–`V006`; each finding
//! carries the witness database and the differing rows. `V` findings are
//! hard errors ([`Severity::Error`]): an inequivalence is a
//! miscompilation, not advice.
//!
//! Soundness caveats (DESIGN.md §15): a clean validation is *bounded*
//! evidence, not proof — only enumerated databases are checked, and any
//! witness on which the reference interpreter itself errors (division by
//! zero on witness data, unsupported corner) is skipped rather than
//! reported, so the layer never converts its own incompleteness into a
//! false positive.

use crate::diag::{DiagCode, Diagnostic};
use aldsp_catalog::{ColumnMeta, SqlColumnType, TableSchema};
use aldsp_core::ir::{
    AggFunc, ArithOp, OutputColumn, PreparedBody, PreparedQuery, PreparedSelect, Rsn, TExpr,
    TExprKind,
};
use aldsp_core::wrapper;
use aldsp_relational::eval::{
    and3, compare_values, compare_with_op, or3, scalar_function, truth, truth_to_value,
};
use aldsp_relational::like::like_match;
use aldsp_relational::value::ArithOp as ValueArithOp;
use aldsp_relational::{decode_cell, ColumnInfo, Database, Relation, SqlValue, Table};
use aldsp_sql::{JoinKind, Literal, Quantifier, SetOp, TrimSide};
use aldsp_xml::{Atomic, Item, QName, Sequence};
use aldsp_xquery::{evaluate_program_with, parse_program, FunctionSource, Program, XqError};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Budget knobs for the enumerator.
#[derive(Debug, Clone)]
pub struct ValidateOptions {
    /// Maximum witness databases to execute per translation. Databases
    /// are enumerated smallest-first, so lowering this trades coverage
    /// for latency but keeps witnesses minimal.
    pub max_databases: usize,
    /// Floor on candidate rows drawn per table before bag enumeration
    /// (the enumerator raises it to the longest column domain so every
    /// harvested constant appears in some candidate).
    pub candidate_rows: usize,
    /// Rows per table per witness database (0..=cap, capped at 3 — the
    /// bound that makes duplicate multiplicity, outer-join padding and
    /// small `COUNT(*)` thresholds observable while keeping enumeration
    /// tiny).
    pub max_rows_per_table: usize,
    /// `(table, column)` pairs declared unique keys: witness databases
    /// whose named column repeats a value (NULL included — key, not
    /// `UNIQUE`, semantics) are skipped, making the verdict *bounded
    /// equivalence relative to these integrity constraints*. Empty by
    /// default — plain validation quantifies over unconstrained
    /// databases. The optimizer seeds this from its catalog statistics
    /// so uniqueness-keyed rewrites (DISTINCT elimination, ORDER BY key
    /// pruning) are judged only on databases that can actually occur.
    pub key_columns: Vec<(String, String)>,
}

impl Default for ValidateOptions {
    fn default() -> ValidateOptions {
        ValidateOptions {
            max_databases: 1024,
            candidate_rows: 4,
            max_rows_per_table: 3,
            key_columns: Vec::new(),
        }
    }
}

impl ValidateOptions {
    /// A reduced budget for the per-translation debug hook, where the
    /// validator runs on every `stage3::generate` under test.
    pub fn quick() -> ValidateOptions {
        ValidateOptions {
            max_databases: 6,
            candidate_rows: 3,
            max_rows_per_table: 2,
            key_columns: Vec::new(),
        }
    }

    /// Declares unique-key constraints the witness enumerator must
    /// respect (see [`ValidateOptions::key_columns`]).
    pub fn with_key_columns(mut self, keys: Vec<(String, String)>) -> ValidateOptions {
        self.key_columns = keys;
        self
    }
}

/// What a validation run did, for harness reporting.
#[derive(Debug, Clone, Default)]
pub struct ValidationOutcome {
    /// Findings (at most one — validation stops at the first, minimal,
    /// diverging witness).
    pub diagnostics: Vec<Diagnostic>,
    /// Witness databases enumerated under the budget.
    pub databases_enumerated: usize,
    /// Witness databases actually executed (skips excluded).
    pub witnesses_checked: usize,
}

/// Validates one translation: prepared IR vs generated XQuery text (in
/// either transport). Returns only the findings.
pub fn check_equivalence(
    prepared: &PreparedQuery,
    xquery_text: &str,
    options: &ValidateOptions,
) -> Vec<Diagnostic> {
    validate_translation(prepared, xquery_text, options).diagnostics
}

/// Validates one translation, reporting enumeration counters along with
/// any finding.
pub fn validate_translation(
    prepared: &PreparedQuery,
    xquery_text: &str,
    options: &ValidateOptions,
) -> ValidationOutcome {
    let mut outcome = ValidationOutcome::default();
    // Unparsable text is layer 2's A100; nothing to execute here.
    let Ok(program) = parse_program(xquery_text) else {
        return outcome;
    };
    let shape = QueryShape::of(prepared);
    let params = shape.parameter_values();
    let databases = shape.enumerate_databases(options);
    outcome.databases_enumerated = databases.len();

    for db in &databases {
        let reference = match execute_reference(prepared, db, &params) {
            Ok(rel) => rel,
            // The reference erred on this witness (division by zero on
            // enumerated data, an unsupported corner): skip rather than
            // blame the translation.
            Err(_) => continue,
        };
        outcome.witnesses_checked += 1;
        let generated = run_generated(&program, db, &params, &prepared.output);
        if let Some(diag) = classify(prepared, db, &reference, generated) {
            outcome.diagnostics.push(diag);
            break;
        }
    }
    outcome
}

// ====================================================================
// Reference interpreter over the prepared IR
// ====================================================================

type VResult<T> = Result<T, String>;

/// A row binding, chained outward for correlated subqueries (the
/// interpreter-side analogue of the paper's context chain, §3.4.3).
struct Frame<'a> {
    rel: &'a Relation,
    row: &'a [SqlValue],
    parent: Option<&'a Frame<'a>>,
}

impl<'a> Frame<'a> {
    fn resolve(&self, range_var: &str, column: &str) -> VResult<SqlValue> {
        let found = self.rel.find_columns(Some(range_var), column);
        match found.as_slice() {
            [i] => Ok(self.row[*i].clone()),
            [] => match self.parent {
                Some(parent) => parent.resolve(range_var, column),
                None => Err(format!("unknown column {range_var}.{column}")),
            },
            _ => Err(format!("ambiguous column {range_var}.{column}")),
        }
    }
}

/// Executes a prepared query against an in-memory database under SQL-92
/// bag semantics. This is the layer's oracle; it never consults stage 3.
pub fn execute_reference(
    query: &PreparedQuery,
    db: &Database,
    params: &[SqlValue],
) -> Result<Relation, String> {
    exec_query(query, db, params, None)
}

fn exec_query(
    query: &PreparedQuery,
    db: &Database,
    params: &[SqlValue],
    outer: Option<&Frame<'_>>,
) -> VResult<Relation> {
    let mut rel = exec_body(&query.body, db, params, outer)?;
    if !query.order_by.is_empty() {
        let order = query.order_by.clone();
        let mut keyed: Vec<Vec<SqlValue>> = std::mem::take(&mut rel.rows);
        keyed.sort_by(|a, b| {
            for item in &order {
                let ord = a[item.column].sort_cmp(&b[item.column]);
                let ord = if item.ascending { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        rel.rows = keyed;
    }
    Ok(rel)
}

fn exec_body(
    body: &PreparedBody,
    db: &Database,
    params: &[SqlValue],
    outer: Option<&Frame<'_>>,
) -> VResult<Relation> {
    match body {
        PreparedBody::Select(select) => exec_select(select, db, params, outer),
        PreparedBody::SetOp {
            left,
            op,
            all,
            right,
            output,
        } => {
            let l = exec_body(left, db, params, outer)?;
            let r = exec_body(right, db, params, outer)?;
            if l.arity() != r.arity() {
                return Err(format!(
                    "set operands have different arity: {} vs {}",
                    l.arity(),
                    r.arity()
                ));
            }
            let mut rel = apply_set_op(l, r, *op, *all);
            rel.columns = output_columns(output);
            Ok(rel)
        }
    }
}

/// Bag-semantics set operations (SQL-92 §7.10), mirroring the oracle
/// executor: plain forms eliminate duplicates, ALL forms operate on
/// multiplicities.
fn apply_set_op(left: Relation, right: Relation, op: SetOp, all: bool) -> Relation {
    let columns = left.columns.clone();
    let count = |rel: &Relation| {
        let mut m: HashMap<String, usize> = HashMap::new();
        for row in &rel.rows {
            *m.entry(Relation::row_key(row)).or_insert(0) += 1;
        }
        m
    };
    let rows = match (op, all) {
        (SetOp::Union, true) => {
            let mut rows = left.rows;
            rows.extend(right.rows);
            rows
        }
        (SetOp::Union, false) => {
            let mut seen = HashMap::new();
            let mut rows = Vec::new();
            for row in left.rows.into_iter().chain(right.rows) {
                if seen.insert(Relation::row_key(&row), ()).is_none() {
                    rows.push(row);
                }
            }
            rows
        }
        (SetOp::Intersect, all) => {
            let mut right_counts = count(&right);
            let mut seen: HashMap<String, ()> = HashMap::new();
            let mut rows = Vec::new();
            for row in left.rows {
                let key = Relation::row_key(&row);
                match right_counts.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        if all {
                            *n -= 1;
                            rows.push(row);
                        } else if seen.insert(key, ()).is_none() {
                            rows.push(row);
                        }
                    }
                    _ => {}
                }
            }
            rows
        }
        (SetOp::Except, all) => {
            let mut right_counts = count(&right);
            let mut seen: HashMap<String, ()> = HashMap::new();
            let mut rows = Vec::new();
            for row in left.rows {
                let key = Relation::row_key(&row);
                match right_counts.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        if all {
                            *n -= 1;
                        }
                        // Plain EXCEPT: suppressed entirely.
                    }
                    _ => {
                        // ALL keeps every leftover; plain EXCEPT keeps the
                        // first occurrence only.
                        if all || seen.insert(key, ()).is_none() {
                            rows.push(row);
                        }
                    }
                }
            }
            rows
        }
    };
    Relation { columns, rows }
}

fn output_columns(output: &[OutputColumn]) -> Vec<ColumnInfo> {
    output
        .iter()
        .map(|o| ColumnInfo::new(o.label.clone(), None, o.sql_type, o.nullable))
        .collect()
}

fn exec_select(
    select: &PreparedSelect,
    db: &Database,
    params: &[SqlValue],
    outer: Option<&Frame<'_>>,
) -> VResult<Relation> {
    // FROM: cross join the comma list of RSNs.
    let mut from_rel: Option<Relation> = None;
    for rsn in &select.from {
        let r = exec_rsn(rsn, db, params, outer)?;
        from_rel = Some(match from_rel {
            None => r,
            Some(acc) => acc.cross_join(&r),
        });
    }
    let from_rel = from_rel.ok_or_else(|| "FROM clause is empty".to_string())?;

    // WHERE, under 3VL: keep only rows where the predicate is TRUE.
    let mut filtered_rows = Vec::new();
    for row in &from_rel.rows {
        let keep = match &select.where_clause {
            None => true,
            Some(predicate) => {
                let frame = Frame {
                    rel: &from_rel,
                    row,
                    parent: outer,
                };
                truth3(&eval_expr(predicate, db, params, Some(&frame))?)? == Some(true)
            }
        };
        if keep {
            filtered_rows.push(row.clone());
        }
    }
    let filtered = Relation {
        columns: from_rel.columns.clone(),
        rows: filtered_rows,
    };

    let mut projected = if select.grouped {
        project_grouped(select, &filtered, db, params, outer)?
    } else {
        project_rows(select, &filtered, db, params, outer)?
    };

    if select.distinct {
        let mut seen = HashMap::new();
        projected
            .rows
            .retain(|row| seen.insert(Relation::row_key(row), ()).is_none());
    }
    Ok(projected)
}

fn exec_rsn(
    rsn: &Rsn,
    db: &Database,
    params: &[SqlValue],
    outer: Option<&Frame<'_>>,
) -> VResult<Relation> {
    match rsn {
        Rsn::Table { range_var, entry } => {
            let table = db
                .table(&entry.schema.table_name)
                .ok_or_else(|| format!("unknown table {}", entry.schema.table_name))?;
            Ok(table.scan(range_var))
        }
        Rsn::Derived { range_var, query } => {
            let mut rel = exec_query(query, db, params, outer)?;
            // Re-qualify the subquery's output with the range variable,
            // exposing labels as column names (matching `Rsn::columns`).
            rel.columns = query
                .output
                .iter()
                .map(|o| {
                    ColumnInfo::new(
                        o.label.clone(),
                        Some(range_var.clone()),
                        o.sql_type,
                        o.nullable,
                    )
                })
                .collect();
            Ok(rel)
        }
        Rsn::Join {
            kind,
            left,
            right,
            on,
        } => {
            let l = exec_rsn(left, db, params, outer)?;
            let r = exec_rsn(right, db, params, outer)?;
            exec_join(l, r, *kind, on.as_ref(), db, params, outer)
        }
    }
}

fn exec_join(
    left: Relation,
    right: Relation,
    kind: JoinKind,
    on: Option<&TExpr>,
    db: &Database,
    params: &[SqlValue],
    outer: Option<&Frame<'_>>,
) -> VResult<Relation> {
    let mut columns = left.columns.clone();
    columns.extend(right.columns.iter().cloned());
    let combined = Relation::with_columns(columns);

    let matches_on = |joined: &[SqlValue]| -> VResult<bool> {
        match on {
            None => Ok(true),
            Some(predicate) => {
                let frame = Frame {
                    rel: &combined,
                    row: joined,
                    parent: outer,
                };
                Ok(truth3(&eval_expr(predicate, db, params, Some(&frame))?)? == Some(true))
            }
        }
    };

    let mut rows = Vec::new();
    let mut right_matched = vec![false; right.rows.len()];
    for left_row in &left.rows {
        let mut matched = false;
        for (ri, right_row) in right.rows.iter().enumerate() {
            let mut joined = left_row.clone();
            joined.extend(right_row.iter().cloned());
            if matches_on(&joined)? {
                matched = true;
                right_matched[ri] = true;
                rows.push(joined);
            }
        }
        if !matched && matches!(kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
            let mut padded = left_row.clone();
            padded.extend(right.null_row());
            rows.push(padded);
        }
    }
    if matches!(kind, JoinKind::RightOuter | JoinKind::FullOuter) {
        for (ri, right_row) in right.rows.iter().enumerate() {
            if !right_matched[ri] {
                let mut padded = left.null_row();
                padded.extend(right_row.iter().cloned());
                rows.push(padded);
            }
        }
    }
    Ok(Relation {
        columns: combined.columns,
        rows,
    })
}

fn project_rows(
    select: &PreparedSelect,
    filtered: &Relation,
    db: &Database,
    params: &[SqlValue],
    outer: Option<&Frame<'_>>,
) -> VResult<Relation> {
    let columns = output_columns(&select.output);
    let mut rows = Vec::with_capacity(filtered.rows.len());
    for row in &filtered.rows {
        let frame = Frame {
            rel: filtered,
            row,
            parent: outer,
        };
        let mut out_row = vec![SqlValue::Null; select.output.len()];
        for item in &select.items {
            out_row[item.output] = eval_expr(&item.expr, db, params, Some(&frame))?;
        }
        rows.push(out_row);
    }
    Ok(Relation { columns, rows })
}

// ---- grouping ---------------------------------------------------------

fn project_grouped(
    select: &PreparedSelect,
    filtered: &Relation,
    db: &Database,
    params: &[SqlValue],
    outer: Option<&Frame<'_>>,
) -> VResult<Relation> {
    // Discover groups in row order, keyed by the group-key values.
    let mut groups: Vec<(Vec<SqlValue>, Vec<Vec<SqlValue>>)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for row in &filtered.rows {
        let frame = Frame {
            rel: filtered,
            row,
            parent: outer,
        };
        let mut keys = Vec::with_capacity(select.group_by.len());
        for k in &select.group_by {
            keys.push(eval_expr(k, db, params, Some(&frame))?);
        }
        let key_str = Relation::row_key(&keys);
        match index.get(&key_str) {
            Some(&g) => groups[g].1.push(row.clone()),
            None => {
                index.insert(key_str, groups.len());
                groups.push((keys, vec![row.clone()]));
            }
        }
    }
    // No GROUP BY but aggregates: one group over everything, even empty
    // input (SQL-92: `SELECT COUNT(*) FROM empty` is one row).
    if select.group_by.is_empty() && groups.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let columns = output_columns(&select.output);
    let mut rows = Vec::with_capacity(groups.len());
    for (keys, group_rows) in &groups {
        if let Some(having) = &select.having {
            let reduced = reduce_grouped(
                having, select, keys, group_rows, filtered, db, params, outer,
            )?;
            let v = eval_expr(&reduced, db, params, outer)?;
            if truth3(&v)? != Some(true) {
                continue;
            }
        }
        let mut out_row = vec![SqlValue::Null; select.output.len()];
        for item in &select.items {
            let reduced = reduce_grouped(
                &item.expr, select, keys, group_rows, filtered, db, params, outer,
            )?;
            out_row[item.output] = eval_expr(&reduced, db, params, outer)?;
        }
        rows.push(out_row);
    }
    Ok(Relation { columns, rows })
}

/// Rewrites a grouped-context expression into one with no group-sensitive
/// leaves: group-key subexpressions become their key values and aggregate
/// calls are computed over the group's rows, both substituted as literal
/// values. The residue is evaluated by the ordinary evaluator (with the
/// outer scope only — subqueries in grouped context cannot see group
/// rows, matching the oracle). A bare column that is neither a group key
/// nor inside an aggregate is the SQL-92 GROUP BY violation layer 1
/// reports as A004; here it surfaces as an unresolvable column.
#[allow(clippy::too_many_arguments)]
fn reduce_grouped(
    expr: &TExpr,
    select: &PreparedSelect,
    keys: &[SqlValue],
    group_rows: &[Vec<SqlValue>],
    from_rel: &Relation,
    db: &Database,
    params: &[SqlValue],
    outer: Option<&Frame<'_>>,
) -> VResult<TExpr> {
    for (i, key_expr) in select.group_by.iter().enumerate() {
        if expr == key_expr {
            return Ok(value_to_literal(&keys[i]));
        }
    }
    if let TExprKind::Aggregate {
        func,
        distinct,
        arg,
    } = &expr.kind
    {
        let v = eval_aggregate(
            *func,
            *distinct,
            arg.as_deref(),
            group_rows,
            from_rel,
            db,
            params,
            outer,
        )?;
        return Ok(value_to_literal(&v));
    }
    let mut reduced = expr.clone();
    rewrite_children(&mut reduced, &mut |child| {
        let r = reduce_grouped(child, select, keys, group_rows, from_rel, db, params, outer)?;
        *child = r;
        Ok(())
    })?;
    Ok(reduced)
}

/// Applies `f` to each direct child expression, in place. Subquery kinds
/// are left untouched (including their comparison operand): in grouped
/// context they evaluate against the outer scope only, exactly like the
/// oracle executor.
fn rewrite_children(expr: &mut TExpr, f: &mut dyn FnMut(&mut TExpr) -> VResult<()>) -> VResult<()> {
    use TExprKind::*;
    match &mut expr.kind {
        Column { .. } | Literal(_) | Parameter(_) | Generated { .. } | Aggregate { .. } => Ok(()),
        Neg(e) | Not(e) | Cast { expr: e, .. } | IsNull { expr: e, .. } => f(e),
        Arith { left, right, .. }
        | Concat(left, right)
        | Compare { left, right, .. }
        | And(left, right)
        | Or(left, right) => {
            f(left)?;
            f(right)
        }
        ScalarFn { args, .. } => args.iter_mut().try_for_each(f),
        Case {
            operand,
            branches,
            else_result,
        } => {
            if let Some(o) = operand {
                f(o)?;
            }
            for (w, t) in branches.iter_mut() {
                f(w)?;
                f(t)?;
            }
            if let Some(e) = else_result {
                f(e)?;
            }
            Ok(())
        }
        Between {
            expr, low, high, ..
        } => {
            f(expr)?;
            f(low)?;
            f(high)
        }
        InList { expr, list, .. } => {
            f(expr)?;
            list.iter_mut().try_for_each(f)
        }
        Like {
            expr,
            pattern,
            escape,
            ..
        } => {
            f(expr)?;
            f(pattern)?;
            if let Some(e) = escape {
                f(e)?;
            }
            Ok(())
        }
        Substring {
            expr,
            start,
            length,
        } => {
            f(expr)?;
            f(start)?;
            if let Some(l) = length {
                f(l)?;
            }
            Ok(())
        }
        Trim {
            trim_chars, expr, ..
        } => {
            if let Some(c) = trim_chars {
                f(c)?;
            }
            f(expr)
        }
        Position { needle, haystack } => {
            f(needle)?;
            f(haystack)
        }
        InSubquery { .. } | Exists { .. } | ScalarSubquery(_) | Quantified { .. } => Ok(()),
    }
}

fn value_to_literal(v: &SqlValue) -> TExpr {
    let kind = match v {
        SqlValue::Null => TExprKind::Literal(Literal::Null),
        SqlValue::Int(i) => TExprKind::Literal(Literal::Integer(*i)),
        SqlValue::Decimal(d) => TExprKind::Literal(Literal::Decimal(*d)),
        SqlValue::Double(d) => TExprKind::Literal(Literal::Double(*d)),
        SqlValue::Str(s) => TExprKind::Literal(Literal::String(s.clone())),
        SqlValue::Date(d) => TExprKind::Literal(Literal::Date(d.clone())),
        // No boolean literal in SQL-92; encode as 1=1 / 1=0.
        SqlValue::Bool(b) => TExprKind::Compare {
            op: aldsp_sql::CompareOp::Eq,
            left: Box::new(TExpr::new(
                TExprKind::Literal(Literal::Integer(if *b { 1 } else { 0 })),
                Some(SqlColumnType::Integer),
                false,
            )),
            right: Box::new(TExpr::new(
                TExprKind::Literal(Literal::Integer(1)),
                Some(SqlColumnType::Integer),
                false,
            )),
        },
    };
    TExpr::new(kind, None, true)
}

#[allow(clippy::too_many_arguments)]
fn eval_aggregate(
    func: AggFunc,
    distinct: bool,
    arg: Option<&TExpr>,
    group_rows: &[Vec<SqlValue>],
    from_rel: &Relation,
    db: &Database,
    params: &[SqlValue],
    outer: Option<&Frame<'_>>,
) -> VResult<SqlValue> {
    // COUNT(*): the group's cardinality.
    let Some(arg) = arg else {
        return Ok(SqlValue::Int(group_rows.len() as i64));
    };

    // Evaluate the argument per row, dropping NULLs (SQL-92 aggregates
    // ignore NULL inputs).
    let mut values = Vec::with_capacity(group_rows.len());
    for row in group_rows {
        let frame = Frame {
            rel: from_rel,
            row,
            parent: outer,
        };
        let v = eval_expr(arg, db, params, Some(&frame))?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut seen = HashMap::new();
        values.retain(|v| seen.insert(v.group_key(), ()).is_none());
    }

    match func {
        AggFunc::Count => Ok(SqlValue::Int(values.len() as i64)),
        AggFunc::Min | AggFunc::Max => {
            let want_min = func == AggFunc::Min;
            let mut best: Option<SqlValue> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match v.compare(&b).map_err(|e| e.message)? {
                            Some(Ordering::Less) => want_min,
                            Some(Ordering::Greater) => !want_min,
                            _ => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(SqlValue::Null))
        }
        AggFunc::Sum | AggFunc::Avg => {
            if values.is_empty() {
                return Ok(SqlValue::Null);
            }
            let mut all_int = true;
            let mut any_double = false;
            let mut int_sum: i64 = 0;
            let mut f_sum: f64 = 0.0;
            for v in &values {
                match v {
                    SqlValue::Int(i) => {
                        int_sum = int_sum
                            .checked_add(*i)
                            .ok_or_else(|| "SUM overflow".to_string())?;
                        f_sum += *i as f64;
                    }
                    SqlValue::Decimal(d) => {
                        all_int = false;
                        f_sum += d;
                    }
                    SqlValue::Double(d) => {
                        all_int = false;
                        any_double = true;
                        f_sum += d;
                    }
                    other => return Err(format!("aggregate over non-numeric value {other:?}")),
                }
            }
            if func == AggFunc::Sum {
                Ok(if all_int {
                    SqlValue::Int(int_sum)
                } else if any_double {
                    SqlValue::Double(f_sum)
                } else {
                    SqlValue::Decimal(f_sum)
                })
            } else {
                let avg = f_sum / values.len() as f64;
                Ok(if any_double {
                    SqlValue::Double(avg)
                } else {
                    SqlValue::Decimal(avg)
                })
            }
        }
    }
}

// ---- scalar evaluation ------------------------------------------------

fn truth3(v: &SqlValue) -> VResult<Option<bool>> {
    truth(v).map_err(|e| e.message)
}

fn negate_if(t: Option<bool>, negate: bool) -> Option<bool> {
    if negate {
        t.map(|b| !b)
    } else {
        t
    }
}

fn eval_expr(
    expr: &TExpr,
    db: &Database,
    params: &[SqlValue],
    frame: Option<&Frame<'_>>,
) -> VResult<SqlValue> {
    match &expr.kind {
        TExprKind::Column { range_var, column } => match frame {
            Some(f) => f.resolve(range_var, column),
            None => Err(format!("unknown column {range_var}.{column}")),
        },
        TExprKind::Literal(l) => Ok(literal_value(l)),
        TExprKind::Parameter(ordinal) => params
            .get(*ordinal)
            .cloned()
            .ok_or_else(|| format!("parameter {} not bound", ordinal + 1)),
        TExprKind::Neg(e) => match eval_expr(e, db, params, frame)? {
            SqlValue::Null => Ok(SqlValue::Null),
            SqlValue::Int(i) => i
                .checked_neg()
                .map(SqlValue::Int)
                .ok_or_else(|| "integer overflow".to_string()),
            SqlValue::Decimal(d) => Ok(SqlValue::Decimal(-d)),
            SqlValue::Double(d) => Ok(SqlValue::Double(-d)),
            other => Err(format!("cannot negate {other:?}")),
        },
        TExprKind::Not(e) => {
            let v = eval_expr(e, db, params, frame)?;
            Ok(truth_to_value(truth3(&v)?.map(|b| !b)))
        }
        TExprKind::Arith { op, left, right } => {
            let l = eval_expr(left, db, params, frame)?;
            let r = eval_expr(right, db, params, frame)?;
            let vop = match op {
                ArithOp::Add => ValueArithOp::Add,
                ArithOp::Sub => ValueArithOp::Sub,
                ArithOp::Mul => ValueArithOp::Mul,
                ArithOp::Div => ValueArithOp::Div,
            };
            l.arith(vop, &r).map_err(|e| e.message)
        }
        TExprKind::Concat(left, right) => {
            let l = eval_expr(left, db, params, frame)?;
            let r = eval_expr(right, db, params, frame)?;
            Ok(l.concat(&r))
        }
        TExprKind::Compare { op, left, right } => {
            let l = eval_expr(left, db, params, frame)?;
            let r = eval_expr(right, db, params, frame)?;
            Ok(truth_to_value(
                compare_with_op(&l, *op, &r).map_err(|e| e.message)?,
            ))
        }
        TExprKind::And(left, right) => {
            let l = truth3(&eval_expr(left, db, params, frame)?)?;
            // Short circuit: FALSE AND x is FALSE without evaluating x.
            if l == Some(false) {
                return Ok(SqlValue::Bool(false));
            }
            let r = truth3(&eval_expr(right, db, params, frame)?)?;
            Ok(truth_to_value(and3(l, r)))
        }
        TExprKind::Or(left, right) => {
            let l = truth3(&eval_expr(left, db, params, frame)?)?;
            if l == Some(true) {
                return Ok(SqlValue::Bool(true));
            }
            let r = truth3(&eval_expr(right, db, params, frame)?)?;
            Ok(truth_to_value(or3(l, r)))
        }
        TExprKind::ScalarFn { name, args } => {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(eval_expr(a, db, params, frame)?);
            }
            scalar_function(name, &values).map_err(|e| e.message)
        }
        TExprKind::Aggregate { .. } => Err("aggregate used outside grouping context".to_string()),
        TExprKind::Case {
            operand,
            branches,
            else_result,
        } => {
            for (when, then) in branches {
                let matched = match operand {
                    // Simple CASE compares operand = when.
                    Some(op_expr) => {
                        let lhs = eval_expr(op_expr, db, params, frame)?;
                        let rhs = eval_expr(when, db, params, frame)?;
                        compare_values(&lhs, &rhs)
                            .map_err(|e| e.message)?
                            .map(|o| o == Ordering::Equal)
                    }
                    // Searched CASE evaluates the predicate.
                    None => truth3(&eval_expr(when, db, params, frame)?)?,
                };
                if matched == Some(true) {
                    return eval_expr(then, db, params, frame);
                }
            }
            match else_result {
                Some(e) => eval_expr(e, db, params, frame),
                None => Ok(SqlValue::Null),
            }
        }
        TExprKind::Cast { expr: e, target } => {
            let v = eval_expr(e, db, params, frame)?;
            v.cast_to(*target).map_err(|e| e.message)
        }
        TExprKind::IsNull { expr: e, negated } => {
            let v = eval_expr(e, db, params, frame)?;
            Ok(SqlValue::Bool(v.is_null() != *negated))
        }
        TExprKind::Between {
            expr: e,
            low,
            high,
            negated,
        } => {
            let v = eval_expr(e, db, params, frame)?;
            let lo = eval_expr(low, db, params, frame)?;
            let hi = eval_expr(high, db, params, frame)?;
            let ge_lo = compare_values(&v, &lo)
                .map_err(|e| e.message)?
                .map(|o| o != Ordering::Less);
            let le_hi = compare_values(&v, &hi)
                .map_err(|e| e.message)?
                .map(|o| o != Ordering::Greater);
            Ok(truth_to_value(negate_if(and3(ge_lo, le_hi), *negated)))
        }
        TExprKind::InList {
            expr: e,
            list,
            negated,
        } => {
            let v = eval_expr(e, db, params, frame)?;
            let mut saw_unknown = false;
            for item in list {
                let candidate = eval_expr(item, db, params, frame)?;
                match compare_values(&v, &candidate).map_err(|e| e.message)? {
                    Some(Ordering::Equal) => {
                        return Ok(truth_to_value(negate_if(Some(true), *negated)))
                    }
                    Some(_) => {}
                    None => saw_unknown = true,
                }
            }
            let t = if saw_unknown { None } else { Some(false) };
            Ok(truth_to_value(negate_if(t, *negated)))
        }
        TExprKind::InSubquery {
            expr: e,
            query,
            negated,
        } => {
            let v = eval_expr(e, db, params, frame)?;
            let rel = exec_query(query, db, params, frame)?;
            require_arity(&rel, 1, "IN subquery")?;
            let mut saw_unknown = false;
            for row in &rel.rows {
                match compare_values(&v, &row[0]).map_err(|e| e.message)? {
                    Some(Ordering::Equal) => {
                        return Ok(truth_to_value(negate_if(Some(true), *negated)))
                    }
                    Some(_) => {}
                    None => saw_unknown = true,
                }
            }
            let t = if saw_unknown { None } else { Some(false) };
            Ok(truth_to_value(negate_if(t, *negated)))
        }
        TExprKind::Exists { query, negated } => {
            let rel = exec_query(query, db, params, frame)?;
            Ok(SqlValue::Bool(rel.rows.is_empty() == *negated))
        }
        TExprKind::ScalarSubquery(query) => {
            let rel = exec_query(query, db, params, frame)?;
            require_arity(&rel, 1, "scalar subquery")?;
            match rel.rows.len() {
                0 => Ok(SqlValue::Null),
                1 => Ok(rel.rows[0][0].clone()),
                n => Err(format!("scalar subquery returned {n} rows")),
            }
        }
        TExprKind::Quantified {
            expr: e,
            op,
            quantifier,
            query,
        } => {
            let v = eval_expr(e, db, params, frame)?;
            let rel = exec_query(query, db, params, frame)?;
            require_arity(&rel, 1, "quantified subquery")?;
            let mut any_true = false;
            let mut any_false = false;
            let mut any_unknown = false;
            for row in &rel.rows {
                match compare_with_op(&v, *op, &row[0]).map_err(|e| e.message)? {
                    Some(true) => any_true = true,
                    Some(false) => any_false = true,
                    None => any_unknown = true,
                }
            }
            // SQL-92 quantified truth tables: ANY is an OR over the rows,
            // ALL an AND; empty subquery → FALSE for ANY, TRUE for ALL.
            let t = match quantifier {
                Quantifier::Any => {
                    if any_true {
                        Some(true)
                    } else if any_unknown {
                        None
                    } else {
                        Some(false)
                    }
                }
                Quantifier::All => {
                    if any_false {
                        Some(false)
                    } else if any_unknown {
                        None
                    } else {
                        Some(true)
                    }
                }
            };
            Ok(truth_to_value(t))
        }
        TExprKind::Like {
            expr: e,
            pattern,
            escape,
            negated,
        } => {
            let v = eval_expr(e, db, params, frame)?;
            let p = eval_expr(pattern, db, params, frame)?;
            let esc = match escape {
                Some(esc_expr) => {
                    let ev = eval_expr(esc_expr, db, params, frame)?;
                    match ev {
                        SqlValue::Null => return Ok(SqlValue::Null),
                        SqlValue::Str(s) if s.chars().count() == 1 => s.chars().next(),
                        other => {
                            return Err(format!("ESCAPE must be a single character, got {other:?}"))
                        }
                    }
                }
                None => None,
            };
            match (&v, &p) {
                (SqlValue::Null, _) | (_, SqlValue::Null) => Ok(SqlValue::Null),
                _ => {
                    let matched = like_match(&v.display_text(), &p.display_text(), esc)
                        .map_err(|e| e.message)?;
                    Ok(SqlValue::Bool(matched != *negated))
                }
            }
        }
        TExprKind::Substring {
            expr: e,
            start,
            length,
        } => {
            let s = eval_expr(e, db, params, frame)?;
            let st = eval_expr(start, db, params, frame)?;
            let len = match length {
                Some(l) => Some(eval_expr(l, db, params, frame)?),
                None => None,
            };
            if s.is_null() || st.is_null() || len.as_ref().is_some_and(|l| l.is_null()) {
                return Ok(SqlValue::Null);
            }
            let text = s.display_text();
            let start_pos = int_of(&st, "SUBSTRING start")?;
            let length_n = match &len {
                Some(l) => {
                    let n = int_of(l, "SUBSTRING length")?;
                    if n < 0 {
                        return Err("negative SUBSTRING length".to_string());
                    }
                    Some(n)
                }
                None => None,
            };
            Ok(SqlValue::Str(sql_substring(&text, start_pos, length_n)))
        }
        TExprKind::Trim {
            side,
            trim_chars,
            expr: e,
        } => {
            let v = eval_expr(e, db, params, frame)?;
            if v.is_null() {
                return Ok(SqlValue::Null);
            }
            let pad = match trim_chars {
                Some(c) => {
                    let cv = eval_expr(c, db, params, frame)?;
                    if cv.is_null() {
                        return Ok(SqlValue::Null);
                    }
                    let s = cv.display_text();
                    let mut chars = s.chars();
                    match (chars.next(), chars.next()) {
                        (Some(ch), None) => ch,
                        _ => return Err("TRIM character must be a single character".to_string()),
                    }
                }
                None => ' ',
            };
            let text = v.display_text();
            let trimmed = match side {
                TrimSide::Both => text.trim_matches(pad),
                TrimSide::Leading => text.trim_start_matches(pad),
                TrimSide::Trailing => text.trim_end_matches(pad),
            };
            Ok(SqlValue::Str(trimmed.to_string()))
        }
        TExprKind::Position { needle, haystack } => {
            let n = eval_expr(needle, db, params, frame)?;
            let h = eval_expr(haystack, db, params, frame)?;
            if n.is_null() || h.is_null() {
                return Ok(SqlValue::Null);
            }
            let needle_text = n.display_text();
            let haystack_text = h.display_text();
            // SQL POSITION is 1-based; 0 means not found; empty needle → 1.
            let pos = if needle_text.is_empty() {
                1
            } else {
                match haystack_text.find(&needle_text) {
                    Some(byte) => haystack_text[..byte].chars().count() as i64 + 1,
                    None => 0,
                }
            };
            Ok(SqlValue::Int(pos))
        }
        TExprKind::Generated { .. } => Err("stage-3 internal node in stage-2 output".to_string()),
    }
}

/// SQL SUBSTRING semantics: 1-based, start may be ≤ 0 (window clips).
fn sql_substring(text: &str, start: i64, length: Option<i64>) -> String {
    let chars: Vec<char> = text.chars().collect();
    let end_exclusive = match length {
        Some(l) => start.saturating_add(l),
        None => i64::MAX,
    };
    let from = (start.max(1) - 1).min(chars.len() as i64) as usize;
    let to = (end_exclusive - 1).clamp(0, chars.len() as i64) as usize;
    if from >= to {
        String::new()
    } else {
        chars[from..to].iter().collect()
    }
}

fn int_of(v: &SqlValue, what: &str) -> VResult<i64> {
    match v {
        SqlValue::Int(i) => Ok(*i),
        SqlValue::Decimal(d) | SqlValue::Double(d) => Ok(*d as i64),
        other => Err(format!("{what} must be numeric, got {other:?}")),
    }
}

fn require_arity(rel: &Relation, n: usize, what: &str) -> VResult<()> {
    if rel.arity() == n {
        Ok(())
    } else {
        Err(format!(
            "{what} must return {n} column(s), returned {}",
            rel.arity()
        ))
    }
}

fn literal_value(l: &Literal) -> SqlValue {
    match l {
        Literal::Integer(i) => SqlValue::Int(*i),
        Literal::Decimal(d) => SqlValue::Decimal(*d),
        Literal::Double(d) => SqlValue::Double(*d),
        Literal::String(s) => SqlValue::Str(s.clone()),
        Literal::Date(d) => SqlValue::Date(d.clone()),
        Literal::Null => SqlValue::Null,
    }
}

// ====================================================================
// Witness-database enumeration
// ====================================================================

/// What the enumerator learned about a query: the tables it scans, which
/// columns it touches, and the constants it compares against.
struct QueryShape {
    /// Table name → schema, in deterministic order.
    tables: BTreeMap<String, TableSchema>,
    /// `(table, column)` pairs referenced anywhere in the IR.
    touched: BTreeSet<(String, String)>,
    /// Harvested literal domains.
    ints: BTreeSet<i64>,
    strings: BTreeSet<String>,
    decimals: Vec<f64>,
    dates: BTreeSet<String>,
    /// Parameter ordinal → annotated type.
    param_types: BTreeMap<usize, Option<SqlColumnType>>,
}

impl QueryShape {
    fn of(query: &PreparedQuery) -> QueryShape {
        let mut shape = QueryShape {
            tables: BTreeMap::new(),
            touched: BTreeSet::new(),
            ints: BTreeSet::new(),
            strings: BTreeSet::new(),
            decimals: Vec::new(),
            dates: BTreeSet::new(),
            param_types: BTreeMap::new(),
        };
        // Range variable → table name(s); collisions across scopes are
        // resolved by over-marking (pruning is an optimization, marking a
        // column touched in two tables is merely less pruning).
        let mut rv_tables: Vec<(String, String)> = Vec::new();
        let mut columns: Vec<(String, String)> = Vec::new();
        shape.walk_query(query, &mut rv_tables, &mut columns);
        for (rv, col) in &columns {
            for (rv2, table) in &rv_tables {
                if rv == rv2 {
                    shape.touched.insert((table.clone(), col.clone()));
                }
            }
        }
        shape
    }

    fn walk_query(
        &mut self,
        query: &PreparedQuery,
        rv_tables: &mut Vec<(String, String)>,
        columns: &mut Vec<(String, String)>,
    ) {
        self.walk_body(&query.body, rv_tables, columns);
    }

    fn walk_body(
        &mut self,
        body: &PreparedBody,
        rv_tables: &mut Vec<(String, String)>,
        columns: &mut Vec<(String, String)>,
    ) {
        match body {
            PreparedBody::Select(select) => {
                for rsn in &select.from {
                    self.walk_rsn(rsn, rv_tables, columns);
                }
                for item in &select.items {
                    self.walk_expr(&item.expr, rv_tables, columns);
                }
                for e in select
                    .where_clause
                    .iter()
                    .chain(select.group_by.iter())
                    .chain(select.having.iter())
                {
                    self.walk_expr(e, rv_tables, columns);
                }
            }
            PreparedBody::SetOp { left, right, .. } => {
                self.walk_body(left, rv_tables, columns);
                self.walk_body(right, rv_tables, columns);
            }
        }
    }

    fn walk_rsn(
        &mut self,
        rsn: &Rsn,
        rv_tables: &mut Vec<(String, String)>,
        columns: &mut Vec<(String, String)>,
    ) {
        match rsn {
            Rsn::Table { range_var, entry } => {
                let name = entry.schema.table_name.clone();
                self.tables
                    .entry(name.clone())
                    .or_insert_with(|| entry.schema.clone());
                rv_tables.push((range_var.clone(), name));
            }
            Rsn::Derived { query, .. } => self.walk_query(query, rv_tables, columns),
            Rsn::Join {
                left, right, on, ..
            } => {
                self.walk_rsn(left, rv_tables, columns);
                self.walk_rsn(right, rv_tables, columns);
                if let Some(on) = on {
                    self.walk_expr(on, rv_tables, columns);
                }
            }
        }
    }

    fn walk_expr(
        &mut self,
        expr: &TExpr,
        rv_tables: &mut Vec<(String, String)>,
        columns: &mut Vec<(String, String)>,
    ) {
        match &expr.kind {
            TExprKind::Column { range_var, column } => {
                columns.push((range_var.clone(), column.clone()));
            }
            TExprKind::Literal(l) => self.harvest(l),
            TExprKind::Parameter(n) => {
                self.param_types.entry(*n).or_insert(expr.ty);
            }
            TExprKind::Like { pattern, .. } => {
                // The pattern with wildcards resolved is a string that
                // *matches*; the defaults provide non-matching strings.
                if let TExprKind::Literal(Literal::String(p)) = &pattern.kind {
                    let resolved: String = p
                        .chars()
                        .filter(|c| *c != '%')
                        .map(|c| if c == '_' { 'x' } else { c })
                        .collect();
                    self.strings.insert(resolved);
                }
            }
            TExprKind::InSubquery { query, .. }
            | TExprKind::Exists { query, .. }
            | TExprKind::ScalarSubquery(query)
            | TExprKind::Quantified { query, .. } => {
                self.walk_query(query, rv_tables, columns);
            }
            _ => {}
        }
        expr.visit_children(&mut |child| self.walk_expr(child, rv_tables, columns));
    }

    fn harvest(&mut self, l: &Literal) {
        match l {
            Literal::Integer(i) => {
                self.ints.insert(*i);
                // The off-by-one neighbour makes strict-vs-inclusive
                // comparison boundaries observable.
                self.ints.insert(i.saturating_add(1));
            }
            Literal::Decimal(d) | Literal::Double(d) => {
                if !self.decimals.iter().any(|x| x.to_bits() == d.to_bits()) {
                    self.decimals.push(*d);
                }
            }
            Literal::String(s) => {
                self.strings.insert(s.clone());
            }
            Literal::Date(d) => {
                self.dates.insert(d.clone());
            }
            Literal::Null => {}
        }
    }

    /// Deterministic values for `?` parameters, typed from the stage-2
    /// annotation.
    fn parameter_values(&self) -> Vec<SqlValue> {
        let max = self.param_types.keys().copied().max().map_or(0, |m| m + 1);
        (0..max)
            .map(|i| match self.param_types.get(&i).copied().flatten() {
                Some(t) if t.is_character() => SqlValue::Str("a".to_string()),
                Some(SqlColumnType::Decimal) => SqlValue::Decimal(1.5),
                Some(SqlColumnType::Real) | Some(SqlColumnType::Double) => SqlValue::Double(1.5),
                Some(SqlColumnType::Date) => SqlValue::Date("2006-01-01".to_string()),
                Some(SqlColumnType::Boolean) => SqlValue::Bool(true),
                _ => SqlValue::Int(1),
            })
            .collect()
    }

    /// The value domain for one column. Untouched columns are pinned to
    /// a single value; touched columns draw from the harvested literals
    /// plus small defaults, NULL last when permitted.
    fn domain(&self, table: &str, col: &ColumnMeta) -> Vec<SqlValue> {
        let touched = self
            .touched
            .contains(&(table.to_string(), col.name.clone()));
        if !touched {
            return vec![if col.nullable {
                SqlValue::Null
            } else {
                pinned_value(col.sql_type)
            }];
        }
        let mut domain: Vec<SqlValue> = Vec::new();
        match col.sql_type {
            SqlColumnType::Smallint | SqlColumnType::Integer | SqlColumnType::Bigint => {
                domain.push(SqlValue::Int(0));
                domain.push(SqlValue::Int(1));
                for i in &self.ints {
                    if domain.len() >= 6 {
                        break;
                    }
                    if !matches!(i, 0 | 1) {
                        domain.push(SqlValue::Int(*i));
                    }
                }
            }
            SqlColumnType::Decimal => {
                domain.push(SqlValue::Decimal(0.0));
                domain.push(SqlValue::Decimal(1.5));
                // Integer literals compare against decimal columns all
                // the time (`CREDIT BETWEEN 35 AND 549`) — pool them in,
                // or such predicates are false on every witness.
                for d in self
                    .decimals
                    .iter()
                    .copied()
                    .chain(self.ints.iter().map(|i| *i as f64))
                {
                    if domain.len() >= 6 {
                        break;
                    }
                    if !domain.contains(&SqlValue::Decimal(d)) {
                        domain.push(SqlValue::Decimal(d));
                    }
                }
            }
            SqlColumnType::Real | SqlColumnType::Double => {
                domain.push(SqlValue::Double(0.0));
                domain.push(SqlValue::Double(1.5));
                for d in self
                    .decimals
                    .iter()
                    .copied()
                    .chain(self.ints.iter().map(|i| *i as f64))
                {
                    if domain.len() >= 6 {
                        break;
                    }
                    if !domain.contains(&SqlValue::Double(d)) {
                        domain.push(SqlValue::Double(d));
                    }
                }
            }
            SqlColumnType::Char | SqlColumnType::Varchar => {
                domain.push(SqlValue::Str(String::new()));
                domain.push(SqlValue::Str("a".to_string()));
                for s in &self.strings {
                    if domain.len() >= 6 {
                        break;
                    }
                    if !s.is_empty() && s != "a" {
                        domain.push(SqlValue::Str(s.clone()));
                    }
                }
            }
            SqlColumnType::Date => {
                // The sentinels sit below and above any plausible
                // harvested date, so strict-vs-inclusive boundaries on
                // date comparisons stay observable from both sides
                // (dates compare lexically in ISO form).
                domain.push(SqlValue::Date("1999-01-01".to_string()));
                domain.push(SqlValue::Date("2006-01-01".to_string()));
                for d in &self.dates {
                    if domain.len() >= 5 {
                        break;
                    }
                    if !domain.contains(&SqlValue::Date(d.clone())) {
                        domain.push(SqlValue::Date(d.clone()));
                    }
                }
                domain.push(SqlValue::Date("2099-12-31".to_string()));
            }
            SqlColumnType::Boolean => {
                domain.push(SqlValue::Bool(false));
                domain.push(SqlValue::Bool(true));
            }
        }
        if col.nullable {
            domain.push(SqlValue::Null);
        }
        domain
    }

    /// Enumerates witness databases in ascending total-row order: every
    /// combination of per-table row bags of size `0..=max_rows_per_table`
    /// drawn from diagonal samples of the column domains, truncated at
    /// `max_databases`. Within one total size, databases whose rows use
    /// *aligned* candidate indices come first: because the domains are
    /// pooled across columns and tables, rows at nearby indices carry
    /// matching join keys and boundary constants, so the distinguishing
    /// multi-table witnesses land inside the budget instead of behind a
    /// wall of unrelated cross products.
    fn enumerate_databases(&self, options: &ValidateOptions) -> Vec<Database> {
        let tables: Vec<(&String, &TableSchema)> = self.tables.iter().collect();
        if tables.is_empty() {
            // Table-free queries still get one (empty) database so the
            // two sides are compared at least once.
            return vec![Database::new()];
        }

        // Candidate rows per table: diagonal sampling over the domains,
        // so NULLs, duplicates-by-construction and harvested constants
        // all appear without a combinatorial product. Two interleaved
        // families — forward (`d[r + c]`) and backward (`d[r - c]`) —
        // because a single diagonal always pairs a column value with its
        // domain-order neighbour, leaving cross-column combinations
        // like (boundary constant, small join key) unreachable. `k`
        // grows to the longest domain so every value appears in some
        // candidate for every column, then the row count is capped by
        // how many tables multiply into each witness.
        let per_table_cap = match tables.len() {
            1 => 16,
            2 => 10,
            _ => 6,
        };
        let mut candidates: Vec<Vec<Vec<SqlValue>>> = Vec::with_capacity(tables.len());
        for (name, schema) in &tables {
            let domains: Vec<Vec<SqlValue>> = schema
                .columns
                .iter()
                .map(|c| self.domain(name, c))
                .collect();
            let longest = domains.iter().map(|d| d.len()).max().unwrap_or(1);
            let k = options.candidate_rows.max(1).max(longest);
            let mut rows: Vec<Vec<SqlValue>> = Vec::new();
            for r in 0..k {
                let forward: Vec<SqlValue> = domains
                    .iter()
                    .enumerate()
                    .map(|(c, d)| d[(r + c) % d.len()].clone())
                    .collect();
                if !rows.contains(&forward) {
                    rows.push(forward);
                }
                let backward: Vec<SqlValue> = domains
                    .iter()
                    .enumerate()
                    .map(|(c, d)| d[(r + d.len() - (c % d.len())) % d.len()].clone())
                    .collect();
                if !rows.contains(&backward) {
                    rows.push(backward);
                }
            }
            rows.truncate(per_table_cap.max(options.candidate_rows));
            candidates.push(rows);
        }

        // Per-table bags by size: [] | [i] | [i, j] | [i, j, l] with
        // i ≤ j ≤ l — duplicates included, for multiplicity witnesses;
        // size 3 makes `HAVING COUNT(*) >= 3`-style thresholds
        // reachable.
        let max_size = options.max_rows_per_table.min(3);
        let bags_by_size = |k: usize| -> Vec<Vec<Vec<usize>>> {
            let mut by_size = vec![vec![Vec::new()]];
            if max_size >= 1 {
                by_size.push((0..k).map(|i| vec![i]).collect());
            }
            if max_size >= 2 {
                let mut pairs = Vec::new();
                for i in 0..k {
                    for j in i..k {
                        pairs.push(vec![i, j]);
                    }
                }
                by_size.push(pairs);
            }
            if max_size >= 3 {
                let mut triples = Vec::new();
                for i in 0..k {
                    for j in i..k {
                        for l in j..k {
                            triples.push(vec![i, j, l]);
                        }
                    }
                }
                by_size.push(triples);
            }
            by_size
        };
        let table_bags: Vec<Vec<Vec<Vec<usize>>>> = candidates
            .iter()
            .map(|rows| bags_by_size(rows.len()))
            .collect();

        // Enumerate by ascending total rows so the first diverging
        // witness is minimal; within one total, sort by candidate-index
        // spread so aligned (join-compatible) row combinations come
        // before the long tail of unrelated products.
        let mut databases: Vec<Database> = Vec::new();
        let max_total: usize = table_bags.iter().map(|b| b.len() - 1).sum();
        for total in 0..=max_total {
            if databases.len() >= options.max_databases {
                break;
            }
            // All ways to split `total` rows over the tables.
            let mut splits: Vec<Vec<usize>> = Vec::new();
            let mut sizes = vec![0usize; tables.len()];
            fn split_rows(
                t: usize,
                remaining: usize,
                sizes: &mut Vec<usize>,
                table_bags: &[Vec<Vec<Vec<usize>>>],
                splits: &mut Vec<Vec<usize>>,
            ) {
                if t == sizes.len() {
                    if remaining == 0 {
                        splits.push(sizes.clone());
                    }
                    return;
                }
                let max_here = table_bags[t].len() - 1;
                for s in 0..=max_here.min(remaining) {
                    sizes[t] = s;
                    split_rows(t + 1, remaining - s, sizes, table_bags, splits);
                }
                sizes[t] = 0;
            }
            split_rows(0, total, &mut sizes, &table_bags, &mut splits);

            // One batch of (spread, bag choice per table) for the whole
            // total; stable sort keeps enumeration deterministic.
            let mut batch: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
            for split in &splits {
                let per_table: Vec<&Vec<Vec<usize>>> = split
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| &table_bags[i][s])
                    .collect();
                let mut idx = vec![0usize; per_table.len()];
                'product: loop {
                    let mut lo = usize::MAX;
                    let mut hi = 0usize;
                    for (i, &bag_i) in idx.iter().enumerate() {
                        for &row_i in &per_table[i][bag_i] {
                            lo = lo.min(row_i);
                            hi = hi.max(row_i);
                        }
                    }
                    let spread = if lo == usize::MAX { 0 } else { hi - lo };
                    batch.push((
                        spread,
                        idx.iter()
                            .enumerate()
                            .map(|(i, &bag_i)| (split[i], bag_i))
                            .collect(),
                    ));
                    let mut d = 0;
                    loop {
                        idx[d] += 1;
                        if idx[d] < per_table[d].len() {
                            break;
                        }
                        idx[d] = 0;
                        d += 1;
                        if d == idx.len() {
                            break 'product;
                        }
                    }
                }
            }
            batch.sort_by_key(|(spread, _)| *spread);
            for (_, choice) in batch {
                if databases.len() >= options.max_databases {
                    break;
                }
                let mut db = Database::new();
                for (i, (_, schema)) in tables.iter().enumerate() {
                    let (size, bag_i) = choice[i];
                    let mut table = Table::new((*schema).clone());
                    for &row_i in &table_bags[i][size][bag_i] {
                        table.insert(candidates[i][row_i].clone());
                    }
                    db.add_table(table);
                }
                if !respects_keys(&db, &options.key_columns) {
                    continue;
                }
                databases.push(db);
            }
        }
        databases
    }
}

/// Whether `db` satisfies the declared key constraints: within each
/// constrained table the key column's values are pairwise distinct,
/// counting NULL as a value (key semantics — at most one NULL-keyed
/// row), so `SELECT DISTINCT` over a projection containing the key can
/// never collapse two rows of these witnesses.
fn respects_keys(db: &Database, keys: &[(String, String)]) -> bool {
    for (table_name, column) in keys {
        let Some(table) = db.table(table_name) else {
            continue;
        };
        let Some(ci) = table.schema.columns.iter().position(|c| c.name == *column) else {
            continue;
        };
        for (i, row) in table.rows.iter().enumerate() {
            if table.rows[..i].iter().any(|other| other[ci] == row[ci]) {
                return false;
            }
        }
    }
    true
}

fn pinned_value(t: SqlColumnType) -> SqlValue {
    match t {
        SqlColumnType::Smallint | SqlColumnType::Integer | SqlColumnType::Bigint => {
            SqlValue::Int(7)
        }
        SqlColumnType::Decimal => SqlValue::Decimal(7.0),
        SqlColumnType::Real | SqlColumnType::Double => SqlValue::Double(7.0),
        SqlColumnType::Char | SqlColumnType::Varchar => SqlValue::Str("p".to_string()),
        SqlColumnType::Date => SqlValue::Date("2006-12-31".to_string()),
        SqlColumnType::Boolean => SqlValue::Bool(true),
    }
}

// ====================================================================
// Generated-query execution (the XQuery world)
// ====================================================================

/// Serves witness tables to the XQuery evaluator exactly as the driver's
/// `DspServer` does: one flat row element per row, NULL = absent child.
struct WitnessSource<'a> {
    db: &'a Database,
}

impl FunctionSource for WitnessSource<'_> {
    fn call(
        &self,
        _namespace: Option<&str>,
        local: &str,
        args: &[Sequence],
    ) -> Result<Sequence, XqError> {
        let table = self
            .db
            .table(local)
            .ok_or_else(|| XqError::new(format!("unknown data-service function {local}")))?;
        if !args.is_empty() {
            return Err(XqError::new(format!(
                "data-service function {local} takes no arguments"
            )));
        }
        let row_name = QName::prefixed("ns0".to_string(), table.schema.row_element.clone());
        let items: Vec<Item> = table
            .rows
            .iter()
            .map(|row| {
                Item::element(aldsp_xml::flat::build_row(
                    &row_name,
                    table
                        .schema
                        .columns
                        .iter()
                        .zip(row)
                        .map(|(c, v)| (c.name.as_str(), v.to_atomic())),
                ))
            })
            .collect();
        Ok(Sequence::from_items(items))
    }
}

/// Runs the generated program against a witness database and decodes the
/// transport payload (either transport) back into SQL rows.
fn run_generated(
    program: &Program,
    db: &Database,
    params: &[SqlValue],
    output: &[OutputColumn],
) -> Result<Vec<Vec<SqlValue>>, String> {
    let source = WitnessSource { db };
    let vars: Vec<(String, Sequence)> = params
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let seq = match v.to_atomic() {
                Some(a) => Sequence::singleton(a),
                None => Sequence::empty(),
            };
            (format!("sqlParam{}", i + 1), seq)
        })
        .collect();
    let result =
        evaluate_program_with(program, &source, &vars).map_err(|e| format!("evaluate: {e}"))?;
    decode_result(&result, output)
}

fn decode_result(result: &Sequence, output: &[OutputColumn]) -> Result<Vec<Vec<SqlValue>>, String> {
    let Some(item) = result.as_singleton() else {
        return Err(format!(
            "expected a singleton payload, got {} items",
            result.len()
        ));
    };
    match item {
        // Delimited transport: one string, §4's separators.
        Item::Atomic(Atomic::String(payload)) => {
            let raw = wrapper::parse_delimited(payload, output.len())?;
            raw.into_iter()
                .map(|row| {
                    row.into_iter()
                        .zip(output)
                        .map(|(cell, col)| decode_cell(cell, col.sql_type))
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect()
        }
        // XML transport: a RECORDSET element of RECORD rows.
        Item::Node(_) => {
            let element = item
                .as_element()
                .ok_or_else(|| "payload node is not an element".to_string())?;
            if element.name.local_part() != "RECORDSET" {
                return Err(format!(
                    "expected a RECORDSET payload, got <{}>",
                    element.name.local_part()
                ));
            }
            let mut rows = Vec::new();
            for record in element.children_named("RECORD") {
                let mut row = Vec::with_capacity(output.len());
                for col in output {
                    let cell = record
                        .children_named(&col.name)
                        .next()
                        .map(|e| e.string_value());
                    row.push(decode_cell(cell, col.sql_type)?);
                }
                rows.push(row);
            }
            Ok(rows)
        }
        Item::Atomic(other) => Err(format!("unexpected atomic payload {other:?}")),
    }
}

// ====================================================================
// Comparison and classification
// ====================================================================

/// Two cells agree when both are NULL or their grouping keys coincide
/// (tolerant of Int-vs-Decimal decode typing, like the differential
/// harness).
fn cells_agree(a: &SqlValue, b: &SqlValue) -> bool {
    match (a.is_null(), b.is_null()) {
        (true, true) => true,
        (true, false) | (false, true) => false,
        (false, false) => a.group_key() == b.group_key(),
    }
}

fn canonical_sort(rows: &mut [Vec<SqlValue>]) {
    rows.sort_by(|a, b| Relation::row_key(a).cmp(&Relation::row_key(b)));
}

fn classify(
    prepared: &PreparedQuery,
    db: &Database,
    reference: &Relation,
    generated: Result<Vec<Vec<SqlValue>>, String>,
) -> Option<Diagnostic> {
    let witness = render_db(db);
    let gen_rows = match generated {
        Ok(rows) => rows,
        Err(e) => {
            return Some(Diagnostic::new(
                DiagCode::V006,
                format!(
                    "the generated query failed where the reference succeeds ({e}) on witness {witness}"
                ),
            ));
        }
    };

    let mut ref_sorted = reference.rows.clone();
    let mut gen_sorted = gen_rows.clone();
    canonical_sort(&mut ref_sorted);
    canonical_sort(&mut gen_sorted);

    let bags_equal = ref_sorted.len() == gen_sorted.len()
        && ref_sorted
            .iter()
            .zip(&gen_sorted)
            .all(|(a, b)| a.iter().zip(b).all(|(x, y)| cells_agree(x, y)));

    if bags_equal {
        // Same bag — check the ORDER BY contract: consecutive generated
        // rows must be non-decreasing under the key spec (ties may
        // appear in any order, so only key ordering is checked).
        if !prepared.order_by.is_empty() {
            for pair in gen_rows.windows(2) {
                let mut ord = Ordering::Equal;
                for item in &prepared.order_by {
                    let o = pair[0][item.column].sort_cmp(&pair[1][item.column]);
                    let o = if item.ascending { o } else { o.reverse() };
                    if o != Ordering::Equal {
                        ord = o;
                        break;
                    }
                }
                if ord == Ordering::Greater {
                    return Some(Diagnostic::new(
                        DiagCode::V004,
                        format!(
                            "rows {} / {} violate the ORDER BY specification on witness {witness}",
                            render_row(&pair[0]),
                            render_row(&pair[1])
                        ),
                    ));
                }
            }
        }
        return None;
    }

    if ref_sorted.len() == gen_sorted.len() {
        // Equal cardinality: pair canonically and diff cells.
        let mut diffs: Vec<(usize, usize)> = Vec::new();
        for (ri, (a, b)) in ref_sorted.iter().zip(&gen_sorted).enumerate() {
            for (ci, (x, y)) in a.iter().zip(b).enumerate() {
                if !cells_agree(x, y) {
                    diffs.push((ri, ci));
                }
            }
        }
        let all_null_diffs = !diffs.is_empty()
            && diffs
                .iter()
                .all(|&(ri, ci)| ref_sorted[ri][ci].is_null() != gen_sorted[ri][ci].is_null());
        let detail = diffs
            .iter()
            .take(3)
            .map(|&(ri, ci)| {
                format!(
                    "column {} of row {}: reference {}, generated {}",
                    prepared.output.get(ci).map_or("?", |c| c.label.as_str()),
                    ri,
                    render_value(&ref_sorted[ri][ci]),
                    render_value(&gen_sorted[ri][ci])
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        let (code, label) = if all_null_diffs {
            (DiagCode::V003, "NULL handling diverges")
        } else {
            (DiagCode::V005, "column values diverge")
        };
        return Some(Diagnostic::new(
            code,
            format!("{label} ({detail}) on witness {witness}"),
        ));
    }

    // Unequal cardinality: same distinct rows → multiplicity; else rows
    // present on one side only.
    let key_set = |rows: &[Vec<SqlValue>]| -> BTreeSet<String> {
        rows.iter().map(|r| Relation::row_key(r)).collect()
    };
    let ref_keys = key_set(&ref_sorted);
    let gen_keys = key_set(&gen_sorted);
    if ref_keys == gen_keys {
        return Some(Diagnostic::new(
            DiagCode::V002,
            format!(
                "same distinct rows but reference has {} row(s) and generated {} on witness {witness}",
                ref_sorted.len(),
                gen_sorted.len()
            ),
        ));
    }
    let only_ref: Vec<String> = ref_sorted
        .iter()
        .filter(|r| !gen_keys.contains(&Relation::row_key(r)))
        .take(3)
        .map(|r| render_row(r))
        .collect();
    let only_gen: Vec<String> = gen_sorted
        .iter()
        .filter(|r| !ref_keys.contains(&Relation::row_key(r)))
        .take(3)
        .map(|r| render_row(r))
        .collect();
    Some(Diagnostic::new(
        DiagCode::V001,
        format!(
            "reference returns {} row(s), generated {}; reference-only rows [{}], generated-only rows [{}] on witness {witness}",
            ref_sorted.len(),
            gen_sorted.len(),
            only_ref.join(", "),
            only_gen.join(", ")
        ),
    ))
}

fn render_value(v: &SqlValue) -> String {
    match v {
        SqlValue::Null => "NULL".to_string(),
        SqlValue::Str(s) => format!("'{s}'"),
        other => other.display_text(),
    }
}

fn render_row(row: &[SqlValue]) -> String {
    format!(
        "({})",
        row.iter().map(render_value).collect::<Vec<_>>().join(", ")
    )
}

fn render_db(db: &Database) -> String {
    let mut names: Vec<&str> = db.table_names().collect();
    names.sort_unstable();
    let parts: Vec<String> = names
        .iter()
        .map(|name| {
            let table = db.table(name).expect("name from listing");
            let rows: Vec<String> = table.rows.iter().map(|r| render_row(r)).collect();
            format!("{name}{{{}}}", rows.join(" "))
        })
        .collect();
    format!("[{}]", parts.join("; "))
}
