//! # aldsp-analyzer — static analysis over the translation pipeline
//!
//! The paper's translator leans on structural discipline that is easy to
//! break silently: one query context per (sub)query block (§3.4.3), one
//! RSN per tabular abstraction (§3.4.2), deterministic
//! `var<ctx><zone><n>` variable naming and zone-ordered FLWOR assembly
//! (§3.5 (iv)). This crate re-verifies that discipline on every
//! translation:
//!
//! * **Layer 1** ([`ir_check`]) — invariants over the stage-1/stage-2 IR:
//!   context-id uniqueness, range-variable uniqueness per FROM, column
//!   resolution against the RSN scope chain, post-restructuring GROUP BY
//!   legality, projection/output and ORDER BY index integrity, set-op
//!   arity, and no stage-3-internal nodes. Codes `A001`–`A008`.
//! * **Layer 2** ([`xq_lint`]) — scope/def-use lint over the generated
//!   XQuery text: parseability, unbound variables, shadowing, dead `let`
//!   bindings, naming/zone conformance, and function-map conformance.
//!   Codes `A100`–`A106`.
//! * **Layer 3** ([`ty`]) — type flow and translation validation: a
//!   bottom-up re-inference of `(type, nullability)` over the prepared IR
//!   (SQL-92 promotion, aggregate typing, 3VL NULL propagation), an
//!   independent abstract interpretation of the *generated* XQuery's
//!   result type against the imported XML schemas, and a per-output-column
//!   diff between the two — plus a cross-check against the driver's
//!   result-set metadata. Codes `T001`–`T008`.
//! * **Layer 4** ([`cost`]) — catalog-seeded cardinality and cost
//!   estimation: a bottom-up estimator over the prepared IR (standard
//!   selectivity heuristics, a fuel-unit cost algebra mirroring the
//!   evaluator's FLWOR iteration) cross-checked by an independent fuel
//!   walk over the generated XQuery AST, emitting *advisory* performance
//!   lints — cartesian products, unpushed predicates, redundant
//!   DISTINCT/ORDER BY under unique keys, plan-cache-hostile NULL
//!   literals, row-cap blowups, large re-scans, per-row subqueries.
//!   Codes `P001`–`P008`; calibrated against measured evaluator fuel by
//!   harness E10.
//! * **Layer 5** ([`validate`]) — bounded equivalence validation: a
//!   reference relational interpreter executes the prepared IR under
//!   SQL-92 bag semantics while the generated XQuery runs through the
//!   real evaluator against the same enumerated witness databases
//!   (0–2 rows per table, NULL-bearing value domains seeded from the
//!   query's own literals); the decoded row bags are compared. A
//!   divergence is a *miscompilation witness*, reported as hard-error
//!   codes `V001`–`V006` carrying the minimal witness database. Teeth
//!   are measured by harness E11's seeded mutation kill rate.
//!
//! Entry points: [`analyze_sql`] runs the static pipeline on a SQL
//! string (used by the `analyze` bin and the workload harnesses;
//! [`analyze_sql_with`] takes explicit [`CostOptions`], and
//! [`analyze_sql_validated`] additionally runs layer 5 under
//! [`ValidateOptions`]); [`analyze_translation`] checks an existing
//! prepared query + generated text ([`analyze_translation_typed`] also
//! returns the inferred output typing); [`lint_program`]/[`lint_text`]
//! run layer 2 alone;
//! [`ty::check_types`]/[`ty::check_translation`]/[`ty::check_metadata`]
//! run layer 3 piecewise; [`cost::check_cost`]/[`cost::estimate_prepared`]
//! run layer 4 alone; [`validate::check_equivalence`] /
//! [`validate::validate_translation`] /
//! [`validate::execute_reference`] run layer 5 piecewise. With the
//! `debug-analyze` feature, [`install_debug_validator`] hooks the
//! *correctness* layers (1–3, plus a quick-budget layer-5 pass when the
//! static layers are clean) into `core::stage3` so every generation in
//! a test build re-checks itself and fails hard on findings — layer 4
//! stays out of the validator because its findings are advisory and
//! test workloads run expensive queries on purpose.

pub mod cost;
pub mod diag;
pub mod ir_check;
pub mod report;
pub mod ty;
pub mod validate;
pub mod xq_lint;

pub use cost::{check_cost, estimate_prepared, CostOptions, CostReport, Estimate};
pub use diag::{DiagCode, Diagnostic, Severity};
pub use ir_check::check_prepared;
pub use report::{
    analyze_sql, analyze_sql_validated, analyze_sql_with, analyze_translation,
    analyze_translation_typed, analyze_translation_typed_with, Analysis, TranslationReport,
};
pub use ty::{
    check_metadata, check_translation, check_types, InferredColumn, ReportedColumn, TypeFlow,
};
pub use validate::{
    check_equivalence, execute_reference, validate_translation, ValidateOptions, ValidationOutcome,
};
pub use xq_lint::{lint_program, lint_text};

/// Installs the analyzer into `core::stage3`'s debug validation slot:
/// from then on, every `stage3::generate` in this process re-checks its
/// own output (both layers, on the unwrapped query text) and fails the
/// translation with a semantic error when diagnostics are found.
/// Idempotent; test harnesses call it unconditionally.
#[cfg(feature = "debug-analyze")]
pub fn install_debug_validator() {
    aldsp_core::stage3::debug_validate::install(validate_generated);
}

#[cfg(feature = "debug-analyze")]
fn validate_generated(
    prepared: &aldsp_core::ir::PreparedQuery,
    generated: &aldsp_core::stage3::Generated,
) -> Vec<String> {
    let text = generated.clone().into_query_text();
    let report = analyze_translation(prepared, &text);
    // Correctness layers only: advisory `P` findings must not fail a
    // translation (chaos/governance tests execute cartesian stressors
    // and NULL-literal predicates deliberately).
    let mut findings: Vec<String> = report
        .ir
        .iter()
        .chain(report.xquery.iter())
        .chain(report.types.iter())
        .map(|d| d.to_string())
        .collect();
    // Layer 5 under the quick budget, only once the static layers are
    // clean (a statically broken program would just produce a noisier
    // `V006` for the same root cause). `V` findings are hard errors too:
    // an inequivalence witness is a miscompilation.
    if findings.is_empty() {
        findings.extend(
            validate::check_equivalence(prepared, &text, &validate::ValidateOptions::quick())
                .iter()
                .map(|d| d.to_string()),
        );
    }
    findings
}
