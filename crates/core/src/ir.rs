//! The prepared intermediate representation stage two hands to stage
//! three: resultset nodes (RSNs) and typed expressions.
//!
//! "A typed view node is created for each query (or subquery), each join
//! operation on two views, each set operation on two queries, and each
//! table ... All RSNs are of the same type and represent a tabular view of
//! data" (paper §3.4.2). [`Rsn`] is that node; [`RsnColumn`] is the
//! uniform column surface every RSN exposes for resolution requests.

use aldsp_catalog::{SqlColumnType, TableEntry};
use aldsp_sql::{CompareOp, JoinKind, Literal, Quantifier, SetOp, TrimSide};
use std::sync::Arc;

/// One output column of a (sub)query — result-set metadata plus the
/// element name used in generated `<RECORD>` rows.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputColumn {
    /// Output name (alias, column name, or generated `EXPRn`). This is
    /// also the result element's name, qualified with the source range
    /// variable when the paper's examples do so (`CUSTOMERS.CUSTOMERID`).
    pub name: String,
    /// The bare column label (what JDBC metadata reports).
    pub label: String,
    /// Inferred type; `None` when statically unknown.
    pub sql_type: Option<SqlColumnType>,
    /// Whether NULL can appear.
    pub nullable: bool,
}

/// A prepared query: body plus resolved ORDER BY.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedQuery {
    /// The body.
    pub body: PreparedBody,
    /// Resolved ordering: indices into `output`.
    pub order_by: Vec<PreparedOrder>,
    /// Output columns (the body's output; shared here for convenience).
    pub output: Vec<OutputColumn>,
}

/// One resolved ORDER BY item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreparedOrder {
    /// Index into the output columns.
    pub column: usize,
    /// Ascending unless `DESC`.
    pub ascending: bool,
}

/// A prepared query body.
#[derive(Debug, Clone, PartialEq)]
pub enum PreparedBody {
    /// A SELECT block.
    Select(Box<PreparedSelect>),
    /// A set operation of two bodies (a set-operation RSN).
    SetOp {
        /// Left operand.
        left: Box<PreparedBody>,
        /// The operation.
        op: SetOp,
        /// Bag (`ALL`) semantics.
        all: bool,
        /// Right operand.
        right: Box<PreparedBody>,
        /// Output columns (the left operand's, per SQL-92).
        output: Vec<OutputColumn>,
    },
}

impl PreparedBody {
    /// The body's output columns.
    pub fn output(&self) -> &[OutputColumn] {
        match self {
            PreparedBody::Select(s) => &s.output,
            PreparedBody::SetOp { output, .. } => output,
        }
    }
}

/// A prepared SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedSelect {
    /// The query-context id (paper §3.4.3); embedded in generated variable
    /// names.
    pub ctx_id: u32,
    /// `DISTINCT`.
    pub distinct: bool,
    /// Projection items, wildcards already expanded.
    pub items: Vec<PreparedItem>,
    /// The FROM clause: one RSN per comma-separated reference.
    pub from: Vec<Rsn>,
    /// WHERE predicate.
    pub where_clause: Option<TExpr>,
    /// GROUP BY keys.
    pub group_by: Vec<TExpr>,
    /// HAVING predicate.
    pub having: Option<TExpr>,
    /// True when grouping applies (explicit GROUP BY or aggregates in the
    /// projection/HAVING).
    pub grouped: bool,
    /// Output columns.
    pub output: Vec<OutputColumn>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedItem {
    /// The value expression.
    pub expr: TExpr,
    /// Index into the select's output columns.
    pub output: usize,
}

/// A resultset node: every tabular abstraction in the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Rsn {
    /// A base table — a parameterless data-service function.
    Table {
        /// Range variable (alias or table name).
        range_var: String,
        /// Catalog entry (function name, namespace, schema).
        entry: Arc<TableEntry>,
    },
    /// A derived table (subquery with alias).
    Derived {
        /// Range variable.
        range_var: String,
        /// The prepared subquery.
        query: Box<PreparedQuery>,
    },
    /// A join of two RSNs. `RIGHT OUTER` keeps its operand order here
    /// (so wildcard expansion sees SQL's column order) and is generated
    /// as a LEFT OUTER with swapped operands in stage three.
    Join {
        /// Join kind.
        kind: JoinKind,
        /// Left operand.
        left: Box<Rsn>,
        /// Right operand.
        right: Box<Rsn>,
        /// Translated ON predicate.
        on: Option<TExpr>,
    },
}

/// One column a RSN exposes.
#[derive(Debug, Clone, PartialEq)]
pub struct RsnColumn {
    /// Owning range variable.
    pub range_var: String,
    /// Column name.
    pub name: String,
    /// Declared/inferred type.
    pub sql_type: Option<SqlColumnType>,
    /// NULL permitted (outer-join padding forces `true`).
    pub nullable: bool,
}

impl Rsn {
    /// The columns this view exposes, in order (the uniform resolution
    /// surface of paper §3.4.2).
    pub fn columns(&self) -> Vec<RsnColumn> {
        match self {
            Rsn::Table { range_var, entry } => entry
                .schema
                .columns
                .iter()
                .map(|c| RsnColumn {
                    range_var: range_var.clone(),
                    name: c.name.clone(),
                    sql_type: Some(c.sql_type),
                    nullable: c.nullable,
                })
                .collect(),
            Rsn::Derived { range_var, query } => query
                .output
                .iter()
                .map(|o| RsnColumn {
                    range_var: range_var.clone(),
                    name: o.label.clone(),
                    sql_type: o.sql_type,
                    nullable: o.nullable,
                })
                .collect(),
            Rsn::Join {
                kind, left, right, ..
            } => {
                let mut cols = left.columns();
                let mut right_cols = right.columns();
                match kind {
                    JoinKind::LeftOuter => {
                        for c in &mut right_cols {
                            c.nullable = true;
                        }
                    }
                    JoinKind::RightOuter => {
                        for c in &mut cols {
                            c.nullable = true;
                        }
                    }
                    JoinKind::FullOuter => {
                        for c in cols.iter_mut().chain(right_cols.iter_mut()) {
                            c.nullable = true;
                        }
                    }
                    _ => {}
                }
                cols.extend(right_cols);
                cols
            }
        }
    }

    /// The range variables bound by this RSN subtree.
    pub fn range_vars(&self) -> Vec<&str> {
        match self {
            Rsn::Table { range_var, .. } | Rsn::Derived { range_var, .. } => {
                vec![range_var.as_str()]
            }
            Rsn::Join { left, right, .. } => {
                let mut v = left.range_vars();
                v.extend(right.range_vars());
                v
            }
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl AggFunc {
    /// Parses a SQL aggregate name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            _ => return None,
        })
    }
}

/// A typed expression: resolved columns, inferred types.
#[derive(Debug, Clone, PartialEq)]
pub struct TExpr {
    /// The node.
    pub kind: TExprKind,
    /// Inferred SQL type; `None` when statically unknown (NULL literal,
    /// parameters).
    pub ty: Option<SqlColumnType>,
    /// Whether the value can be NULL.
    pub nullable: bool,
}

/// Typed expression nodes.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum TExprKind {
    /// A resolved column reference.
    Column {
        /// The owning range variable (resolution winner).
        range_var: String,
        /// Column name.
        column: String,
    },
    /// A literal.
    Literal(Literal),
    /// `?` by zero-based ordinal.
    Parameter(usize),
    /// Unary minus.
    Neg(Box<TExpr>),
    /// Logical NOT.
    Not(Box<TExpr>),
    /// Arithmetic.
    Arith {
        /// `+ - * /`.
        op: ArithOp,
        /// Left operand.
        left: Box<TExpr>,
        /// Right operand.
        right: Box<TExpr>,
    },
    /// `||`.
    Concat(Box<TExpr>, Box<TExpr>),
    /// Comparison.
    Compare {
        /// Operator.
        op: CompareOp,
        /// Left operand.
        left: Box<TExpr>,
        /// Right operand.
        right: Box<TExpr>,
    },
    /// `AND`.
    And(Box<TExpr>, Box<TExpr>),
    /// `OR`.
    Or(Box<TExpr>, Box<TExpr>),
    /// A scalar function call (UPPER, CONCAT, COALESCE, ...).
    ScalarFn {
        /// Uppercased SQL name.
        name: String,
        /// Arguments.
        args: Vec<TExpr>,
    },
    /// An aggregate call.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// `DISTINCT` inside the call.
        distinct: bool,
        /// Argument; `None` for `COUNT(*)`.
        arg: Option<Box<TExpr>>,
    },
    /// `CASE`.
    Case {
        /// Simple-CASE operand.
        operand: Option<Box<TExpr>>,
        /// `(WHEN, THEN)` pairs.
        branches: Vec<(TExpr, TExpr)>,
        /// `ELSE`.
        else_result: Option<Box<TExpr>>,
    },
    /// `CAST(e AS t)`.
    Cast {
        /// Operand.
        expr: Box<TExpr>,
        /// Target type class.
        target: SqlColumnType,
    },
    /// `IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<TExpr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `[NOT] BETWEEN`.
    Between {
        /// Operand.
        expr: Box<TExpr>,
        /// Low bound.
        low: Box<TExpr>,
        /// High bound.
        high: Box<TExpr>,
        /// Negated.
        negated: bool,
    },
    /// `[NOT] IN (list)`.
    InList {
        /// Operand.
        expr: Box<TExpr>,
        /// Candidates.
        list: Vec<TExpr>,
        /// Negated.
        negated: bool,
    },
    /// `[NOT] IN (subquery)`.
    InSubquery {
        /// Operand.
        expr: Box<TExpr>,
        /// The subquery.
        query: Box<PreparedQuery>,
        /// Negated.
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// The subquery.
        query: Box<PreparedQuery>,
        /// Negated.
        negated: bool,
    },
    /// Scalar subquery.
    ScalarSubquery(Box<PreparedQuery>),
    /// Quantified comparison.
    Quantified {
        /// Left operand.
        expr: Box<TExpr>,
        /// Operator.
        op: CompareOp,
        /// `ANY` vs `ALL`.
        quantifier: Quantifier,
        /// The subquery.
        query: Box<PreparedQuery>,
    },
    /// `[NOT] LIKE`.
    Like {
        /// Operand.
        expr: Box<TExpr>,
        /// Pattern.
        pattern: Box<TExpr>,
        /// Escape character expression.
        escape: Option<Box<TExpr>>,
        /// Negated.
        negated: bool,
    },
    /// `SUBSTRING`.
    Substring {
        /// Source.
        expr: Box<TExpr>,
        /// 1-based start.
        start: Box<TExpr>,
        /// Length.
        length: Option<Box<TExpr>>,
    },
    /// `TRIM`.
    Trim {
        /// Side.
        side: TrimSide,
        /// Pad character.
        trim_chars: Option<Box<TExpr>>,
        /// Source.
        expr: Box<TExpr>,
    },
    /// `POSITION`.
    Position {
        /// Needle.
        needle: Box<TExpr>,
        /// Haystack.
        haystack: Box<TExpr>,
    },
    /// Stage-3 internal: an already-generated XQuery snippet (typed,
    /// atomized). Produced by the grouped-projection rewrite that replaces
    /// group keys with their bound `$var<ctx>GB<n>` variables and
    /// aggregate calls with their generated expressions. Never produced by
    /// stage two.
    Generated {
        /// The XQuery text.
        xquery: String,
    },
}

/// Arithmetic operators (SQL side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl TExpr {
    /// Wraps a kind with type info.
    pub fn new(kind: TExprKind, ty: Option<SqlColumnType>, nullable: bool) -> TExpr {
        TExpr { kind, ty, nullable }
    }

    /// True when this node *is* an aggregate call.
    pub fn is_aggregate(&self) -> bool {
        matches!(self.kind, TExprKind::Aggregate { .. })
    }

    /// True when an aggregate call appears anywhere in this tree (not
    /// descending into subqueries).
    pub fn contains_aggregate(&self) -> bool {
        if self.is_aggregate() {
            return true;
        }
        let mut found = false;
        self.visit_children(&mut |c| {
            if c.contains_aggregate() {
                found = true;
            }
        });
        found
    }

    /// Visits direct child expressions (not subqueries).
    pub fn visit_children(&self, visit: &mut dyn FnMut(&TExpr)) {
        use TExprKind::*;
        match &self.kind {
            Column { .. } | Literal(_) | Parameter(_) | Generated { .. } => {}
            Neg(e) | Not(e) | Cast { expr: e, .. } | IsNull { expr: e, .. } => visit(e),
            Arith { left, right, .. }
            | Concat(left, right)
            | Compare { left, right, .. }
            | And(left, right)
            | Or(left, right) => {
                visit(left);
                visit(right);
            }
            ScalarFn { args, .. } => args.iter().for_each(&mut *visit),
            Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    visit(a);
                }
            }
            Case {
                operand,
                branches,
                else_result,
            } => {
                if let Some(o) = operand {
                    visit(o);
                }
                for (w, t) in branches {
                    visit(w);
                    visit(t);
                }
                if let Some(e) = else_result {
                    visit(e);
                }
            }
            Between {
                expr, low, high, ..
            } => {
                visit(expr);
                visit(low);
                visit(high);
            }
            InList { expr, list, .. } => {
                visit(expr);
                list.iter().for_each(&mut *visit);
            }
            InSubquery { expr, .. } | Quantified { expr, .. } => visit(expr),
            Exists { .. } | ScalarSubquery(_) => {}
            Like {
                expr,
                pattern,
                escape,
                ..
            } => {
                visit(expr);
                visit(pattern);
                if let Some(e) = escape {
                    visit(e);
                }
            }
            Substring {
                expr,
                start,
                length,
            } => {
                visit(expr);
                visit(start);
                if let Some(l) = length {
                    visit(l);
                }
            }
            Trim {
                trim_chars, expr, ..
            } => {
                if let Some(c) = trim_chars {
                    visit(c);
                }
                visit(expr);
            }
            Position { needle, haystack } => {
                visit(needle);
                visit(haystack);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_catalog::{ColumnMeta, QualifiedTableName, TableSchema};

    fn entry() -> Arc<TableEntry> {
        Arc::new(TableEntry {
            qualified: QualifiedTableName {
                catalog: "APP".into(),
                schema: "P.DS".into(),
                table: "T".into(),
            },
            ds_path: "P/DS".into(),
            schema: TableSchema {
                table_name: "T".into(),
                row_element: "T".into(),
                namespace: "ld:P/T".into(),
                schema_location: "ld:P/schemas/T.xsd".into(),
                columns: vec![
                    ColumnMeta::new("A", SqlColumnType::Integer, false),
                    ColumnMeta::new("B", SqlColumnType::Varchar, true),
                ],
            },
        })
    }

    #[test]
    fn table_rsn_columns() {
        let rsn = Rsn::Table {
            range_var: "X".into(),
            entry: entry(),
        };
        let cols = rsn.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].range_var, "X");
        assert!(!cols[0].nullable);
    }

    #[test]
    fn outer_join_forces_nullability() {
        let join = Rsn::Join {
            kind: JoinKind::LeftOuter,
            left: Box::new(Rsn::Table {
                range_var: "L".into(),
                entry: entry(),
            }),
            right: Box::new(Rsn::Table {
                range_var: "R".into(),
                entry: entry(),
            }),
            on: None,
        };
        let cols = join.columns();
        assert_eq!(cols.len(), 4);
        assert!(!cols[0].nullable); // left A stays NOT NULL
        assert!(cols[2].nullable); // right A becomes nullable
        assert_eq!(join.range_vars(), vec!["L", "R"]);
    }
}
