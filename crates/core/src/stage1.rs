//! Stage one: lexical analysis, parsing, and query-context assignment.
//!
//! "The first stage performs the SQL recognition and builds an abstract
//! syntax tree of nodes representing the SQL query ... At this stage, all
//! of the context information useful for further processing is captured"
//! (paper §3.4.1). The SQL front end lives in `aldsp-sql`; this module
//! assigns a context id to every query block (paper Figure 4's CTX0/CTX1
//! numbering) and counts parameter markers.

use crate::error::TranslateError;
use aldsp_sql::{parse_select, Expr, Query, QueryBody, Select, TableRef};

/// The stage-one result: the AST plus captured context information.
#[derive(Debug, Clone)]
pub struct ParsedStatement {
    /// The parsed query.
    pub query: Query,
    /// One entry per query block, outermost first; `contexts[i]` describes
    /// the block with ctx id `i + 1` (ctx 0 is the outer marker scope —
    /// paper Figure 5's CTX0).
    pub contexts: Vec<ContextInfo>,
    /// Number of `?` markers.
    pub parameter_count: usize,
}

/// Captured per-context information (paper §3.4.3: "examples of the
/// information stored in contexts are (sub)query identification, the
/// presence of aggregates, information about parent queries").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextInfo {
    /// 1-based context id.
    pub id: u32,
    /// Parent context id (0 for the outermost query).
    pub parent: u32,
    /// Whether the block's projection or HAVING contains aggregates.
    pub has_aggregates: bool,
    /// Whether the block has a GROUP BY clause.
    pub has_group_by: bool,
    /// Number of FROM items.
    pub from_items: usize,
}

/// Runs stage one.
pub fn parse(sql: &str) -> Result<ParsedStatement, TranslateError> {
    let query = parse_select(sql)?;
    let mut contexts = Vec::new();
    let mut counter = 0u32;
    assign_query(&query, 0, &mut counter, &mut contexts);
    let parameter_count = count_parameters(&query);
    Ok(ParsedStatement {
        query,
        contexts,
        parameter_count,
    })
}

fn assign_query(query: &Query, parent: u32, counter: &mut u32, out: &mut Vec<ContextInfo>) {
    assign_body(&query.body, parent, counter, out);
}

fn assign_body(body: &QueryBody, parent: u32, counter: &mut u32, out: &mut Vec<ContextInfo>) {
    match body {
        QueryBody::Select(select) => assign_select(select, parent, counter, out),
        QueryBody::SetOp { left, right, .. } => {
            assign_body(left, parent, counter, out);
            assign_body(right, parent, counter, out);
        }
    }
}

fn assign_select(select: &Select, parent: u32, counter: &mut u32, out: &mut Vec<ContextInfo>) {
    *counter += 1;
    let id = *counter;
    let has_aggregates = select.items.iter().any(|item| match item {
        aldsp_sql::SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        _ => false,
    }) || select
        .having
        .as_ref()
        .is_some_and(|h| h.contains_aggregate());
    out.push(ContextInfo {
        id,
        parent,
        has_aggregates,
        has_group_by: !select.group_by.is_empty(),
        from_items: select.from.len(),
    });

    // Subqueries in FROM.
    for table_ref in &select.from {
        assign_table_ref(table_ref, id, counter, out);
    }
    // Subqueries in expressions.
    let mut visit_expr = |e: &Expr| visit_expr_queries(e, id, counter, out);
    for item in &select.items {
        if let aldsp_sql::SelectItem::Expr { expr, .. } = item {
            visit_expr(expr);
        }
    }
    if let Some(w) = &select.where_clause {
        visit_expr(w);
    }
    for g in &select.group_by {
        visit_expr(g);
    }
    if let Some(h) = &select.having {
        visit_expr(h);
    }
}

fn assign_table_ref(
    table_ref: &TableRef,
    parent: u32,
    counter: &mut u32,
    out: &mut Vec<ContextInfo>,
) {
    match table_ref {
        TableRef::Table { .. } => {}
        TableRef::Derived { query, .. } => assign_query(query, parent, counter, out),
        TableRef::Join {
            left, right, on, ..
        } => {
            assign_table_ref(left, parent, counter, out);
            assign_table_ref(right, parent, counter, out);
            if let Some(on) = on {
                visit_expr_queries(on, parent, counter, out);
            }
        }
    }
}

fn visit_expr_queries(expr: &Expr, parent: u32, counter: &mut u32, out: &mut Vec<ContextInfo>) {
    match expr {
        Expr::InSubquery { query, .. }
        | Expr::Exists { query, .. }
        | Expr::Quantified { query, .. } => assign_query(query, parent, counter, out),
        Expr::ScalarSubquery(query) => assign_query(query, parent, counter, out),
        other => other.visit_children(&mut |child| visit_expr_queries(child, parent, counter, out)),
    }
}

fn count_parameters(query: &Query) -> usize {
    // Parameter ordinals were assigned in source order by the parser; the
    // count is one past the highest ordinal.
    let mut max: Option<usize> = None;
    walk_query_exprs(query, &mut |e| {
        if let Expr::Parameter(n) = e {
            max = Some(max.map_or(*n, |m| m.max(*n)));
        }
    });
    max.map_or(0, |m| m + 1)
}

/// Calls `visit` on every expression in the query, including inside
/// subqueries.
pub fn walk_query_exprs(query: &Query, visit: &mut dyn FnMut(&Expr)) {
    fn walk_expr(expr: &Expr, visit: &mut dyn FnMut(&Expr)) {
        visit(expr);
        expr.visit_children(&mut |child| walk_expr(child, visit));
        match expr {
            Expr::InSubquery { query, .. }
            | Expr::Exists { query, .. }
            | Expr::Quantified { query, .. } => walk_query_exprs(query, visit),
            Expr::ScalarSubquery(query) => walk_query_exprs(query, visit),
            _ => {}
        }
    }
    fn walk_body(body: &QueryBody, visit: &mut dyn FnMut(&Expr)) {
        match body {
            QueryBody::Select(select) => {
                for item in &select.items {
                    if let aldsp_sql::SelectItem::Expr { expr, .. } = item {
                        walk_expr(expr, visit);
                    }
                }
                for table_ref in &select.from {
                    walk_table(table_ref, visit);
                }
                if let Some(w) = &select.where_clause {
                    walk_expr(w, visit);
                }
                for g in &select.group_by {
                    walk_expr(g, visit);
                }
                if let Some(h) = &select.having {
                    walk_expr(h, visit);
                }
            }
            QueryBody::SetOp { left, right, .. } => {
                walk_body(left, visit);
                walk_body(right, visit);
            }
        }
    }
    fn walk_table(table_ref: &TableRef, visit: &mut dyn FnMut(&Expr)) {
        match table_ref {
            TableRef::Table { .. } => {}
            TableRef::Derived { query, .. } => walk_query_exprs(query, visit),
            TableRef::Join {
                left, right, on, ..
            } => {
                walk_table(left, visit);
                walk_table(right, visit);
                if let Some(on) = on {
                    walk_expr(on, visit);
                }
            }
        }
    }
    walk_body(&query.body, visit);
    for item in &query.order_by {
        walk_expr(&item.expr, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_three_contexts() {
        // Paper Figure 4: SELECT over a subquery over a subquery — three
        // contexts (plus the CTX0 marker, which is implicit as parent 0).
        let parsed = parse(
            "SELECT * FROM (SELECT ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS) AS INNER1) AS MID",
        )
        .unwrap();
        assert_eq!(parsed.contexts.len(), 3);
        assert_eq!(parsed.contexts[0].parent, 0);
        assert_eq!(parsed.contexts[1].parent, 1);
        assert_eq!(parsed.contexts[2].parent, 2);
    }

    #[test]
    fn aggregates_flagged_per_context() {
        let parsed =
            parse("SELECT COUNT(*) FROM (SELECT A FROM T) AS S WHERE EXISTS (SELECT B FROM U)")
                .unwrap();
        let outer = &parsed.contexts[0];
        assert!(outer.has_aggregates);
        // The FROM subquery and the EXISTS subquery have no aggregates.
        assert!(parsed.contexts[1..].iter().all(|c| !c.has_aggregates));
    }

    #[test]
    fn parameters_counted() {
        let parsed =
            parse("SELECT A FROM T WHERE B = ? AND C IN (SELECT D FROM U WHERE E > ?)").unwrap();
        assert_eq!(parsed.parameter_count, 2);
    }

    #[test]
    fn set_op_contexts_share_parent() {
        let parsed = parse("SELECT A FROM T UNION SELECT B FROM U").unwrap();
        assert_eq!(parsed.contexts.len(), 2);
        assert_eq!(parsed.contexts[0].parent, 0);
        assert_eq!(parsed.contexts[1].parent, 0);
    }

    #[test]
    fn syntax_errors_rejected_immediately() {
        let err = parse("SELECT FROM WHERE").unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::Syntax);
        assert!(err.offset.is_some());
    }
}
