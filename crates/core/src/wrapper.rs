//! The §4 result-handling wrapper.
//!
//! "Performance could be measurably improved if we replaced XML as the
//! return type ... with a more compact format ... The result data is
//! actually returned as text interspersed with column and row separators"
//! (paper §4). The wrapper query surrounds the translated query — keeping
//! "a clean separation between JDBC result handling logic and the more
//! complex SQL to XQuery translation logic" — and emits, per row, a
//! column-separator + value pair per column followed by a row separator:
//!
//! ```text
//! >55>Joe<>23>Sue<
//! ```
//!
//! Values pass through `fn-bea:serialize-atomic` and `fn-bea:xml-escape`,
//! so separator characters inside data arrive as `&gt;`/`&lt;` entities
//! and cannot split fields. `fn-bea:if-empty` substitutes a NULL marker
//! for absent values — the paper substitutes the empty string, conflating
//! NULL with `''`; we use an out-of-band marker (`\u{0}`) so the driver
//! can preserve the distinction the relational oracle requires (see
//! DESIGN.md §2).

use crate::ir::PreparedQuery;
use crate::stage3::Generated;
use std::fmt::Write as _;

/// Column separator: precedes every column value.
pub const COLUMN_SEPARATOR: char = '>';

/// Row separator: terminates every row.
pub const ROW_SEPARATOR: char = '<';

/// NULL marker substituted by `fn-bea:if-empty` for absent values. NUL
/// cannot legally appear in XML content, and `fn-bea:xml-escape` output
/// never contains it, so it is collision-free for any data that survived
/// the XML layer.
pub const NULL_MARKER: &str = "\u{0}";

/// Wraps a generated query in the delimited-text transport.
pub fn wrap_delimited(generated: Generated, prepared: &PreparedQuery) -> String {
    let mut out = String::new();
    if !generated.prolog.is_empty() {
        out.push_str(&generated.prolog);
        out.push('\n');
    }
    out.push_str("fn:string-join((\nlet $actualQuery := ");
    out.push_str(&generated.body);
    out.push_str("\nfor $tokenQuery in $actualQuery/RECORD\nreturn (");
    for column in &prepared.output {
        let _ = write!(
            out,
            "\"{COLUMN_SEPARATOR}\",\nfn-bea:if-empty(fn-bea:xml-escape(fn-bea:serialize-atomic(fn:data($tokenQuery/{}))), \"&#0;\"),\n",
            column.name
        );
    }
    let _ = write!(out, "\"{ROW_SEPARATOR}\")), \"\")");
    out
}

/// Parses one delimited-text result payload back into rows of optional
/// strings (`None` = SQL NULL). This is the driver-side inverse of
/// [`wrap_delimited`]'s output format; it lives here so the format's two
/// halves stay in one module.
pub fn parse_delimited(
    payload: &str,
    column_count: usize,
) -> Result<Vec<Vec<Option<String>>>, String> {
    let mut rows = Vec::new();
    let mut rest = payload;
    while !rest.is_empty() {
        let mut row = Vec::with_capacity(column_count);
        for i in 0..column_count {
            let Some(stripped) = rest.strip_prefix(COLUMN_SEPARATOR) else {
                return Err(format!(
                    "malformed delimited payload: expected column separator before column {}",
                    i + 1
                ));
            };
            rest = stripped;
            let end = rest
                .find([COLUMN_SEPARATOR, ROW_SEPARATOR])
                .ok_or_else(|| "malformed delimited payload: unterminated value".to_string())?;
            let raw = &rest[..end];
            rest = &rest[end..];
            if raw == NULL_MARKER {
                row.push(None);
            } else {
                row.push(Some(aldsp_xml::escape::unescape(raw)));
            }
        }
        let Some(stripped) = rest.strip_prefix(ROW_SEPARATOR) else {
            return Err("malformed delimited payload: missing row separator".to_string());
        };
        rest = stripped;
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_with_nulls_and_separators() {
        // A payload as the wrapper produces: escaped separators inside
        // values, NULL marker for an absent value.
        let payload = format!(">55>Acme &gt; Widget<>23>{NULL_MARKER}<");
        let rows = parse_delimited(&payload, 2).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0].as_deref(), Some("55"));
        assert_eq!(rows[0][1].as_deref(), Some("Acme > Widget"));
        assert_eq!(rows[1][1], None);
    }

    #[test]
    fn empty_payload_is_zero_rows() {
        assert_eq!(parse_delimited("", 3).unwrap().len(), 0);
    }

    #[test]
    fn empty_string_distinct_from_null() {
        let payload = ">>x<";
        let rows = parse_delimited(payload, 2).unwrap();
        assert_eq!(rows[0][0].as_deref(), Some(""));
        assert_eq!(rows[0][1].as_deref(), Some("x"));
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(parse_delimited("55>Joe<", 2).is_err()); // missing leading sep
        assert!(parse_delimited(">55", 1).is_err()); // unterminated
        assert!(parse_delimited(">55>Joe", 2).is_err()); // no row separator
    }
}
