//! Stage three: XQuery generation.
//!
//! "Stage-three uses a tree-walker to traverse the result of stage-two and
//! serialize it into XQuery. Each RSN translates itself into an XQuery
//! expression using information from the associated query contexts"
//! (paper §3.5). The generated patterns follow the paper's examples:
//!
//! * tables → `for $var<ctx>FR<n> in ns<k>:FUNC()` (Example 6);
//! * derived tables and other views → `let $tempvar... := <RECORDSET>…`
//!   then `for $var... in $tempvar/RECORD` (Example 8);
//! * inner joins → a "double for" with the condition in `where`
//!   (Example 12);
//! * outer joins → the filtered-`let` + `if (fn:empty(...))` pattern
//!   (Example 10);
//! * GROUP BY → the BEA group-by extension with `$var<ctx>Partition1` and
//!   `$var<ctx>GB<n>` variables (Example 12);
//! * variable names → `var<ctx><zone><n>` (§3.5 (iv)).
//!
//! Where the printed examples under-specify NULL and type handling, the
//! generator adds machinery the paper's closed-source runtime got from
//! schema validation (see DESIGN.md): nullable result elements are
//! constructed conditionally so SQL NULL stays an *absent* element; order
//! and group keys and ordered comparisons between two untyped operands get
//! `xs:*` casts derived from catalog types; `fn:sum` is guarded so the
//! empty sequence yields NULL rather than 0.

use crate::error::TranslateError;
use crate::ir::*;
use aldsp_catalog::SqlColumnType;
use aldsp_sql::{CompareOp, JoinKind, Literal, Quantifier, SetOp, TrimSide};
use aldsp_xml::escape::escape_text;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A generated query: prolog imports plus the body expression.
#[derive(Debug, Clone)]
pub struct Generated {
    /// `import schema namespace ...;` lines.
    pub prolog: String,
    /// The body (a `<RECORDSET>{...}</RECORDSET>` expression).
    pub body: String,
}

impl Generated {
    /// The complete query text.
    pub fn into_query_text(self) -> String {
        if self.prolog.is_empty() {
            self.body
        } else {
            format!("{}\n{}", self.prolog, self.body)
        }
    }
}

/// Generates the XQuery for a prepared query.
pub fn generate(query: &PreparedQuery) -> Result<Generated, TranslateError> {
    let mut generator = Generator::default();
    let body = generator.gen_query(query, None)?;
    let mut prolog = String::new();
    for (i, (namespace, location)) in generator.imports.iter().enumerate() {
        let _ = writeln!(
            prolog,
            "import schema namespace ns{i} = \"{namespace}\" at \"{location}\";"
        );
    }
    let generated = Generated {
        prolog: prolog.trim_end().to_string(),
        body,
    };
    #[cfg(feature = "debug-analyze")]
    debug_validate::run(query, &generated)?;
    Ok(generated)
}

/// Debug-build validation hook (the `debug-analyze` feature).
///
/// The analyzer crate depends on this crate, so stage three cannot invoke
/// it directly; instead it exposes a process-wide validator slot. The
/// analyzer installs its [`run`]-compatible entry point (see
/// `aldsp_analyzer::install_debug_validator`), after which every
/// [`generate`] call re-checks its own output and fails the translation
/// with a semantic error if the validator reports diagnostics. The feature
/// is enabled through the workspace root's dev-dependencies, so the slot
/// (and the per-translation re-parse it implies) exists in test builds
/// only.
#[cfg(feature = "debug-analyze")]
pub mod debug_validate {
    use super::Generated;
    use crate::error::TranslateError;
    use crate::ir::PreparedQuery;
    use std::sync::OnceLock;

    /// A validator over a prepared query and the XQuery generated from it.
    /// Returns rendered diagnostics; empty means clean.
    pub type Validator = fn(&PreparedQuery, &Generated) -> Vec<String>;

    static VALIDATOR: OnceLock<Validator> = OnceLock::new();

    /// Installs the process-wide validator. The first install wins;
    /// concurrent and repeated installs of the same entry point are
    /// harmless no-ops.
    pub fn install(validator: Validator) {
        let _ = VALIDATOR.set(validator);
    }

    /// True once a validator has been installed.
    pub fn installed() -> bool {
        VALIDATOR.get().is_some()
    }

    pub(super) fn run(query: &PreparedQuery, generated: &Generated) -> Result<(), TranslateError> {
        if let Some(validator) = VALIDATOR.get() {
            let diagnostics = validator(query, generated);
            if !diagnostics.is_empty() {
                return Err(TranslateError::semantic(format!(
                    "debug-analyze: generated query failed validation: {}",
                    diagnostics.join("; ")
                )));
            }
        }
        Ok(())
    }
}

/// How a range variable's columns are reached in generated XQuery.
#[derive(Debug, Clone)]
enum Access {
    /// Rows bound directly from a data-service function: `$var/COL`.
    Direct(String),
    /// Rows of a materialized view: `$var/<element>` where the element
    /// name comes from the view's output naming.
    View {
        /// The XQuery row variable.
        var: String,
        /// Column name → element name.
        names: HashMap<String, String>,
    },
    /// Inside an XPath filter predicate, the filtered side's columns are
    /// *relative* paths from the context item (paper Example 10's bare
    /// `CUSTID`).
    Relative {
        /// Column name → element name (identity for direct tables).
        names: HashMap<String, String>,
    },
}

/// Generation scope: range variable → access, chained outward.
struct GScope<'a> {
    bindings: Vec<(String, Access)>,
    parent: Option<&'a GScope<'a>>,
}

impl<'a> GScope<'a> {
    fn root() -> GScope<'static> {
        GScope {
            bindings: Vec::new(),
            parent: None,
        }
    }

    fn child(&'a self) -> GScope<'a> {
        GScope {
            bindings: Vec::new(),
            parent: Some(self),
        }
    }

    /// A fresh scope under an optional parent.
    fn under(parent: Option<&'a GScope<'a>>) -> GScope<'a> {
        GScope {
            bindings: Vec::new(),
            parent,
        }
    }

    fn bind(&mut self, range_var: impl Into<String>, access: Access) {
        self.bindings.push((range_var.into(), access));
    }

    fn lookup(&self, range_var: &str) -> Option<&Access> {
        for (rv, access) in self.bindings.iter().rev() {
            if rv == range_var {
                return Some(access);
            }
        }
        self.parent.and_then(|p| p.lookup(range_var))
    }

    /// The XPath for a resolved column.
    fn column_path(&self, range_var: &str, column: &str) -> Result<String, TranslateError> {
        match self.lookup(range_var) {
            Some(Access::Direct(var)) => Ok(format!("${var}/{column}")),
            Some(Access::View { var, names }) => {
                let element = names
                    .get(column)
                    .cloned()
                    .unwrap_or_else(|| column.to_string());
                Ok(format!("${var}/{element}"))
            }
            Some(Access::Relative { names }) => Ok(names
                .get(column)
                .cloned()
                .unwrap_or_else(|| column.to_string())),
            None => Err(TranslateError::semantic(format!(
                "internal: unbound range variable {range_var} during generation"
            ))),
        }
    }
}

/// Group-context for translating grouped projections/HAVING.
struct GroupCtx<'a> {
    /// The partition variable (`$var<ctx>Partition1`).
    partition_var: String,
    /// `(key expression, bound key variable)` pairs.
    keys: &'a [(TExpr, String)],
    /// Column → element mapping of the pre-grouped `$inter` rows.
    row_names: &'a HashMap<(String, String), String>,
}

#[derive(Default)]
struct Generator {
    counters: HashMap<(u32, &'static str), u32>,
    newlet_counter: u32,
    imports: Vec<(String, String)>,
}

impl Generator {
    /// Fresh variable per the paper's `var<ctx><zone><n>` scheme.
    fn fresh(&mut self, ctx: u32, zone: &'static str) -> String {
        let n = self.counters.entry((ctx, zone)).or_insert(0);
        let name = format!("var{ctx}{zone}{n}");
        *n += 1;
        name
    }

    /// Fresh `tempvar<ctx><zone><n>` (let-bound views).
    fn fresh_temp(&mut self, ctx: u32, zone: &'static str) -> String {
        let n = self.counters.entry((ctx, zone)).or_insert(0);
        let name = format!("tempvar{ctx}{zone}{n}");
        *n += 1;
        name
    }

    /// The `ns<k>` prefix for a table's schema, registering the import.
    fn prefix_for(&mut self, namespace: &str, location: &str) -> String {
        if let Some(i) = self
            .imports
            .iter()
            .position(|(ns, loc)| ns == namespace && loc == location)
        {
            return format!("ns{i}");
        }
        self.imports
            .push((namespace.to_string(), location.to_string()));
        format!("ns{}", self.imports.len() - 1)
    }

    // ---- query / body -----------------------------------------------

    fn gen_query(
        &mut self,
        query: &PreparedQuery,
        parent: Option<&GScope<'_>>,
    ) -> Result<String, TranslateError> {
        let ctx = body_ctx(&query.body);
        let core = self.gen_body(&query.body, parent)?;
        if query.order_by.is_empty() {
            return Ok(core);
        }
        // Uniform ordering wrapper: sort the materialized output rows by
        // their (cast) element values. `empty least` is the default, which
        // matches the oracle's NULL-first ascending order.
        let temp = self.fresh_temp(ctx, "OB");
        let row = self.fresh(ctx, "OB");
        let keys: Vec<String> = query
            .order_by
            .iter()
            .map(|o| {
                let column = &query.output[o.column];
                let path = format!("${row}/{}", column.name);
                let key = cast_for_type(column.sql_type, &path);
                if o.ascending {
                    key
                } else {
                    format!("{key} descending")
                }
            })
            .collect();
        Ok(format!(
            "<RECORDSET>{{\nlet ${temp} := {core}\nfor ${row} in ${temp}/RECORD\norder by {}\nreturn ${row}\n}}</RECORDSET>",
            keys.join(", ")
        ))
    }

    fn gen_body(
        &mut self,
        body: &PreparedBody,
        parent: Option<&GScope<'_>>,
    ) -> Result<String, TranslateError> {
        match body {
            PreparedBody::Select(select) => self.gen_select(select, parent),
            PreparedBody::SetOp {
                left,
                op,
                all,
                right,
                output,
            } => self.gen_setop(left, *op, *all, right, output, parent),
        }
    }

    // ---- set operations ---------------------------------------------

    /// Set operations over materialized sides. Plain UNION/INTERSECT/
    /// EXCEPT eliminate duplicates per SQL-92 bag semantics; the
    /// membership tests treat two NULLs (absent elements) as equal, as
    /// SQL set operations do.
    fn gen_setop(
        &mut self,
        left: &PreparedBody,
        op: SetOp,
        all: bool,
        right: &PreparedBody,
        output: &[OutputColumn],
        parent: Option<&GScope<'_>>,
    ) -> Result<String, TranslateError> {
        let ctx = body_ctx(left);
        let l_view = self.gen_body(left, parent)?;
        let r_view = self.gen_body(right, parent)?;
        let l_var = self.fresh_temp(ctx, "ST");
        let r_var = self.fresh_temp(ctx, "ST");
        let mut clauses = vec![
            format!("let ${l_var} := {l_view}"),
            format!("let ${r_var} := {r_view}"),
        ];

        // The right side's rows must carry the left side's element names;
        // rename through a projection view when they differ.
        let right_output = right.output();
        let names_match = right_output
            .iter()
            .zip(output)
            .all(|(r, l)| r.name == l.name);
        let l_rows = format!("${l_var}/RECORD");
        let r_rows = if names_match {
            format!("${r_var}/RECORD")
        } else {
            let y = self.fresh(ctx, "ST");
            let mut record = String::from("<RECORD>");
            for (l_col, r_col) in output.iter().zip(right_output) {
                record.push_str(&self.record_element(
                    &l_col.name,
                    &format!("fn:data(${y}/{})", r_col.name),
                    l_col.nullable || r_col.nullable,
                    ctx,
                ));
            }
            record.push_str("</RECORD>");
            let renamed = self.fresh_temp(ctx, "ST");
            clauses.push(format!(
                "let ${renamed} := <RECORDSET>{{\nfor ${y} in ${r_var}/RECORD\nreturn\n{record}\n}}</RECORDSET>"
            ));
            format!("${renamed}/RECORD")
        };

        let body = match (op, all) {
            (SetOp::Union, true) => {
                let u = self.fresh(ctx, "ST");
                format!("for ${u} in ({l_rows}, {r_rows})\nreturn ${u}")
            }
            (SetOp::Union, false) => {
                let u = self.fresh(ctx, "ST");
                format!("for ${u} in fn-bea:distinct-records(({l_rows}, {r_rows}))\nreturn ${u}")
            }
            (SetOp::Intersect, false) | (SetOp::Except, false) => {
                let x = self.fresh(ctx, "ST");
                let y = self.fresh(ctx, "ST");
                let row_eq = row_equality(&x, &y, output);
                let membership = format!("(some ${y} in {r_rows} satisfies {row_eq})");
                let condition = if op == SetOp::Intersect {
                    membership
                } else {
                    format!("fn:not{membership}")
                };
                format!(
                    "for ${x} in fn-bea:distinct-records({l_rows})\nwhere {condition}\nreturn ${x}"
                )
            }
            (SetOp::Intersect, true) => {
                let x = self.fresh(ctx, "ST");
                format!("for ${x} in fn-bea:intersect-all-records({l_rows}, {r_rows})\nreturn ${x}")
            }
            (SetOp::Except, true) => {
                let x = self.fresh(ctx, "ST");
                format!("for ${x} in fn-bea:except-all-records({l_rows}, {r_rows})\nreturn ${x}")
            }
        };
        Ok(format!(
            "<RECORDSET>{{\n{}\n{body}\n}}</RECORDSET>",
            clauses.join("\n")
        ))
    }

    // ---- SELECT ----------------------------------------------------------

    fn gen_select(
        &mut self,
        select: &PreparedSelect,
        parent: Option<&GScope<'_>>,
    ) -> Result<String, TranslateError> {
        let core = if select.grouped {
            self.gen_select_grouped(select, parent)?
        } else {
            self.gen_select_plain(select, parent)?
        };
        if !select.distinct {
            return Ok(core);
        }
        // DISTINCT wrapper over the materialized rows.
        let ctx = select.ctx_id;
        let temp = self.fresh_temp(ctx, "DT");
        let row = self.fresh(ctx, "DT");
        Ok(format!(
            "<RECORDSET>{{\nlet ${temp} := {core}\nfor ${row} in fn-bea:distinct-records(${temp}/RECORD)\nreturn ${row}\n}}</RECORDSET>"
        ))
    }

    fn gen_select_plain(
        &mut self,
        select: &PreparedSelect,
        parent: Option<&GScope<'_>>,
    ) -> Result<String, TranslateError> {
        let root;
        let parent_scope = match parent {
            Some(p) => p,
            None => {
                root = GScope::root();
                &root
            }
        };
        let mut scope = parent_scope.child();
        let mut clauses = Vec::new();
        let mut conditions = Vec::new();
        for rsn in &select.from {
            self.gen_rsn(
                rsn,
                select.ctx_id,
                &mut clauses,
                &mut scope,
                &mut conditions,
            )?;
        }
        if let Some(w) = &select.where_clause {
            conditions.push(self.gen_predicate(w, &scope)?);
        }

        let mut out = String::from("<RECORDSET>{\n");
        for clause in &clauses {
            out.push_str(clause);
            out.push('\n');
        }
        if !conditions.is_empty() {
            let _ = writeln!(out, "where {}", conditions.join(" and "));
        }
        out.push_str("return\n");
        out.push_str(&self.gen_record(
            &select.items,
            &select.output,
            &scope,
            Some(select.ctx_id),
        )?);
        out.push_str("\n}</RECORDSET>");
        Ok(out)
    }

    /// GROUP BY generation (paper Example 12): materialize the joined,
    /// filtered rows into `$inter<ctx>`, regroup them with the BEA
    /// extension, then project from partition and key variables.
    fn gen_select_grouped(
        &mut self,
        select: &PreparedSelect,
        parent: Option<&GScope<'_>>,
    ) -> Result<String, TranslateError> {
        let ctx = select.ctx_id;
        let root;
        let parent_scope = match parent {
            Some(p) => p,
            None => {
                root = GScope::root();
                &root
            }
        };
        let mut scope = parent_scope.child();
        let mut clauses = Vec::new();
        let mut conditions = Vec::new();
        for rsn in &select.from {
            self.gen_rsn(rsn, ctx, &mut clauses, &mut scope, &mut conditions)?;
        }
        if let Some(w) = &select.where_clause {
            conditions.push(self.gen_predicate(w, &scope)?);
        }

        // The $inter view: one element per available source column, named
        // RANGEVAR.COLUMN.
        let all_columns: Vec<RsnColumn> = select.from.iter().flat_map(|r| r.columns()).collect();
        let mut row_names: HashMap<(String, String), String> = HashMap::new();
        let mut inter_record = String::from("<RECORD>");
        for col in &all_columns {
            let element = format!("{}.{}", col.range_var, col.name);
            row_names.insert((col.range_var.clone(), col.name.clone()), element.clone());
            let path = scope.column_path(&col.range_var, &col.name)?;
            if col.nullable {
                let v = self.fresh(ctx, "SL");
                let _ = write!(
                    inter_record,
                    "{{ for ${v} in fn:data({path}) return <{element}>{{${v}}}</{element}> }}"
                );
            } else {
                let _ = write!(inter_record, "<{element}>{{fn:data({path})}}</{element}>");
            }
        }
        inter_record.push_str("</RECORD>");

        let mut inter = String::from("<RECORDSET>{\n");
        for clause in &clauses {
            inter.push_str(clause);
            inter.push('\n');
        }
        if !conditions.is_empty() {
            let _ = writeln!(inter, "where {}", conditions.join(" and "));
        }
        let _ = write!(inter, "return\n{inter_record}\n}}</RECORDSET>");

        // Regroup.
        let inter_var = format!("inter{ctx}");
        let partition_var = format!("var{ctx}Partition1");
        let mut out = format!("<RECORDSET>{{\nlet ${inter_var} := {inter}\n");

        let grouped_keys: Vec<(TExpr, String)> = if select.group_by.is_empty() {
            // Implicit single group over all rows (aggregates without
            // GROUP BY must still return exactly one row).
            let _ = writeln!(out, "let ${partition_var} := ${inter_var}/RECORD");
            Vec::new()
        } else {
            self.newlet_counter += 1;
            let row_var = format!("varNewlet{}", self.newlet_counter);
            let _ = writeln!(out, "for ${row_var} in ${inter_var}/RECORD");
            // Key expressions evaluate against the $inter rows.
            let mut row_scope = parent_scope.child();
            let names_by_rv = names_for_row_var(&row_names);
            for (rv, names) in &names_by_rv {
                row_scope.bind(
                    rv.clone(),
                    Access::View {
                        var: row_var.clone(),
                        names: names.clone(),
                    },
                );
            }
            let mut key_parts = Vec::with_capacity(select.group_by.len());
            let mut keys = Vec::with_capacity(select.group_by.len());
            for (i, key) in select.group_by.iter().enumerate() {
                let gb_var = format!("var{ctx}GB{}", i + 1);
                let typed = self.gen_typed(key, &row_scope)?;
                key_parts.push(format!("{typed} as ${gb_var}"));
                keys.push((key.clone(), gb_var));
            }
            let _ = writeln!(
                out,
                "group ${row_var} as ${partition_var} by {}",
                key_parts.join(", ")
            );
            keys
        };

        let group_ctx = GroupCtx {
            partition_var: partition_var.clone(),
            keys: &grouped_keys,
            row_names: &row_names,
        };

        if let Some(having) = &select.having {
            let rewritten = self.rewrite_grouped(having, &group_ctx, parent_scope, ctx)?;
            let scope_for_having = parent_scope.child();
            let predicate = self.gen_predicate(&rewritten, &scope_for_having)?;
            let _ = writeln!(out, "where {predicate}");
        }

        out.push_str("return\n");
        // Items rewritten into partition/key terms, then projected.
        let rewritten_items: Vec<PreparedItem> = select
            .items
            .iter()
            .map(|item| {
                Ok(PreparedItem {
                    expr: self.rewrite_grouped(&item.expr, &group_ctx, parent_scope, ctx)?,
                    output: item.output,
                })
            })
            .collect::<Result<_, TranslateError>>()?;
        let projection_scope = parent_scope.child();
        out.push_str(&self.gen_record(
            &rewritten_items,
            &select.output,
            &projection_scope,
            Some(ctx),
        )?);
        out.push_str("\n}</RECORDSET>");
        Ok(out)
    }

    /// Rewrites a grouped expression: group keys become their `$GB`
    /// variables, aggregates become generated expressions over the
    /// partition; everything else recurses.
    fn rewrite_grouped(
        &mut self,
        expr: &TExpr,
        group: &GroupCtx<'_>,
        parent_scope: &GScope<'_>,
        ctx: u32,
    ) -> Result<TExpr, TranslateError> {
        for (key, gb_var) in group.keys {
            if key == expr {
                return Ok(TExpr::new(
                    TExprKind::Generated {
                        xquery: format!("${gb_var}"),
                    },
                    expr.ty,
                    expr.nullable,
                ));
            }
        }
        if let TExprKind::Aggregate {
            func,
            distinct,
            arg,
        } = &expr.kind
        {
            let text =
                self.gen_aggregate(*func, *distinct, arg.as_deref(), group, parent_scope, ctx)?;
            return Ok(TExpr::new(
                TExprKind::Generated { xquery: text },
                expr.ty,
                expr.nullable,
            ));
        }
        // Structural recursion via clone-and-map.
        let mut clone = expr.clone();
        self.rewrite_children(&mut clone, group, parent_scope, ctx)?;
        if let TExprKind::Column { range_var, column } = &clone.kind {
            return Err(TranslateError::semantic(format!(
                "column {range_var}.{column} must appear in GROUP BY or inside an aggregate"
            )));
        }
        Ok(clone)
    }

    fn rewrite_children(
        &mut self,
        expr: &mut TExpr,
        group: &GroupCtx<'_>,
        parent_scope: &GScope<'_>,
        ctx: u32,
    ) -> Result<(), TranslateError> {
        use TExprKind::*;
        let rewrite = |me: &mut Self, e: &mut Box<TExpr>| -> Result<(), TranslateError> {
            **e = me.rewrite_grouped(e, group, parent_scope, ctx)?;
            Ok(())
        };
        match &mut expr.kind {
            Column { .. } | Literal(_) | Parameter(_) | Generated { .. } => Ok(()),
            Neg(e) | Not(e) | Cast { expr: e, .. } | IsNull { expr: e, .. } => rewrite(self, e),
            Arith { left, right, .. }
            | Concat(left, right)
            | Compare { left, right, .. }
            | And(left, right)
            | Or(left, right) => {
                rewrite(self, left)?;
                rewrite(self, right)
            }
            ScalarFn { args, .. } => {
                for a in args {
                    *a = self.rewrite_grouped(a, group, parent_scope, ctx)?;
                }
                Ok(())
            }
            Aggregate { .. } => unreachable!("handled by rewrite_grouped"),
            Case {
                operand,
                branches,
                else_result,
            } => {
                if let Some(o) = operand {
                    rewrite(self, o)?;
                }
                for (w, t) in branches {
                    *w = self.rewrite_grouped(w, group, parent_scope, ctx)?;
                    *t = self.rewrite_grouped(t, group, parent_scope, ctx)?;
                }
                if let Some(e) = else_result {
                    rewrite(self, e)?;
                }
                Ok(())
            }
            Between {
                expr: e, low, high, ..
            } => {
                rewrite(self, e)?;
                rewrite(self, low)?;
                rewrite(self, high)
            }
            InList { expr: e, list, .. } => {
                rewrite(self, e)?;
                for item in list {
                    *item = self.rewrite_grouped(item, group, parent_scope, ctx)?;
                }
                Ok(())
            }
            Like {
                expr: e,
                pattern,
                escape,
                ..
            } => {
                rewrite(self, e)?;
                rewrite(self, pattern)?;
                if let Some(x) = escape {
                    rewrite(self, x)?;
                }
                Ok(())
            }
            Substring {
                expr: e,
                start,
                length,
            } => {
                rewrite(self, e)?;
                rewrite(self, start)?;
                if let Some(l) = length {
                    rewrite(self, l)?;
                }
                Ok(())
            }
            Trim {
                trim_chars,
                expr: e,
                ..
            } => {
                if let Some(c) = trim_chars {
                    rewrite(self, c)?;
                }
                rewrite(self, e)
            }
            Position { needle, haystack } => {
                rewrite(self, needle)?;
                rewrite(self, haystack)
            }
            InSubquery { .. } | Exists { .. } | ScalarSubquery(_) | Quantified { .. } => {
                Err(TranslateError::unsupported(
                    "subqueries are not supported in grouped select lists or HAVING",
                ))
            }
        }
    }

    /// Generates one aggregate over the partition (paper Example 12:
    /// "fn:concat takes the partition $var1Partition1 as an argument while
    /// fn:count uses var1GB4").
    fn gen_aggregate(
        &mut self,
        func: AggFunc,
        distinct: bool,
        arg: Option<&TExpr>,
        group: &GroupCtx<'_>,
        parent_scope: &GScope<'_>,
        ctx: u32,
    ) -> Result<String, TranslateError> {
        let partition = &group.partition_var;
        let Some(arg) = arg else {
            // COUNT(*): the partition's cardinality.
            return Ok(format!("fn:count(${partition})"));
        };
        // Per-row argument values: NULLs vanish because xs:* casts map the
        // empty sequence to the empty sequence.
        let row_var = self.fresh(ctx, "AG");
        let mut row_scope = parent_scope.child();
        let names_by_rv = names_for_row_var(group.row_names);
        for (rv, names) in &names_by_rv {
            row_scope.bind(
                rv.clone(),
                Access::View {
                    var: row_var.clone(),
                    names: names.clone(),
                },
            );
        }
        let value = self.gen_typed(arg, &row_scope)?;
        let mut values = format!("for ${row_var} in ${partition} return {value}");
        if distinct {
            values = format!("fn:distinct-values(({values}))");
        }
        Ok(match func {
            AggFunc::Count => format!("fn:count(({values}))"),
            // fn:sum(()) is 0; SQL's SUM over no rows is NULL — guard.
            AggFunc::Sum => {
                let agg_var = self.fresh(ctx, "AG");
                format!(
                    "(let ${agg_var} := ({values}) return if (fn:empty(${agg_var})) then () else fn:sum(${agg_var}))"
                )
            }
            AggFunc::Avg => format!("fn:avg(({values}))"),
            AggFunc::Min => format!("fn:min(({values}))"),
            AggFunc::Max => format!("fn:max(({values}))"),
        })
    }

    // ---- FROM / RSNs --------------------------------------------------

    /// Translates one RSN into clauses + bindings. "The join RSN should
    /// possess the knowledge of how to utilize its information and
    /// generate an XQuery expression for the join" (paper §3.4.2).
    fn gen_rsn(
        &mut self,
        rsn: &Rsn,
        ctx: u32,
        clauses: &mut Vec<String>,
        scope: &mut GScope<'_>,
        conditions: &mut Vec<String>,
    ) -> Result<(), TranslateError> {
        match rsn {
            Rsn::Table { range_var, entry } => {
                let var = self.fresh(ctx, "FR");
                let prefix =
                    self.prefix_for(&entry.schema.namespace, &entry.schema.schema_location);
                clauses.push(format!(
                    "for ${var} in {prefix}:{}()",
                    entry.qualified.table
                ));
                scope.bind(range_var.clone(), Access::Direct(var));
                Ok(())
            }
            Rsn::Derived { range_var, query } => {
                // Derived tables are uncorrelated in SQL-92; generate
                // against the enclosing scope's parent chain.
                let view = {
                    let parent = scope.parent;
                    self.gen_query(query, parent)?
                };
                let temp = self.fresh_temp(ctx, "FR");
                let var = self.fresh(ctx, "FR");
                clauses.push(format!("let ${temp} := {view}"));
                clauses.push(format!("for ${var} in ${temp}/RECORD"));
                let names = query
                    .output
                    .iter()
                    .map(|o| (o.label.clone(), o.name.clone()))
                    .collect();
                scope.bind(range_var.clone(), Access::View { var, names });
                Ok(())
            }
            Rsn::Join {
                kind: JoinKind::Inner,
                left,
                right,
                on,
            }
            | Rsn::Join {
                kind: JoinKind::Cross,
                left,
                right,
                on,
            } => {
                // Inner joins flatten into a "double for" plus a where
                // condition (paper Example 12).
                self.gen_rsn(left, ctx, clauses, scope, conditions)?;
                self.gen_rsn(right, ctx, clauses, scope, conditions)?;
                if let Some(on) = on {
                    conditions.push(self.gen_predicate(on, scope)?);
                }
                Ok(())
            }
            Rsn::Join {
                kind: JoinKind::LeftOuter,
                left,
                right,
                on,
            } => self.gen_left_outer(left, right, on.as_ref(), ctx, clauses, scope),
            // RIGHT OUTER is a LEFT OUTER with swapped operands; the view
            // names elements `RANGEVAR.COL`, so operand order does not
            // affect downstream resolution or projection order.
            Rsn::Join {
                kind: JoinKind::RightOuter,
                left,
                right,
                on,
            } => self.gen_left_outer(right, left, on.as_ref(), ctx, clauses, scope),
            Rsn::Join {
                kind: JoinKind::FullOuter,
                left,
                right,
                on,
            } => self.gen_full_outer(left, right, on.as_ref(), ctx, clauses, scope),
        }
    }

    /// The Example-10 pattern: bind the filtered right side to a `let`,
    /// then emit matched rows or a left-only row when empty; the whole
    /// join becomes a let-bound RECORDSET view.
    fn gen_left_outer(
        &mut self,
        left: &Rsn,
        right: &Rsn,
        on: Option<&TExpr>,
        ctx: u32,
        clauses: &mut Vec<String>,
        scope: &mut GScope<'_>,
    ) -> Result<(), TranslateError> {
        // Build the view body in an inner scope.
        let mut inner_scope = GScope::under(scope.parent);
        let mut inner_clauses = Vec::new();
        let mut inner_conditions = Vec::new();
        self.gen_rsn(
            left,
            ctx,
            &mut inner_clauses,
            &mut inner_scope,
            &mut inner_conditions,
        )?;

        // Right side: a filterable source plus element naming.
        let (right_source, right_names) =
            self.gen_filterable_source(right, ctx, &mut inner_clauses)?;

        // The ON condition, with right columns as context-relative paths.
        let filter = match on {
            Some(on) => {
                let mut cond_scope = inner_scope.child();
                for rv in right.range_vars() {
                    let names = right_names
                        .iter()
                        .filter(|((r, _), _)| r == rv)
                        .map(|((_, c), e)| (c.clone(), e.clone()))
                        .collect();
                    cond_scope.bind(rv.to_string(), Access::Relative { names });
                }
                let predicate = self.gen_predicate(on, &cond_scope)?;
                format!("[{predicate}]")
            }
            None => String::new(),
        };
        let matched_var = self.fresh_temp(ctx, "FR");
        inner_clauses.push(format!("let ${matched_var} := {right_source}{filter}"));

        // Record construction for both arms.
        let left_columns = left.columns();
        let right_columns = right.columns();
        let row_var = self.fresh(ctx, "FR");

        let mut left_elements = String::new();
        for col in &left_columns {
            let path = inner_scope.column_path(&col.range_var, &col.name)?;
            left_elements.push_str(&self.record_element(
                &format!("{}.{}", col.range_var, col.name),
                &format!("fn:data({path})"),
                col.nullable,
                ctx,
            ));
        }
        let mut right_elements = String::new();
        for col in &right_columns {
            let element = right_names
                .get(&(col.range_var.clone(), col.name.clone()))
                .cloned()
                .unwrap_or_else(|| col.name.clone());
            right_elements.push_str(&self.record_element(
                &format!("{}.{}", col.range_var, col.name),
                &format!("fn:data(${row_var}/{element})"),
                col.nullable,
                ctx,
            ));
        }

        let mut view = String::from("<RECORDSET>{\n");
        for clause in &inner_clauses {
            view.push_str(clause);
            view.push('\n');
        }
        if !inner_conditions.is_empty() {
            let _ = writeln!(view, "where {}", inner_conditions.join(" and "));
        }
        let _ = write!(
            view,
            "return\nif (fn:empty(${matched_var})) then\n<RECORD>{left_elements}</RECORD>\nelse\n(for ${row_var} in ${matched_var}\nreturn\n<RECORD>{left_elements}{right_elements}</RECORD>)\n}}</RECORDSET>"
        );

        // Expose the view to the enclosing query.
        let temp = self.fresh_temp(ctx, "FR");
        let var = self.fresh(ctx, "FR");
        clauses.push(format!("let ${temp} := {view}"));
        clauses.push(format!("for ${var} in ${temp}/RECORD"));
        for rv in left.range_vars().into_iter().chain(right.range_vars()) {
            let names: HashMap<String, String> = left_columns
                .iter()
                .chain(right_columns.iter())
                .filter(|c| c.range_var == rv)
                .map(|c| (c.name.clone(), format!("{}.{}", c.range_var, c.name)))
                .collect();
            scope.bind(
                rv.to_string(),
                Access::View {
                    var: var.clone(),
                    names,
                },
            );
        }
        Ok(())
    }

    /// FULL OUTER JOIN: materialize both sides, then union the left-outer
    /// rows with the unmatched right rows.
    fn gen_full_outer(
        &mut self,
        left: &Rsn,
        right: &Rsn,
        on: Option<&TExpr>,
        ctx: u32,
        clauses: &mut Vec<String>,
        scope: &mut GScope<'_>,
    ) -> Result<(), TranslateError> {
        let mut pre_clauses = Vec::new();
        let (left_source, left_names) = self.gen_filterable_source(left, ctx, &mut pre_clauses)?;
        let (right_source, right_names) =
            self.gen_filterable_source(right, ctx, &mut pre_clauses)?;

        let left_columns = left.columns();
        let right_columns = right.columns();
        let l_var = self.fresh(ctx, "FR");
        let r_var = self.fresh(ctx, "FR");
        let matched = self.fresh_temp(ctx, "FR");

        // ON with left rows bound to $l_var (via its names) and right
        // relative (for the filter on the right source) — and the mirror
        // for the anti-join.
        let bind_side =
            |scope: &mut GScope<'_>,
             rsn: &Rsn,
             names: &HashMap<(String, String), String>,
             access: &dyn Fn(HashMap<String, String>) -> Access| {
                for rv in rsn.range_vars() {
                    let side_names: HashMap<String, String> = names
                        .iter()
                        .filter(|((r, _), _)| r == rv)
                        .map(|((_, c), e)| (c.clone(), e.clone()))
                        .collect();
                    scope.bind(rv.to_string(), access(side_names));
                }
            };

        let (filter_right, filter_left) = match on {
            Some(on) => {
                let mut s1 = GScope::under(scope.parent);
                bind_side(&mut s1, left, &left_names, &|n| Access::View {
                    var: l_var.clone(),
                    names: n,
                });
                bind_side(&mut s1, right, &right_names, &|n| Access::Relative {
                    names: n,
                });
                let p1 = self.gen_predicate(on, &s1)?;

                let mut s2 = GScope::under(scope.parent);
                bind_side(&mut s2, right, &right_names, &|n| Access::View {
                    var: r_var.clone(),
                    names: n,
                });
                bind_side(&mut s2, left, &left_names, &|n| Access::Relative {
                    names: n,
                });
                let p2 = self.gen_predicate(on, &s2)?;
                (format!("[{p1}]"), format!("[{p2}]"))
            }
            None => (String::new(), String::new()),
        };

        let element_for = |names: &HashMap<(String, String), String>, col: &RsnColumn| -> String {
            names
                .get(&(col.range_var.clone(), col.name.clone()))
                .cloned()
                .unwrap_or_else(|| col.name.clone())
        };
        let mut left_elements_l = String::new();
        for col in &left_columns {
            let element = element_for(&left_names, col);
            left_elements_l.push_str(&self.record_element(
                &format!("{}.{}", col.range_var, col.name),
                &format!("fn:data(${l_var}/{element})"),
                col.nullable,
                ctx,
            ));
        }
        let mut right_elements_m = String::new();
        let m_var = self.fresh(ctx, "FR");
        for col in &right_columns {
            let element = element_for(&right_names, col);
            right_elements_m.push_str(&self.record_element(
                &format!("{}.{}", col.range_var, col.name),
                &format!("fn:data(${m_var}/{element})"),
                col.nullable,
                ctx,
            ));
        }
        let mut right_elements_r = String::new();
        for col in &right_columns {
            let element = element_for(&right_names, col);
            right_elements_r.push_str(&self.record_element(
                &format!("{}.{}", col.range_var, col.name),
                &format!("fn:data(${r_var}/{element})"),
                col.nullable,
                ctx,
            ));
        }

        // Both arms share any materialization lets, so those wrap the
        // whole pair: `let ... return (arm1, arm2)`.
        let mut view = String::from("<RECORDSET>{\n");
        for clause in &pre_clauses {
            view.push_str(clause);
            view.push('\n');
        }
        if !pre_clauses.is_empty() {
            view.push_str("return\n");
        }
        let _ = write!(
            view,
            "(for ${l_var} in {left_source}\nlet ${matched} := {right_source}{filter_right}\nreturn\nif (fn:empty(${matched})) then\n<RECORD>{left_elements_l}</RECORD>\nelse\n(for ${m_var} in ${matched}\nreturn\n<RECORD>{left_elements_l}{right_elements_m}</RECORD>)\n,\nfor ${r_var} in {right_source}\nwhere fn:empty({left_source}{filter_left})\nreturn\n<RECORD>{right_elements_r}</RECORD>\n)\n}}</RECORDSET>"
        );

        let temp = self.fresh_temp(ctx, "FR");
        let var = self.fresh(ctx, "FR");
        clauses.push(format!("let ${temp} := {view}"));
        clauses.push(format!("for ${var} in ${temp}/RECORD"));
        for rv in left.range_vars().into_iter().chain(right.range_vars()) {
            let names: HashMap<String, String> = left_columns
                .iter()
                .chain(right_columns.iter())
                .filter(|c| c.range_var == rv)
                .map(|c| (c.name.clone(), format!("{}.{}", c.range_var, c.name)))
                .collect();
            scope.bind(
                rv.to_string(),
                Access::View {
                    var: var.clone(),
                    names,
                },
            );
        }
        Ok(())
    }

    /// A source expression that can carry an XPath filter (for outer-join
    /// conditions): a direct function call for tables (Example 10's
    /// `ns1:PAYMENTS()[...]`), or a materialized view's `/RECORD` rows for
    /// anything more complex. Returns the source text plus the
    /// `(range_var, column) → element` naming for its rows.
    #[allow(clippy::type_complexity)]
    fn gen_filterable_source(
        &mut self,
        rsn: &Rsn,
        ctx: u32,
        clauses: &mut Vec<String>,
    ) -> Result<(String, HashMap<(String, String), String>), TranslateError> {
        match rsn {
            Rsn::Table { range_var, entry } => {
                let prefix =
                    self.prefix_for(&entry.schema.namespace, &entry.schema.schema_location);
                let names = entry
                    .schema
                    .columns
                    .iter()
                    .map(|c| ((range_var.clone(), c.name.clone()), c.name.clone()))
                    .collect();
                Ok((format!("{prefix}:{}()", entry.qualified.table), names))
            }
            Rsn::Derived { range_var, query } => {
                let view = self.gen_query(query, None)?;
                let temp = self.fresh_temp(ctx, "FR");
                clauses.push(format!("let ${temp} := {view}"));
                let names = query
                    .output
                    .iter()
                    .map(|o| ((range_var.clone(), o.label.clone()), o.name.clone()))
                    .collect();
                Ok((format!("${temp}/RECORD"), names))
            }
            Rsn::Join { .. } => {
                // Materialize the nested join through a scratch scope.
                let mut inner_scope = GScope::root();
                let mut inner_clauses = Vec::new();
                let mut inner_conditions = Vec::new();
                self.gen_rsn(
                    rsn,
                    ctx,
                    &mut inner_clauses,
                    &mut inner_scope,
                    &mut inner_conditions,
                )?;
                let columns = rsn.columns();
                let mut record = String::from("<RECORD>");
                let mut names = HashMap::new();
                for col in &columns {
                    let element = format!("{}.{}", col.range_var, col.name);
                    names.insert((col.range_var.clone(), col.name.clone()), element.clone());
                    let path = inner_scope.column_path(&col.range_var, &col.name)?;
                    record.push_str(&self.record_element(
                        &element,
                        &format!("fn:data({path})"),
                        col.nullable,
                        ctx,
                    ));
                }
                record.push_str("</RECORD>");
                let mut view = String::from("<RECORDSET>{\n");
                for clause in &inner_clauses {
                    view.push_str(clause);
                    view.push('\n');
                }
                if !inner_conditions.is_empty() {
                    let _ = writeln!(view, "where {}", inner_conditions.join(" and "));
                }
                let _ = write!(view, "return\n{record}\n}}</RECORDSET>");
                let temp = self.fresh_temp(ctx, "FR");
                clauses.push(format!("let ${temp} := {view}"));
                Ok((format!("${temp}/RECORD"), names))
            }
        }
    }

    // ---- records and values --------------------------------------------

    /// One result element. Non-nullable values use the paper's literal
    /// constructor form; nullable values construct conditionally so SQL
    /// NULL remains an absent element.
    fn record_element(&mut self, name: &str, value: &str, nullable: bool, ctx: u32) -> String {
        if nullable {
            let v = self.fresh(ctx, "SL");
            format!("{{ for ${v} in {value} return <{name}>{{${v}}}</{name}> }}")
        } else {
            format!("<{name}>{{{value}}}</{name}>")
        }
    }

    fn gen_record(
        &mut self,
        items: &[PreparedItem],
        output: &[OutputColumn],
        scope: &GScope<'_>,
        ctx_override: Option<u32>,
    ) -> Result<String, TranslateError> {
        let ctx = ctx_override.unwrap_or(0);
        let mut out = String::from("<RECORD>");
        for item in items {
            let column = &output[item.output];
            let value = self.gen_value(&item.expr, scope)?;
            out.push_str(&self.record_element(&column.name, &value, column.nullable, ctx));
        }
        out.push_str("</RECORD>");
        Ok(out)
    }

    /// A value expression: yields an atomized value or the empty sequence
    /// (SQL NULL).
    fn gen_value(&mut self, expr: &TExpr, scope: &GScope<'_>) -> Result<String, TranslateError> {
        use TExprKind::*;
        match &expr.kind {
            Generated { xquery } => Ok(xquery.clone()),
            Column { range_var, column } => {
                let path = scope.column_path(range_var, column)?;
                Ok(format!("fn:data({path})"))
            }
            Literal(l) => Ok(gen_literal(l)),
            Parameter(n) => Ok(format!("$sqlParam{}", n + 1)),
            Neg(inner) => Ok(format!("(-{})", self.gen_typed(inner, scope)?)),
            Arith { op, left, right } => {
                let l = self.gen_typed(left, scope)?;
                let r = self.gen_typed(right, scope)?;
                let int_division =
                    *op == ArithOp::Div && is_integer_type(left.ty) && is_integer_type(right.ty);
                let op_text = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "div",
                };
                if int_division {
                    // SQL integer division truncates; XQuery's `div` on
                    // integers yields a decimal — recover SQL semantics
                    // with a cast.
                    Ok(format!("xs:integer(({l} idiv {r}))"))
                } else {
                    Ok(format!("({l} {op_text} {r})"))
                }
            }
            Concat(l, r) => self.gen_nary_concat(&[l.as_ref().clone(), r.as_ref().clone()], scope),
            ScalarFn { name, args } => self.gen_scalar_fn(name, args, scope),
            Case {
                operand,
                branches,
                else_result,
            } => {
                let else_text = match else_result {
                    Some(e) => self.gen_value(e, scope)?,
                    None => "()".to_string(),
                };
                match operand {
                    None => {
                        // Searched CASE: nested if/then/else.
                        let mut text = else_text;
                        for (when, then) in branches.iter().rev() {
                            let cond = self.gen_predicate(when, scope)?;
                            let value = self.gen_value(then, scope)?;
                            text = format!("(if ({cond}) then {value} else {text})");
                        }
                        Ok(text)
                    }
                    Some(op_expr) => {
                        let var = self.fresh(0, "CS");
                        let op_value = self.gen_value(op_expr, scope)?;
                        let mut text = else_text;
                        for (when, then) in branches.iter().rev() {
                            let when_value = self.gen_comparison_operand(when, scope)?.0;
                            let value = self.gen_value(then, scope)?;
                            text =
                                format!("(if ((${var} = {when_value})) then {value} else {text})");
                        }
                        Ok(format!("(let ${var} := {op_value} return {text})"))
                    }
                }
            }
            Cast {
                expr: inner,
                target,
            } => {
                let value = self.gen_value(inner, scope)?;
                Ok(format!("{}({value})", xs_constructor(*target)))
            }
            Substring {
                expr: source,
                start,
                length,
            } => {
                let source_text = self.gen_value(source, scope)?;
                let start_text = self.gen_typed(start, scope)?;
                let length_text = match length {
                    Some(l) => Some(self.gen_typed(l, scope)?),
                    None => None,
                };
                let needs_guard = source.nullable
                    || start.nullable
                    || length.as_ref().is_some_and(|l| l.nullable);
                if needs_guard {
                    let v1 = self.fresh(0, "GD");
                    let v2 = self.fresh(0, "GD");
                    match length_text {
                        Some(lt) => {
                            let v3 = self.fresh(0, "GD");
                            Ok(format!(
                                "(let ${v1} := {source_text}, ${v2} := {start_text}, ${v3} := {lt} return if (fn:empty(${v1}) or fn:empty(${v2}) or fn:empty(${v3})) then () else fn:substring(${v1}, ${v2}, ${v3}))"
                            ))
                        }
                        None => Ok(format!(
                            "(let ${v1} := {source_text}, ${v2} := {start_text} return if (fn:empty(${v1}) or fn:empty(${v2})) then () else fn:substring(${v1}, ${v2}))"
                        )),
                    }
                } else {
                    match length_text {
                        Some(lt) => Ok(format!("fn:substring({source_text}, {start_text}, {lt})")),
                        None => Ok(format!("fn:substring({source_text}, {start_text})")),
                    }
                }
            }
            Trim {
                side,
                trim_chars,
                expr: source,
            } => {
                let source_text = self.gen_value(source, scope)?;
                let side_text = match side {
                    TrimSide::Both => "BOTH",
                    TrimSide::Leading => "LEADING",
                    TrimSide::Trailing => "TRAILING",
                };
                let chars_text = match trim_chars {
                    Some(c) => self.gen_value(c, scope)?,
                    None => "\" \"".to_string(),
                };
                Ok(format!(
                    "fn-bea:sql-trim({source_text}, \"{side_text}\", {chars_text})"
                ))
            }
            Position { needle, haystack } => {
                let n = self.gen_value(needle, scope)?;
                let h = self.gen_value(haystack, scope)?;
                Ok(format!("fn-bea:sql-position({n}, {h})"))
            }
            ScalarSubquery(query) => {
                let view = self.gen_query(query, Some(scope))?;
                let out_name = &query.output[0].name;
                let base = format!("fn:zero-or-one(fn:data({view}/RECORD/{out_name}))");
                Ok(match expr.ty {
                    Some(t) => format!("{}({base})", xs_constructor(t)),
                    None => base,
                })
            }
            Aggregate { .. } => Err(TranslateError::semantic(
                "internal: aggregate reached value generation without grouping rewrite",
            )),
            // Predicates used in value position (e.g. inside CASE WHEN
            // they are handled by gen_predicate; a bare boolean select
            // item is not SQL-92, but handle it anyway).
            Compare { .. }
            | And(..)
            | Or(..)
            | Not(..)
            | IsNull { .. }
            | Between { .. }
            | InList { .. }
            | InSubquery { .. }
            | Exists { .. }
            | Quantified { .. }
            | Like { .. } => self.gen_predicate(expr, scope),
        }
    }

    /// A value with a guaranteed runtime type: columns get an `xs:*` cast
    /// derived from catalog metadata; other expressions are already typed.
    fn gen_typed(&mut self, expr: &TExpr, scope: &GScope<'_>) -> Result<String, TranslateError> {
        if let TExprKind::Column { range_var, column } = &expr.kind {
            let path = scope.column_path(range_var, column)?;
            return Ok(match expr.ty {
                Some(t) => format!("{}(fn:data({path}))", xs_constructor(t)),
                None => format!("fn:data({path})"),
            });
        }
        self.gen_value(expr, scope)
    }

    fn gen_nary_concat(
        &mut self,
        args: &[TExpr],
        scope: &GScope<'_>,
    ) -> Result<String, TranslateError> {
        let values: Vec<String> = args
            .iter()
            .map(|a| self.gen_value(a, scope))
            .collect::<Result<_, _>>()?;
        if args.iter().any(|a| a.nullable) {
            // SQL || is NULL-propagating; fn:concat coerces empty to "".
            let vars: Vec<String> = values.iter().map(|_| self.fresh(0, "GD")).collect();
            let lets: Vec<String> = vars
                .iter()
                .zip(&values)
                .map(|(v, val)| format!("${v} := {val}"))
                .collect();
            let empties: Vec<String> = vars.iter().map(|v| format!("fn:empty(${v})")).collect();
            let refs: Vec<String> = vars.iter().map(|v| format!("${v}")).collect();
            Ok(format!(
                "(let {} return if ({}) then () else fn:concat({}))",
                lets.join(", "),
                empties.join(" or "),
                refs.join(", ")
            ))
        } else {
            Ok(format!("fn:concat({})", values.join(", ")))
        }
    }

    fn gen_scalar_fn(
        &mut self,
        name: &str,
        args: &[TExpr],
        scope: &GScope<'_>,
    ) -> Result<String, TranslateError> {
        use crate::funcmap::{lookup, NullBehavior};
        match name {
            "CONCAT" => return self.gen_nary_concat(args, scope),
            "COALESCE" => {
                // Right fold into fn-bea:if-empty.
                let mut text = self.gen_value(args.last().expect("arity checked"), scope)?;
                for a in args[..args.len() - 1].iter().rev() {
                    let v = self.gen_value(a, scope)?;
                    text = format!("fn-bea:if-empty({v}, {text})");
                }
                return Ok(text);
            }
            "NULLIF" => {
                let a = self.gen_value(&args[0], scope)?;
                let b = self.gen_comparison_operand(&args[1], scope)?.0;
                let v = self.fresh(0, "GD");
                return Ok(format!(
                    "(let ${v} := {a} return if ((${v} = {b})) then () else ${v})"
                ));
            }
            "MOD" => {
                let a = self.gen_typed(&args[0], scope)?;
                let b = self.gen_typed(&args[1], scope)?;
                return Ok(format!("({a} mod {b})"));
            }
            _ => {}
        }
        let mapping = lookup(name)
            .ok_or_else(|| TranslateError::unsupported(format!("unknown function {name}")))?;
        let values: Vec<String> = args
            .iter()
            .map(|a| self.gen_value(a, scope))
            .collect::<Result<_, _>>()?;
        let needs_guard =
            mapping.null_behavior == NullBehavior::NeedsGuard && args.iter().any(|a| a.nullable);
        if needs_guard {
            let vars: Vec<String> = values.iter().map(|_| self.fresh(0, "GD")).collect();
            let lets: Vec<String> = vars
                .iter()
                .zip(&values)
                .map(|(v, val)| format!("${v} := {val}"))
                .collect();
            let empties: Vec<String> = vars.iter().map(|v| format!("fn:empty(${v})")).collect();
            let refs: Vec<String> = vars.iter().map(|v| format!("${v}")).collect();
            Ok(format!(
                "(let {} return if ({}) then () else {}({}))",
                lets.join(", "),
                empties.join(" or "),
                mapping.xquery_name,
                refs.join(", ")
            ))
        } else {
            Ok(format!("{}({})", mapping.xquery_name, values.join(", ")))
        }
    }

    // ---- predicates ------------------------------------------------------

    /// A boolean-position expression. SQL UNKNOWN maps to either `false`
    /// or the empty sequence — both are rejected by `where` (effective
    /// boolean value), which matches SQL's treat-UNKNOWN-as-FALSE at
    /// filter level. NOT is translated by negation push-down so UNKNOWN
    /// never flips to TRUE.
    fn gen_predicate(
        &mut self,
        expr: &TExpr,
        scope: &GScope<'_>,
    ) -> Result<String, TranslateError> {
        use TExprKind::*;
        match &expr.kind {
            Compare { op, left, right } => self.gen_comparison(*op, left, right, scope),
            And(l, r) => Ok(format!(
                "({} and {})",
                self.gen_predicate(l, scope)?,
                self.gen_predicate(r, scope)?
            )),
            Or(l, r) => Ok(format!(
                "({} or {})",
                self.gen_predicate(l, scope)?,
                self.gen_predicate(r, scope)?
            )),
            Not(inner) => self.gen_negated(inner, scope),
            IsNull {
                expr: inner,
                negated,
            } => {
                let operand = match &inner.kind {
                    Column { range_var, column } => scope.column_path(range_var, column)?,
                    _ => self.gen_value(inner, scope)?,
                };
                Ok(if *negated {
                    format!("fn:exists({operand})")
                } else {
                    format!("fn:empty({operand})")
                })
            }
            Between {
                expr: e,
                low,
                high,
                negated,
            } => {
                if *negated {
                    let below = self.gen_comparison(CompareOp::Lt, e, low, scope)?;
                    let above = self.gen_comparison(CompareOp::Gt, e, high, scope)?;
                    Ok(format!("({below} or {above})"))
                } else {
                    let ge = self.gen_comparison(CompareOp::GtEq, e, low, scope)?;
                    let le = self.gen_comparison(CompareOp::LtEq, e, high, scope)?;
                    Ok(format!("({ge} and {le})"))
                }
            }
            InList {
                expr: e,
                list,
                negated,
            } => {
                let (lhs, _) = self.gen_comparison_operand(e, scope)?;
                if *negated {
                    // `a NOT IN (v1, v2)` ⇔ `a <> v1 AND a <> v2`.
                    let parts: Vec<String> = list
                        .iter()
                        .map(|v| {
                            let (rhs, _) = self.gen_comparison_operand(v, scope)?;
                            Ok(format!("({lhs}!={rhs})"))
                        })
                        .collect::<Result<_, TranslateError>>()?;
                    Ok(format!("({})", parts.join(" and ")))
                } else {
                    // Existential general comparison against the sequence.
                    let values: Vec<String> = list
                        .iter()
                        .map(|v| Ok(self.gen_comparison_operand(v, scope)?.0))
                        .collect::<Result<_, TranslateError>>()?;
                    Ok(format!("({lhs} = ({}))", values.join(", ")))
                }
            }
            InSubquery {
                expr: e,
                query,
                negated,
            } => {
                let (lhs, _) = self.gen_comparison_operand(e, scope)?;
                let view = self.gen_query(query, Some(scope))?;
                let out_name = &query.output[0].name;
                if *negated {
                    let v = self.fresh(0, "SQ");
                    Ok(format!(
                        "(every ${v} in {view}/RECORD satisfies ({lhs}!=${v}/{out_name}))"
                    ))
                } else {
                    Ok(format!("({lhs} = {view}/RECORD/{out_name})"))
                }
            }
            Exists { query, negated } => {
                let view = self.gen_query(query, Some(scope))?;
                Ok(if *negated {
                    format!("fn:empty({view}/RECORD)")
                } else {
                    format!("fn:exists({view}/RECORD)")
                })
            }
            Quantified {
                expr: e,
                op,
                quantifier,
                query,
            } => {
                let (lhs, lhs_typed) = self.gen_comparison_operand(e, scope)?;
                let view = self.gen_query(query, Some(scope))?;
                let out_name = &query.output[0].name;
                let v = self.fresh(0, "SQ");
                let rhs_path = format!("${v}/{out_name}");
                // The subquery column is untyped; cast for ordered
                // comparisons against another untyped operand.
                let sub_ty = query.output[0].sql_type;
                let rhs = if needs_ordered_cast(*op, lhs_typed, false, sub_ty) {
                    cast_for_type(sub_ty, &rhs_path)
                } else {
                    rhs_path
                };
                let lhs_final = if needs_ordered_cast(*op, lhs_typed, false, sub_ty) {
                    self.gen_typed(e, scope)?
                } else {
                    lhs
                };
                let word = match quantifier {
                    Quantifier::Any => "some",
                    Quantifier::All => "every",
                };
                Ok(format!(
                    "({word} ${v} in {view}/RECORD satisfies ({lhs_final}{}{rhs}))",
                    comp_symbol(*op)
                ))
            }
            Like {
                expr: input,
                pattern,
                escape,
                negated,
            } => {
                let input_text = match &input.kind {
                    Column { range_var, column } => scope.column_path(range_var, column)?,
                    _ => self.gen_value(input, scope)?,
                };
                let pattern_text = self.gen_value(pattern, scope)?;
                let call = match escape {
                    Some(esc) => {
                        let esc_text = self.gen_value(esc, scope)?;
                        format!("fn-bea:sql-like({input_text}, {pattern_text}, {esc_text})")
                    }
                    None => format!("fn-bea:sql-like({input_text}, {pattern_text})"),
                };
                Ok(if *negated {
                    // NULL input → empty → `empty = false()` is false →
                    // the row is excluded, matching SQL UNKNOWN.
                    format!("({call} = fn:false())")
                } else {
                    call
                })
            }
            // Value expressions in boolean position: compare against
            // true() so empty (UNKNOWN) is rejected.
            _ => {
                let value = self.gen_value(expr, scope)?;
                Ok(format!("({value} = fn:true())"))
            }
        }
    }

    /// Negation push-down (SQL three-valued NOT must not turn UNKNOWN
    /// into TRUE, so `fn:not` is never applied to a nullable predicate).
    fn gen_negated(&mut self, expr: &TExpr, scope: &GScope<'_>) -> Result<String, TranslateError> {
        use TExprKind::*;
        match &expr.kind {
            Compare { op, left, right } => self.gen_comparison(op.negated(), left, right, scope),
            And(l, r) => {
                let nl = self.gen_negated(l, scope)?;
                let nr = self.gen_negated(r, scope)?;
                Ok(format!("({nl} or {nr})"))
            }
            Or(l, r) => {
                let nl = self.gen_negated(l, scope)?;
                let nr = self.gen_negated(r, scope)?;
                Ok(format!("({nl} and {nr})"))
            }
            Not(inner) => self.gen_predicate(inner, scope),
            IsNull {
                expr: inner,
                negated,
            } => self.gen_predicate(
                &TExpr::new(
                    IsNull {
                        expr: inner.clone(),
                        negated: !negated,
                    },
                    expr.ty,
                    false,
                ),
                scope,
            ),
            Between {
                expr: e,
                low,
                high,
                negated,
            } => self.gen_predicate(
                &TExpr::new(
                    Between {
                        expr: e.clone(),
                        low: low.clone(),
                        high: high.clone(),
                        negated: !negated,
                    },
                    expr.ty,
                    expr.nullable,
                ),
                scope,
            ),
            InList {
                expr: e,
                list,
                negated,
            } => self.gen_predicate(
                &TExpr::new(
                    InList {
                        expr: e.clone(),
                        list: list.clone(),
                        negated: !negated,
                    },
                    expr.ty,
                    expr.nullable,
                ),
                scope,
            ),
            InSubquery {
                expr: e,
                query,
                negated,
            } => self.gen_predicate(
                &TExpr::new(
                    InSubquery {
                        expr: e.clone(),
                        query: query.clone(),
                        negated: !negated,
                    },
                    expr.ty,
                    expr.nullable,
                ),
                scope,
            ),
            Exists { query, negated } => self.gen_predicate(
                &TExpr::new(
                    Exists {
                        query: query.clone(),
                        negated: !negated,
                    },
                    expr.ty,
                    false,
                ),
                scope,
            ),
            Like {
                expr: e,
                pattern,
                escape,
                negated,
            } => self.gen_predicate(
                &TExpr::new(
                    Like {
                        expr: e.clone(),
                        pattern: pattern.clone(),
                        escape: escape.clone(),
                        negated: !negated,
                    },
                    expr.ty,
                    expr.nullable,
                ),
                scope,
            ),
            Quantified {
                expr: e,
                op,
                quantifier,
                query,
            } => {
                // NOT (a op ANY q) ⇔ a negop ALL q, and vice versa.
                let flipped = match quantifier {
                    Quantifier::Any => Quantifier::All,
                    Quantifier::All => Quantifier::Any,
                };
                self.gen_predicate(
                    &TExpr::new(
                        Quantified {
                            expr: e.clone(),
                            op: op.negated(),
                            quantifier: flipped,
                            query: query.clone(),
                        },
                        expr.ty,
                        expr.nullable,
                    ),
                    scope,
                )
            }
            // Fallback: `p = false()` — empty (UNKNOWN) stays excluded.
            _ => {
                let value = self.gen_value(expr, scope)?;
                Ok(format!("({value} = fn:false())"))
            }
        }
    }

    /// Comparison generation with the paper's patterns: columns as raw
    /// paths, literals wrapped in `xs:*` constructors (Example 8's
    /// `$var1FR2/ID>xs:integer(10)`). When *both* operands are untyped
    /// (column vs column) and the comparison is ordered, both sides get
    /// casts — untyped-vs-untyped would otherwise compare as strings.
    fn gen_comparison(
        &mut self,
        op: CompareOp,
        left: &TExpr,
        right: &TExpr,
        scope: &GScope<'_>,
    ) -> Result<String, TranslateError> {
        let (l_text, l_typed) = self.gen_comparison_operand(left, scope)?;
        let (r_text, r_typed) = self.gen_comparison_operand(right, scope)?;
        let ordered = matches!(
            op,
            CompareOp::Lt | CompareOp::LtEq | CompareOp::Gt | CompareOp::GtEq
        );
        let both_untyped = !l_typed && !r_typed;
        let needs_casts = ordered
            && both_untyped
            && (is_orderable_nonstring(left.ty) || is_orderable_nonstring(right.ty));
        let (l_final, r_final) = if needs_casts {
            (self.gen_typed(left, scope)?, self.gen_typed(right, scope)?)
        } else {
            (l_text, r_text)
        };
        Ok(format!("({l_final}{}{r_final})", comp_symbol(op)))
    }

    /// Renders one comparison operand, reporting whether its runtime type
    /// is statically pinned (`true`) or untyped node content (`false`).
    fn gen_comparison_operand(
        &mut self,
        expr: &TExpr,
        scope: &GScope<'_>,
    ) -> Result<(String, bool), TranslateError> {
        use TExprKind::*;
        match &expr.kind {
            Column { range_var, column } => Ok((scope.column_path(range_var, column)?, false)),
            Literal(l) => Ok((gen_comparison_literal(l), true)),
            // Parameters are bound to typed atomics by the driver.
            Parameter(n) => Ok((format!("$sqlParam{}", n + 1), true)),
            Generated { xquery } => Ok((xquery.clone(), true)),
            _ => Ok((self.gen_value(expr, scope)?, true)),
        }
    }
}

/// Per-column row equality with SQL set-operation NULL handling: two
/// absent elements are equal.
fn row_equality(x: &str, y: &str, output: &[OutputColumn]) -> String {
    let parts: Vec<String> = output
        .iter()
        .map(|col| {
            let name = &col.name;
            if col.nullable {
                format!(
                    "((fn:empty(${x}/{name}) and fn:empty(${y}/{name})) or (${x}/{name} = ${y}/{name}))"
                )
            } else {
                format!("(${x}/{name} = ${y}/{name})")
            }
        })
        .collect();
    if parts.is_empty() {
        "fn:true()".to_string()
    } else {
        format!("({})", parts.join(" and "))
    }
}

fn names_for_row_var(
    row_names: &HashMap<(String, String), String>,
) -> HashMap<String, HashMap<String, String>> {
    let mut out: HashMap<String, HashMap<String, String>> = HashMap::new();
    for ((rv, col), element) in row_names {
        out.entry(rv.clone())
            .or_default()
            .insert(col.clone(), element.clone());
    }
    out
}

fn body_ctx(body: &PreparedBody) -> u32 {
    match body {
        PreparedBody::Select(s) => s.ctx_id,
        PreparedBody::SetOp { left, .. } => body_ctx(left),
    }
}

fn comp_symbol(op: CompareOp) -> &'static str {
    match op {
        CompareOp::Eq => "=",
        CompareOp::NotEq => "!=",
        CompareOp::Lt => "<",
        CompareOp::LtEq => "<=",
        CompareOp::Gt => ">",
        CompareOp::GtEq => ">=",
    }
}

/// Ordered comparisons between two untyped operands would compare as
/// strings; when the catalog knows a non-string orderable type, both
/// sides need casts.
fn needs_ordered_cast(
    op: CompareOp,
    lhs_typed: bool,
    rhs_typed: bool,
    ty: Option<SqlColumnType>,
) -> bool {
    matches!(
        op,
        CompareOp::Lt | CompareOp::LtEq | CompareOp::Gt | CompareOp::GtEq
    ) && !lhs_typed
        && !rhs_typed
        && is_orderable_nonstring(ty)
}

fn is_integer_type(t: Option<SqlColumnType>) -> bool {
    matches!(
        t,
        Some(SqlColumnType::Smallint) | Some(SqlColumnType::Integer) | Some(SqlColumnType::Bigint)
    )
}

fn is_orderable_nonstring(t: Option<SqlColumnType>) -> bool {
    match t {
        Some(t) => t.is_numeric() || t == SqlColumnType::Date || t == SqlColumnType::Boolean,
        None => false,
    }
}

/// The `xs:*` constructor for a SQL type class.
pub fn xs_constructor(t: SqlColumnType) -> &'static str {
    use SqlColumnType as T;
    match t {
        T::Smallint | T::Integer | T::Bigint => "xs:integer",
        T::Decimal => "xs:decimal",
        T::Real | T::Double => "xs:double",
        T::Char | T::Varchar => "xs:string",
        T::Date => "xs:date",
        T::Boolean => "xs:boolean",
    }
}

fn cast_for_type(t: Option<SqlColumnType>, path: &str) -> String {
    match t {
        Some(t) if t.is_numeric() || matches!(t, SqlColumnType::Date | SqlColumnType::Boolean) => {
            format!("{}({path})", xs_constructor(t))
        }
        _ => path.to_string(),
    }
}

fn gen_literal(l: &Literal) -> String {
    match l {
        Literal::Integer(i) => i.to_string(),
        Literal::Decimal(d) => {
            if d.fract() == 0.0 {
                format!("{d:.1}")
            } else {
                format!("{d}")
            }
        }
        Literal::Double(d) => format!("{d:E}"),
        Literal::String(s) => format!("\"{}\"", escape_string_literal(s)),
        Literal::Date(d) => format!("xs:date(\"{d}\")"),
        Literal::Null => "()".to_string(),
    }
}

/// Comparison position: numeric literals carry explicit constructor casts
/// (paper Example 8 wraps `10` as `xs:integer(10)`).
fn gen_comparison_literal(l: &Literal) -> String {
    match l {
        Literal::Integer(i) => format!("xs:integer({i})"),
        Literal::Decimal(d) => {
            if d.fract() == 0.0 {
                format!("xs:decimal({d:.1})")
            } else {
                format!("xs:decimal({d})")
            }
        }
        Literal::Double(d) => format!("xs:double({d:E})"),
        other => gen_literal(other),
    }
}

/// String literals are emitted with doubled quotes and XML-escaped `&`
/// so the XQuery scanner's entity handling round-trips the exact value.
fn escape_string_literal(s: &str) -> String {
    escape_text(&s.replace('"', "\"\""))
}
