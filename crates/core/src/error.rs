//! Translation errors.

use aldsp_catalog::MetadataError;
use aldsp_governor::BudgetError;
use aldsp_sql::{ParseError, ParseErrorKind};
use std::fmt;

/// What phase rejected the statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Stage one: lexical/syntactic (paper §3.4.1 — "syntactically
    /// invalid SQL is rejected immediately").
    Syntax,
    /// Stage two: semantic (unknown/ambiguous columns, GROUP BY rule,
    /// set-operand arity, ORDER BY resolution).
    Semantic,
    /// Metadata lookup failures (unknown table, ambiguous table name).
    Metadata,
    /// Constructs outside the supported SQL-92 SELECT subset.
    Unsupported,
    /// The metadata endpoint could not be reached (transient — the same
    /// statement can succeed on retry once the endpoint recovers).
    Unavailable,
    /// The statement nests past the parser's recursion limit — an input
    /// guard against stack exhaustion, kept distinct from `Syntax` so
    /// callers can surface it as a resource rejection.
    DepthExceeded,
    /// A [`QueryBudget`](aldsp_governor::QueryBudget) limit was hit
    /// during translation (deadline, cancellation, or statement size).
    Budget(BudgetError),
}

/// A translation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError {
    /// Which phase produced it.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the SQL text when known (stage one only).
    pub offset: Option<usize>,
}

impl TranslateError {
    /// A semantic error.
    pub fn semantic(message: impl Into<String>) -> TranslateError {
        TranslateError {
            kind: ErrorKind::Semantic,
            message: message.into(),
            offset: None,
        }
    }

    /// An unsupported-construct error.
    pub fn unsupported(message: impl Into<String>) -> TranslateError {
        TranslateError {
            kind: ErrorKind::Unsupported,
            message: message.into(),
            offset: None,
        }
    }

    /// A budget-violation error.
    pub fn budget(err: BudgetError) -> TranslateError {
        TranslateError {
            kind: ErrorKind::Budget(err),
            message: err.to_string(),
            offset: None,
        }
    }

    /// Whether retrying the same statement can succeed. Only endpoint
    /// unavailability is retryable; the statement itself is at fault for
    /// every other kind (a blown budget included — the same budget would
    /// blow again).
    pub fn is_transient(&self) -> bool {
        self.kind == ErrorKind::Unavailable
    }
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ErrorKind::Syntax => "syntax error",
            ErrorKind::Semantic => "semantic error",
            ErrorKind::Metadata => "metadata error",
            ErrorKind::Unsupported => "unsupported construct",
            ErrorKind::Unavailable => "metadata endpoint unavailable",
            ErrorKind::DepthExceeded => "nesting depth limit",
            ErrorKind::Budget(_) => "query budget",
        };
        match self.offset {
            Some(offset) => write!(f, "{kind} at byte {offset}: {}", self.message),
            None => write!(f, "{kind}: {}", self.message),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<ParseError> for TranslateError {
    fn from(e: ParseError) -> Self {
        let kind = match e.kind {
            ParseErrorKind::Syntax => ErrorKind::Syntax,
            ParseErrorKind::DepthExceeded => ErrorKind::DepthExceeded,
        };
        TranslateError {
            kind,
            message: e.message,
            offset: Some(e.offset),
        }
    }
}

impl From<MetadataError> for TranslateError {
    fn from(e: MetadataError) -> Self {
        let kind = if e.is_transient() {
            ErrorKind::Unavailable
        } else {
            ErrorKind::Metadata
        };
        TranslateError {
            kind,
            message: e.to_string(),
            offset: None,
        }
    }
}
