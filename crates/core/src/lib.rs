//! # aldsp-core — the SQL-92 → XQuery translator
//!
//! The paper's primary contribution (§3): a component-based, three-stage
//! translator that turns SQL-92 SELECT statements into XQuery expressions
//! over data-service functions.
//!
//! * **Stage one** ([`stage1`]): lexical analysis and parsing (via
//!   `aldsp-sql`), building a typed AST and assigning a *query context* to
//!   every query block (§3.4.3). Syntactically invalid SQL is rejected
//!   immediately.
//! * **Stage two** ([`stage2`]): semantic analysis against catalog
//!   metadata — table resolution, wildcard expansion, column
//!   existence/ambiguity checks, the GROUP BY legality rule, ORDER BY
//!   resolution to output columns, and bottom-up expression type inference
//!   (§3.5 (v)). Produces a prepared form whose FROM tree is a tree of
//!   *resultset nodes* (RSNs, §3.4.2): tables, derived tables, joins, and
//!   set operations, each a uniform tabular view.
//! * **Stage three** ([`stage3`]): XQuery generation. Each RSN translates
//!   itself (tables → `for` over the data-service function; views → `let`
//!   bound `<RECORDSET>` constructors; outer joins → the
//!   filtered-`let` + `if (fn:empty(...))` pattern of Example 10; GROUP BY
//!   → the BEA group-by extension of Example 12), with the paper's
//!   `var<ctx><zone><n>` variable naming discipline.
//! * **Result wrapper** ([`wrapper`], §4): optionally wraps the query in
//!   the `fn:string-join` delimited-text transport that the driver parses
//!   into result sets without XML materialization.
//!
//! Deviations from the paper's printed examples, where engineering
//! demanded them, are catalogued in `DESIGN.md` (conditional construction
//! of nullable result elements; casts on order/group keys and on
//! both-untyped ordered comparisons; NULL markers in the text transport).

pub mod error;
pub mod funcmap;
pub mod ir;
pub mod stage1;
pub mod stage2;
pub mod stage3;
pub mod wrapper;

pub use error::{ErrorKind, TranslateError};
pub use ir::{OutputColumn, PreparedBody, PreparedQuery, PreparedSelect, Rsn, TExpr, TExprKind};
pub use stage2::prepare;
pub use wrapper::{COLUMN_SEPARATOR, NULL_MARKER, ROW_SEPARATOR};

use aldsp_catalog::MetadataApi;
pub use aldsp_governor::ExecStrategy;
use aldsp_governor::QueryBudget;
use std::time::{Duration, Instant};

/// How results travel back to the driver (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Transport {
    /// Serialize the `<RECORDSET>` XML and re-parse in the driver — the
    /// baseline the paper found wasteful.
    Xml,
    /// The delimited-text wrapper (`fn:string-join` over separator-tagged
    /// column values) — the paper's "measurably improved" design.
    #[default]
    DelimitedText,
}

/// How hard the optimizer rewrites a generated program before execution.
///
/// Part of [`TranslationOptions`], and therefore of plan-cache keys: an
/// optimized plan and the naive plan for the same SQL are distinct cache
/// entries, so flipping the knob can never serve the wrong program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum OptimizeLevel {
    /// No rewriting: execute the stage-three program verbatim.
    #[default]
    Off,
    /// Order-preserving rules only (predicate pushdown, let inlining,
    /// dead-let elimination, DISTINCT elimination, ORDER BY key pruning,
    /// loop-invariant hoisting).
    Basic,
    /// Adds join reordering of independent `for` clauses — sound only up
    /// to row order, so it is restricted to queries without ORDER BY.
    Full,
}

/// Translation options. Part of plan-cache keys (two translations share a
/// cached plan only when their options agree), hence `Eq + Hash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TranslationOptions {
    /// Result transport mode.
    pub transport: Transport,
    /// Optimizer aggressiveness for this translation.
    pub optimize: OptimizeLevel,
    /// How the evaluator executes the translated program. Unlike
    /// `optimize` this never changes the program text — it selects the
    /// runtime pipeline — but it rides here so connections, prepared
    /// statements, and services configure it the same way they configure
    /// the optimizer, and so cached plans stay strategy-agnostic (the
    /// strategy is applied at execution time, not baked into the plan).
    pub exec: ExecStrategy,
}

impl TranslationOptions {
    /// Options with the given transport and everything else defaulted.
    pub fn with_transport(transport: Transport) -> TranslationOptions {
        TranslationOptions {
            transport,
            ..TranslationOptions::default()
        }
    }

    /// Returns these options with the optimize level replaced.
    pub fn optimized(mut self, level: OptimizeLevel) -> TranslationOptions {
        self.optimize = level;
        self
    }

    /// Returns these options with the execution strategy replaced.
    pub fn with_exec(mut self, exec: ExecStrategy) -> TranslationOptions {
        self.exec = exec;
        self
    }
}

/// One rule application (or refusal) in an optimizer's rewrite trace.
#[derive(Debug, Clone)]
pub struct RewriteStep {
    /// Rule name (`predicate_pushdown`, `let_inline`, ...).
    pub rule: &'static str,
    /// The layer-4 performance lint the rule discharges (`P002`, ...).
    pub lint: &'static str,
    /// Estimated evaluator fuel before the rule ran.
    pub cost_before: f64,
    /// Estimated evaluator fuel after the rule ran (equals `cost_before`
    /// when the rule was rejected).
    pub cost_after: f64,
    /// Whether the rewrite was kept. A `false` here means the safety gate
    /// (analyzer layers 1–3, and in validating builds the layer-5 bounded
    /// equivalence check) refused the rewritten program, which was then
    /// discarded — never silently executed.
    pub applied: bool,
    /// Human-readable description of what changed (or why it was refused).
    pub note: String,
}

/// The rewrite trace of one optimization: per-rule steps plus whole-program
/// fuel estimates before and after.
#[derive(Debug, Clone, Default)]
pub struct RewriteTrace {
    /// Estimated fuel of the program as generated by stage three.
    pub cost_before: f64,
    /// Estimated fuel of the program actually returned.
    pub cost_after: f64,
    /// One entry per rule that changed the program or was refused by the
    /// safety gate; rules that found nothing to do are omitted.
    pub steps: Vec<RewriteStep>,
}

impl RewriteTrace {
    /// Number of rewrites kept.
    pub fn applied(&self) -> usize {
        self.steps.iter().filter(|s| s.applied).count()
    }

    /// Number of rewrites refused by the safety gate.
    pub fn rejected(&self) -> usize {
        self.steps.iter().filter(|s| !s.applied).count()
    }
}

/// The result of optimizing one generated program.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The program to execute. When no rule applied (or every candidate
    /// was refused), this is the input program unchanged.
    pub xquery: String,
    /// What happened, rule by rule.
    pub trace: RewriteTrace,
}

/// A rewrite engine over generated XQuery programs.
///
/// Defined here (rather than in the optimizer crate) so the plan cache and
/// driver can hold an optimizer without depending on its implementation —
/// the implementation lives in `aldsp-optimizer`, which depends on the
/// analyzer for its safety gate and would otherwise create a dependency
/// cycle through this crate.
pub trait QueryOptimizer {
    /// Rewrites `xquery` (the stage-three output for `prepared`, in the
    /// transport of `options`) under `options.optimize`. Implementations
    /// must be failure-free: a program they cannot improve — or cannot
    /// even parse — comes back unchanged with an empty or explanatory
    /// trace, never an error.
    fn optimize(
        &self,
        prepared: &PreparedQuery,
        xquery: &str,
        options: TranslationOptions,
    ) -> OptimizeOutcome;
}

/// Per-stage wall-clock timings, for the translation-latency experiment
/// (E2 in `EXPERIMENTS.md`).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Stage one (lex + parse + contexts).
    pub parse: Duration,
    /// Stage two (metadata + semantics + typing).
    pub prepare: Duration,
    /// Stage three (+ wrapper) generation.
    pub generate: Duration,
}

/// The result of a successful translation.
#[derive(Debug, Clone)]
pub struct Translation {
    /// The generated XQuery text (prolog included).
    pub xquery: String,
    /// Result-set metadata: one entry per output column.
    pub columns: Vec<OutputColumn>,
    /// Number of `?` parameter markers; the driver binds
    /// `$sqlParam1 ... $sqlParamN`.
    pub parameter_count: usize,
    /// The server metadata generation this translation was prepared
    /// against ([`MetadataApi::epoch`]). A server can reject execution of
    /// a translation carrying an older epoch than its catalog, letting the
    /// driver invalidate its metadata cache and retranslate instead of
    /// returning silently wrong results.
    pub metadata_epoch: u64,
    /// Per-stage timings.
    pub timings: StageTimings,
}

/// The translator: metadata access plus options.
pub struct Translator<M> {
    metadata: M,
}

impl<M: MetadataApi> Translator<M> {
    /// Creates a translator over a metadata API (usually a
    /// [`aldsp_catalog::CachedMetadataApi`]).
    pub fn new(metadata: M) -> Self {
        Translator { metadata }
    }

    /// The underlying metadata API.
    pub fn metadata(&self) -> &M {
        &self.metadata
    }

    /// Translates one SQL-92 SELECT statement.
    pub fn translate(
        &self,
        sql: &str,
        options: TranslationOptions,
    ) -> Result<Translation, TranslateError> {
        Ok(self.translate_full(sql, options)?.translation)
    }

    /// [`Translator::translate`], also returning the stage-two
    /// [`PreparedQuery`] — plan caches keep it so cached plans can be
    /// re-analyzed without re-running the pipeline.
    pub fn translate_full(
        &self,
        sql: &str,
        options: TranslationOptions,
    ) -> Result<FullTranslation, TranslateError> {
        self.translate_full_governed(sql, options, None)
    }

    /// [`Translator::translate_full`] under an optional [`QueryBudget`]:
    /// the budget's deadline and cancellation token are checked before
    /// stage one and between stages, so a cancelled or out-of-time query
    /// stops at the next stage boundary instead of completing generation
    /// it will never use.
    pub fn translate_full_governed(
        &self,
        sql: &str,
        options: TranslationOptions,
        budget: Option<&QueryBudget>,
    ) -> Result<FullTranslation, TranslateError> {
        if let Some(budget) = budget {
            budget.check().map_err(TranslateError::budget)?;
        }
        let start = Instant::now();
        // Captured before stage two's lookups: if the catalog changes
        // mid-translation, the stale epoch makes the server reject the
        // translation rather than execute it against changed metadata.
        let metadata_epoch = self.metadata.epoch();
        let parsed = stage1::parse(sql)?;
        let after_parse = Instant::now();
        self.translate_parsed_at(
            &parsed,
            options,
            metadata_epoch,
            after_parse - start,
            budget,
        )
    }

    /// [`Translator::translate_full`] followed by a rewrite pass: when
    /// `options.optimize` is not [`OptimizeLevel::Off`], runs `optimizer`
    /// over the generated program and returns the optimized text in
    /// `translation.xquery`, with the rewrite trace alongside. At
    /// [`OptimizeLevel::Off`] the optimizer is not consulted and the trace
    /// is `None`.
    pub fn translate_optimized(
        &self,
        sql: &str,
        options: TranslationOptions,
        optimizer: &dyn QueryOptimizer,
    ) -> Result<OptimizedTranslation, TranslateError> {
        let mut full = self.translate_full(sql, options)?;
        let trace = if options.optimize == OptimizeLevel::Off {
            None
        } else {
            let outcome = optimizer.optimize(&full.prepared, &full.translation.xquery, options);
            full.translation.xquery = outcome.xquery;
            Some(outcome.trace)
        };
        Ok(OptimizedTranslation {
            translation: full.translation,
            prepared: full.prepared,
            trace,
        })
    }

    /// Runs stages two and three over an already-parsed statement — the
    /// plan-cache path, where stage one ran once on the original text and
    /// the normalized statement is translated without re-parsing.
    pub fn translate_parsed(
        &self,
        parsed: &stage1::ParsedStatement,
        options: TranslationOptions,
    ) -> Result<FullTranslation, TranslateError> {
        self.translate_parsed_at(parsed, options, self.metadata.epoch(), Duration::ZERO, None)
    }

    fn translate_parsed_at(
        &self,
        parsed: &stage1::ParsedStatement,
        options: TranslationOptions,
        metadata_epoch: u64,
        parse_time: Duration,
        budget: Option<&QueryBudget>,
    ) -> Result<FullTranslation, TranslateError> {
        let check = |budget: Option<&QueryBudget>| match budget {
            Some(b) => b.check().map_err(TranslateError::budget),
            None => Ok(()),
        };
        check(budget)?;
        let after_parse = Instant::now();
        let prepared = stage2::prepare(parsed, &self.metadata)?;
        check(budget)?;
        let after_prepare = Instant::now();

        let generated = stage3::generate(&prepared)?;
        let xquery = match options.transport {
            Transport::Xml => generated.into_query_text(),
            Transport::DelimitedText => wrapper::wrap_delimited(generated, &prepared),
        };
        let after_generate = Instant::now();

        let translation = Translation {
            xquery,
            columns: prepared.output.clone(),
            parameter_count: parsed.parameter_count,
            metadata_epoch,
            timings: StageTimings {
                parse: parse_time,
                prepare: after_prepare - after_parse,
                generate: after_generate - after_prepare,
            },
        };
        Ok(FullTranslation {
            translation,
            prepared,
        })
    }
}

/// A translation together with the stage-two IR it was generated from.
#[derive(Debug, Clone)]
pub struct FullTranslation {
    /// The generated translation.
    pub translation: Translation,
    /// The stage-two prepared query (the cacheable plan form).
    pub prepared: PreparedQuery,
}

/// [`FullTranslation`] plus the optimizer's rewrite trace (when the
/// translation ran at an optimize level above [`OptimizeLevel::Off`];
/// `translation.xquery` then holds the *optimized* program).
#[derive(Debug, Clone)]
pub struct OptimizedTranslation {
    /// The translation; `xquery` is the program to execute.
    pub translation: Translation,
    /// The stage-two prepared query (the cacheable plan form).
    pub prepared: PreparedQuery,
    /// The rewrite trace; `None` at [`OptimizeLevel::Off`].
    pub trace: Option<RewriteTrace>,
}
