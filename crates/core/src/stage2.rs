//! Stage two: semantic analysis and AST preparation.
//!
//! "In stage-two, nodes are moved to locations that are more relevant for
//! consumption by stage-three" (paper §3.4.1): table references resolve
//! against catalog metadata, wildcards expand into column nodes (paper
//! Figure 5's `SELECT *` expansion), columns are checked for existence and
//! ambiguity under SQL-92 qualification rules, the GROUP BY legality rule
//! is enforced (paper §3.4.3's `SELECT EMPNO ... GROUP BY EMPNAME`
//! example), ORDER BY items resolve to output columns, and every
//! expression gets a type via bottom-up inference (§3.5 (v)).

use crate::error::{ErrorKind, TranslateError};
use crate::funcmap;
use crate::ir::*;
use crate::stage1::ParsedStatement;
use aldsp_catalog::{MetadataApi, SqlColumnType};
use aldsp_sql::{
    BinaryOp, ColumnRef, Expr, FunctionArgs, Literal, Query, QueryBody, Select, SelectItem,
    SqlTypeName, TableRef, UnaryOp,
};

/// Runs stage two over a stage-one result.
pub fn prepare(
    parsed: &ParsedStatement,
    metadata: &dyn MetadataApi,
) -> Result<PreparedQuery, TranslateError> {
    let mut preparer = Preparer {
        metadata,
        ctx_counter: 0,
    };
    preparer.prepare_query(&parsed.query, None)
}

struct Preparer<'a> {
    metadata: &'a dyn MetadataApi,
    ctx_counter: u32,
}

/// Column-resolution scope: the current FROM's columns chained to
/// enclosing queries' scopes (correlation).
struct Scope<'a> {
    columns: &'a [RsnColumn],
    parent: Option<&'a Scope<'a>>,
}

impl<'a> Scope<'a> {
    fn resolve(&self, column: &ColumnRef) -> Result<&RsnColumn, TranslateError> {
        let matches: Vec<&RsnColumn> = self
            .columns
            .iter()
            .filter(|c| {
                c.name == column.name
                    && column.qualifier.as_deref().is_none_or(|q| c.range_var == q)
            })
            .collect();
        match matches.as_slice() {
            [one] => Ok(one),
            [] => match self.parent {
                Some(parent) => parent.resolve(column),
                None => Err(TranslateError::semantic(format!("unknown column {column}"))),
            },
            _ => Err(TranslateError::semantic(format!(
                "ambiguous column {column}"
            ))),
        }
    }
}

impl<'a> Preparer<'a> {
    fn prepare_query(
        &mut self,
        query: &Query,
        parent: Option<&Scope<'_>>,
    ) -> Result<PreparedQuery, TranslateError> {
        let body = self.prepare_body(&query.body, parent)?;
        let output = body.output().to_vec();

        // ORDER BY resolution: SQL-92 restricts sort keys to output
        // columns — by ordinal, by output name, or by an expression equal
        // to a select item.
        let mut order_by = Vec::with_capacity(query.order_by.len());
        for item in &query.order_by {
            let column = self.resolve_order_item(&item.expr, &body, &output)?;
            order_by.push(PreparedOrder {
                column,
                ascending: item.ascending,
            });
        }
        Ok(PreparedQuery {
            body,
            order_by,
            output,
        })
    }

    fn resolve_order_item(
        &mut self,
        expr: &Expr,
        body: &PreparedBody,
        output: &[OutputColumn],
    ) -> Result<usize, TranslateError> {
        match expr {
            Expr::Literal(Literal::Integer(n)) => {
                let n = *n;
                if n < 1 || n as usize > output.len() {
                    return Err(TranslateError::semantic(format!(
                        "ORDER BY ordinal {n} out of range 1..{}",
                        output.len()
                    )));
                }
                Ok(n as usize - 1)
            }
            Expr::Column(c) => {
                let written = match &c.qualifier {
                    Some(q) => format!("{q}.{}", c.name),
                    None => c.name.clone(),
                };
                // Prefer an exact output-name match, then a unique label
                // match.
                if let Some(i) = output.iter().position(|o| o.name == written) {
                    return Ok(i);
                }
                let labelled: Vec<usize> = output
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.label == c.name)
                    .map(|(i, _)| i)
                    .collect();
                match labelled.as_slice() {
                    [one] => Ok(*one),
                    [] => Err(TranslateError::semantic(format!(
                        "ORDER BY column {written} is not an output column"
                    ))),
                    _ => Err(TranslateError::semantic(format!(
                        "ORDER BY column {written} is ambiguous"
                    ))),
                }
            }
            other => {
                // Expression form: must equal a select item (only
                // resolvable for a plain SELECT body).
                let PreparedBody::Select(select) = body else {
                    return Err(TranslateError::semantic(
                        "ORDER BY expressions are not supported over set operations",
                    ));
                };
                let scope_columns: Vec<RsnColumn> =
                    select.from.iter().flat_map(|r| r.columns()).collect();
                let scope = Scope {
                    columns: &scope_columns,
                    parent: None,
                };
                let translated = self.translate_expr(other, &scope, select.grouped)?;
                select
                    .items
                    .iter()
                    .find(|item| item.expr == translated)
                    .map(|item| item.output)
                    .ok_or_else(|| {
                        TranslateError::semantic("ORDER BY expression must match a select item")
                    })
            }
        }
    }

    fn prepare_body(
        &mut self,
        body: &QueryBody,
        parent: Option<&Scope<'_>>,
    ) -> Result<PreparedBody, TranslateError> {
        match body {
            QueryBody::Select(select) => {
                let prepared = self.prepare_select(select, parent)?;
                Ok(PreparedBody::Select(Box::new(prepared)))
            }
            QueryBody::SetOp {
                left,
                op,
                all,
                right,
            } => {
                let left = self.prepare_body(left, parent)?;
                let right = self.prepare_body(right, parent)?;
                let l_out = left.output();
                let r_out = right.output();
                if l_out.len() != r_out.len() {
                    return Err(TranslateError::semantic(format!(
                        "set operands have different arity: {} vs {}",
                        l_out.len(),
                        r_out.len()
                    )));
                }
                // Output: left names; types promote across sides; a column
                // is nullable when either side's is.
                let output: Vec<OutputColumn> = l_out
                    .iter()
                    .zip(r_out)
                    .map(|(l, r)| {
                        let sql_type = match (l.sql_type, r.sql_type) {
                            (Some(a), Some(b)) => Some(promote_types(a, b)),
                            (t, None) | (None, t) => t,
                        };
                        Ok(OutputColumn {
                            name: l.name.clone(),
                            label: l.label.clone(),
                            sql_type,
                            nullable: l.nullable || r.nullable,
                        })
                    })
                    .collect::<Result<_, TranslateError>>()?;
                Ok(PreparedBody::SetOp {
                    left: Box::new(left),
                    op: *op,
                    all: *all,
                    right: Box::new(right),
                    output,
                })
            }
        }
    }

    fn prepare_select(
        &mut self,
        select: &Select,
        parent: Option<&Scope<'_>>,
    ) -> Result<PreparedSelect, TranslateError> {
        self.ctx_counter += 1;
        let ctx_id = self.ctx_counter;

        // FROM: build RSNs (paper Figure 3's node tree).
        let mut from = Vec::with_capacity(select.from.len());
        for table_ref in &select.from {
            from.push(self.build_rsn(table_ref, parent)?);
        }
        // Range variables must be unique within one FROM clause.
        {
            let mut seen = std::collections::HashSet::new();
            for rsn in &from {
                for rv in rsn.range_vars() {
                    if !seen.insert(rv.to_string()) {
                        return Err(TranslateError::semantic(format!(
                            "duplicate range variable {rv} in FROM (alias required)"
                        )));
                    }
                }
            }
        }
        let scope_columns: Vec<RsnColumn> = from.iter().flat_map(|r| r.columns()).collect();
        let scope = Scope {
            columns: &scope_columns,
            parent,
        };

        // Grouping detection before item translation so aggregate
        // legality is known.
        let has_aggregates = select.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }) || select
            .having
            .as_ref()
            .is_some_and(|h| h.contains_aggregate());
        let grouped = !select.group_by.is_empty() || has_aggregates;

        // Wildcard expansion (paper Figure 5: "actual column information
        // must be substituted for the column-wildcard").
        let expanded = self.expand_items(select, &scope_columns)?;

        // GROUP BY keys.
        let mut group_by = Vec::with_capacity(select.group_by.len());
        for key in &select.group_by {
            let t = self.translate_expr(key, &scope, false)?;
            if t.contains_aggregate() {
                return Err(TranslateError::semantic(
                    "aggregates are not allowed in GROUP BY",
                ));
            }
            group_by.push(t);
        }

        // Projection.
        let mut items = Vec::with_capacity(expanded.len());
        let mut output = Vec::with_capacity(expanded.len());
        let mut used_names = std::collections::HashSet::new();
        for (expr, alias) in &expanded {
            let t = self.translate_expr(expr, &scope, grouped)?;
            let (label, base_name) = match (alias, &t.kind) {
                (Some(a), _) => (a.clone(), a.clone()),
                (None, TExprKind::Column { range_var, column }) => {
                    (column.clone(), format!("{range_var}.{column}"))
                }
                (None, _) => {
                    let n = format!("EXPR{}", output.len() + 1);
                    (n.clone(), n)
                }
            };
            // Result element names must be unique within a row.
            let mut name = base_name.clone();
            let mut suffix = 1;
            while !used_names.insert(name.clone()) {
                suffix += 1;
                name = format!("{base_name}_{suffix}");
            }
            output.push(OutputColumn {
                name,
                label,
                sql_type: t.ty,
                nullable: t.nullable,
            });
            items.push(PreparedItem {
                expr: t,
                output: output.len() - 1,
            });
        }

        // WHERE (no aggregates).
        let where_clause = match &select.where_clause {
            Some(w) => {
                let t = self.translate_expr(w, &scope, false)?;
                Some(t)
            }
            None => None,
        };

        // HAVING (aggregates allowed).
        let having = match &select.having {
            Some(h) => Some(self.translate_expr(h, &scope, true)?),
            None => None,
        };

        // GROUP BY legality (paper §3.4.3).
        if grouped {
            for item in &items {
                check_grouped(&item.expr, &group_by)?;
            }
            if let Some(h) = &having {
                check_grouped(h, &group_by)?;
            }
        }

        Ok(PreparedSelect {
            ctx_id,
            distinct: select.distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            grouped,
            output,
        })
    }

    fn expand_items(
        &mut self,
        select: &Select,
        scope_columns: &[RsnColumn],
    ) -> Result<Vec<(Expr, Option<String>)>, TranslateError> {
        let mut out = Vec::new();
        for item in &select.items {
            match item {
                SelectItem::Wildcard => {
                    for c in scope_columns {
                        out.push((
                            Expr::Column(ColumnRef::qualified(c.range_var.clone(), c.name.clone())),
                            None,
                        ));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let cols: Vec<&RsnColumn> =
                        scope_columns.iter().filter(|c| &c.range_var == q).collect();
                    if cols.is_empty() {
                        return Err(TranslateError::semantic(format!(
                            "unknown range variable {q} in {q}.*"
                        )));
                    }
                    for c in cols {
                        out.push((
                            Expr::Column(ColumnRef::qualified(c.range_var.clone(), c.name.clone())),
                            None,
                        ));
                    }
                }
                SelectItem::Expr { expr, alias } => out.push((expr.clone(), alias.clone())),
            }
        }
        Ok(out)
    }

    fn build_rsn(
        &mut self,
        table_ref: &TableRef,
        parent: Option<&Scope<'_>>,
    ) -> Result<Rsn, TranslateError> {
        match table_ref {
            TableRef::Table { name, alias } => {
                let entry = self.metadata.table(&name.0)?;
                let range_var = alias.clone().unwrap_or_else(|| name.base().to_string());
                Ok(Rsn::Table { range_var, entry })
            }
            TableRef::Derived { query, alias } => {
                let prepared = self.prepare_query(query, parent)?;
                Ok(Rsn::Derived {
                    range_var: alias.clone(),
                    query: Box::new(prepared),
                })
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let (l, r) = (
                    self.build_rsn(left, parent)?,
                    self.build_rsn(right, parent)?,
                );
                // RIGHT OUTER stays RIGHT OUTER in the IR so that wildcard
                // expansion preserves SQL's left-to-right column order;
                // stage three generates it as a LEFT OUTER with swapped
                // operands (element naming makes operand order irrelevant
                // there).
                let kind = *kind;
                // ON sees the join's own columns plus enclosing scopes.
                let join_columns: Vec<RsnColumn> = {
                    let mut c = l.columns();
                    c.extend(r.columns());
                    c
                };
                let on = match on {
                    Some(expr) => {
                        let scope = Scope {
                            columns: &join_columns,
                            parent,
                        };
                        let t = self.translate_expr(expr, &scope, false)?;
                        if t.contains_aggregate() {
                            return Err(TranslateError::semantic(
                                "aggregates are not allowed in JOIN conditions",
                            ));
                        }
                        Some(t)
                    }
                    None => None,
                };
                Ok(Rsn::Join {
                    kind,
                    left: Box::new(l),
                    right: Box::new(r),
                    on,
                })
            }
        }
    }

    // ---- expression translation + type inference ------------------------

    fn translate_expr(
        &mut self,
        expr: &Expr,
        scope: &Scope<'_>,
        aggregates_allowed: bool,
    ) -> Result<TExpr, TranslateError> {
        let t = |me: &mut Self, e: &Expr| me.translate_expr(e, scope, aggregates_allowed);
        match expr {
            Expr::Column(c) => {
                let col = scope.resolve(c)?;
                Ok(TExpr::new(
                    TExprKind::Column {
                        range_var: col.range_var.clone(),
                        column: col.name.clone(),
                    },
                    col.sql_type,
                    col.nullable,
                ))
            }
            Expr::Literal(l) => Ok(literal_texpr(l)),
            Expr::Parameter(n) => Ok(TExpr::new(TExprKind::Parameter(*n), None, true)),
            Expr::Unary { op, expr } => {
                let inner = t(self, expr)?;
                match op {
                    UnaryOp::Plus => Ok(inner),
                    UnaryOp::Neg => {
                        let ty = inner.ty;
                        let nullable = inner.nullable;
                        Ok(TExpr::new(TExprKind::Neg(Box::new(inner)), ty, nullable))
                    }
                    UnaryOp::Not => {
                        let nullable = inner.nullable;
                        Ok(TExpr::new(
                            TExprKind::Not(Box::new(inner)),
                            Some(SqlColumnType::Boolean),
                            nullable,
                        ))
                    }
                }
            }
            Expr::Binary { left, op, right } => {
                let l = t(self, left)?;
                let r = t(self, right)?;
                let nullable = l.nullable || r.nullable;
                match op {
                    BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
                        let arith_op = match op {
                            BinaryOp::Add => ArithOp::Add,
                            BinaryOp::Sub => ArithOp::Sub,
                            BinaryOp::Mul => ArithOp::Mul,
                            _ => ArithOp::Div,
                        };
                        let ty = match (l.ty, r.ty) {
                            (Some(a), Some(b)) => {
                                if !a.is_numeric() || !b.is_numeric() {
                                    return Err(TranslateError::semantic(format!(
                                        "arithmetic over non-numeric types {} and {}",
                                        a.sql_name(),
                                        b.sql_name()
                                    )));
                                }
                                Some(promote_types(a, b))
                            }
                            // SQL-92 derives a parameter's type from its
                            // context: `col + ?` is typed by the column.
                            (Some(t), None) | (None, Some(t)) if t.is_numeric() => Some(t),
                            _ => None,
                        };
                        Ok(TExpr::new(
                            TExprKind::Arith {
                                op: arith_op,
                                left: Box::new(l),
                                right: Box::new(r),
                            },
                            ty,
                            nullable,
                        ))
                    }
                    BinaryOp::Concat => Ok(TExpr::new(
                        TExprKind::Concat(Box::new(l), Box::new(r)),
                        Some(SqlColumnType::Varchar),
                        nullable,
                    )),
                    BinaryOp::Compare(c) => Ok(TExpr::new(
                        TExprKind::Compare {
                            op: *c,
                            left: Box::new(l),
                            right: Box::new(r),
                        },
                        Some(SqlColumnType::Boolean),
                        nullable,
                    )),
                    BinaryOp::And => Ok(TExpr::new(
                        TExprKind::And(Box::new(l), Box::new(r)),
                        Some(SqlColumnType::Boolean),
                        nullable,
                    )),
                    BinaryOp::Or => Ok(TExpr::new(
                        TExprKind::Or(Box::new(l), Box::new(r)),
                        Some(SqlColumnType::Boolean),
                        nullable,
                    )),
                }
            }
            Expr::Function { name, args } => {
                self.translate_function(name, args, scope, aggregates_allowed)
            }
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                let operand = match operand {
                    Some(o) => Some(Box::new(t(self, o)?)),
                    None => None,
                };
                let mut t_branches = Vec::with_capacity(branches.len());
                for (w, r) in branches {
                    t_branches.push((t(self, w)?, t(self, r)?));
                }
                let else_result = match else_result {
                    Some(e) => Some(Box::new(t(self, e)?)),
                    None => None,
                };
                let ty = t_branches
                    .iter()
                    .map(|(_, r)| r)
                    .chain(else_result.iter().map(|b| &**b))
                    .find_map(|e| e.ty);
                let nullable = else_result.is_none()
                    || t_branches.iter().any(|(_, r)| r.nullable)
                    || else_result.as_ref().is_some_and(|e| e.nullable);
                Ok(TExpr::new(
                    TExprKind::Case {
                        operand,
                        branches: t_branches,
                        else_result,
                    },
                    ty,
                    nullable,
                ))
            }
            Expr::Cast { expr, target } => {
                let inner = t(self, expr)?;
                let target = type_name_to_column(*target);
                let nullable = inner.nullable;
                Ok(TExpr::new(
                    TExprKind::Cast {
                        expr: Box::new(inner),
                        target,
                    },
                    Some(target),
                    nullable,
                ))
            }
            Expr::IsNull { expr, negated } => {
                let inner = t(self, expr)?;
                Ok(TExpr::new(
                    TExprKind::IsNull {
                        expr: Box::new(inner),
                        negated: *negated,
                    },
                    Some(SqlColumnType::Boolean),
                    false,
                ))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = t(self, expr)?;
                let lo = t(self, low)?;
                let hi = t(self, high)?;
                let nullable = e.nullable || lo.nullable || hi.nullable;
                Ok(TExpr::new(
                    TExprKind::Between {
                        expr: Box::new(e),
                        low: Box::new(lo),
                        high: Box::new(hi),
                        negated: *negated,
                    },
                    Some(SqlColumnType::Boolean),
                    nullable,
                ))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let e = t(self, expr)?;
                let mut t_list = Vec::with_capacity(list.len());
                for item in list {
                    t_list.push(t(self, item)?);
                }
                let nullable = e.nullable || t_list.iter().any(|x| x.nullable);
                Ok(TExpr::new(
                    TExprKind::InList {
                        expr: Box::new(e),
                        list: t_list,
                        negated: *negated,
                    },
                    Some(SqlColumnType::Boolean),
                    nullable,
                ))
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let e = t(self, expr)?;
                let sub = self.prepare_subquery(query, scope, 1)?;
                let nullable = e.nullable;
                Ok(TExpr::new(
                    TExprKind::InSubquery {
                        expr: Box::new(e),
                        query: Box::new(sub),
                        negated: *negated,
                    },
                    Some(SqlColumnType::Boolean),
                    nullable,
                ))
            }
            Expr::Exists { query, negated } => {
                let sub = self.prepare_subquery(query, scope, 0)?;
                Ok(TExpr::new(
                    TExprKind::Exists {
                        query: Box::new(sub),
                        negated: *negated,
                    },
                    Some(SqlColumnType::Boolean),
                    false,
                ))
            }
            Expr::ScalarSubquery(query) => {
                let sub = self.prepare_subquery(query, scope, 1)?;
                let ty = sub.output[0].sql_type;
                Ok(TExpr::new(
                    TExprKind::ScalarSubquery(Box::new(sub)),
                    ty,
                    true,
                ))
            }
            Expr::Quantified {
                expr,
                op,
                quantifier,
                query,
            } => {
                let e = t(self, expr)?;
                let sub = self.prepare_subquery(query, scope, 1)?;
                let nullable = e.nullable;
                Ok(TExpr::new(
                    TExprKind::Quantified {
                        expr: Box::new(e),
                        op: *op,
                        quantifier: *quantifier,
                        query: Box::new(sub),
                    },
                    Some(SqlColumnType::Boolean),
                    nullable,
                ))
            }
            Expr::Like {
                expr,
                pattern,
                escape,
                negated,
            } => {
                let e = t(self, expr)?;
                let p = t(self, pattern)?;
                let esc = match escape {
                    Some(x) => Some(Box::new(t(self, x)?)),
                    None => None,
                };
                let nullable = e.nullable || p.nullable;
                Ok(TExpr::new(
                    TExprKind::Like {
                        expr: Box::new(e),
                        pattern: Box::new(p),
                        escape: esc,
                        negated: *negated,
                    },
                    Some(SqlColumnType::Boolean),
                    nullable,
                ))
            }
            Expr::Substring {
                expr,
                start,
                length,
            } => {
                let e = t(self, expr)?;
                let s = t(self, start)?;
                let l = match length {
                    Some(x) => Some(Box::new(t(self, x)?)),
                    None => None,
                };
                let nullable = e.nullable || s.nullable || l.as_ref().is_some_and(|x| x.nullable);
                Ok(TExpr::new(
                    TExprKind::Substring {
                        expr: Box::new(e),
                        start: Box::new(s),
                        length: l,
                    },
                    Some(SqlColumnType::Varchar),
                    nullable,
                ))
            }
            Expr::Trim {
                side,
                trim_chars,
                expr,
            } => {
                let e = t(self, expr)?;
                let chars = match trim_chars {
                    Some(x) => Some(Box::new(t(self, x)?)),
                    None => None,
                };
                let nullable = e.nullable || chars.as_ref().is_some_and(|x| x.nullable);
                Ok(TExpr::new(
                    TExprKind::Trim {
                        side: *side,
                        trim_chars: chars,
                        expr: Box::new(e),
                    },
                    Some(SqlColumnType::Varchar),
                    nullable,
                ))
            }
            Expr::Position { needle, haystack } => {
                let n = t(self, needle)?;
                let h = t(self, haystack)?;
                let nullable = n.nullable || h.nullable;
                Ok(TExpr::new(
                    TExprKind::Position {
                        needle: Box::new(n),
                        haystack: Box::new(h),
                    },
                    Some(SqlColumnType::Integer),
                    nullable,
                ))
            }
        }
    }

    fn translate_function(
        &mut self,
        name: &str,
        args: &FunctionArgs,
        scope: &Scope<'_>,
        aggregates_allowed: bool,
    ) -> Result<TExpr, TranslateError> {
        if let Some(func) = AggFunc::from_name(name) {
            if !aggregates_allowed {
                return Err(TranslateError::semantic(format!(
                    "aggregate {name} is not allowed here"
                )));
            }
            return match args {
                FunctionArgs::Star => Ok(TExpr::new(
                    TExprKind::Aggregate {
                        func,
                        distinct: false,
                        arg: None,
                    },
                    Some(SqlColumnType::Bigint),
                    false,
                )),
                FunctionArgs::List { distinct, args } => {
                    if args.len() != 1 {
                        return Err(TranslateError::semantic(format!(
                            "{name} expects exactly one argument"
                        )));
                    }
                    // Aggregate arguments may not themselves aggregate.
                    let arg = self.translate_expr(&args[0], scope, false)?;
                    let (ty, nullable) = match func {
                        AggFunc::Count => (Some(SqlColumnType::Bigint), false),
                        AggFunc::Sum | AggFunc::Min | AggFunc::Max => (arg.ty, true),
                        AggFunc::Avg => (
                            match arg.ty {
                                Some(SqlColumnType::Real) | Some(SqlColumnType::Double) => {
                                    Some(SqlColumnType::Double)
                                }
                                Some(_) => Some(SqlColumnType::Decimal),
                                None => None,
                            },
                            true,
                        ),
                    };
                    Ok(TExpr::new(
                        TExprKind::Aggregate {
                            func,
                            distinct: *distinct,
                            arg: Some(Box::new(arg)),
                        },
                        ty,
                        nullable,
                    ))
                }
            };
        }

        // Scalar function.
        let FunctionArgs::List { distinct, args } = args else {
            return Err(TranslateError::semantic(format!(
                "{name}(*) is only valid for COUNT"
            )));
        };
        if *distinct {
            return Err(TranslateError::semantic(format!(
                "DISTINCT is not valid in scalar function {name}"
            )));
        }
        if !funcmap::is_known_scalar(name) {
            return Err(TranslateError {
                kind: ErrorKind::Unsupported,
                message: format!("unknown function {name}"),
                offset: None,
            });
        }
        let mut t_args = Vec::with_capacity(args.len());
        for a in args {
            t_args.push(self.translate_expr(a, scope, aggregates_allowed)?);
        }
        if let Some(mapping) = funcmap::lookup(name) {
            let (min, max) = mapping.arity;
            if t_args.len() < min || t_args.len() > max {
                return Err(TranslateError::semantic(format!(
                    "{name} expects {min}..{} arguments, got {}",
                    if max == usize::MAX {
                        "N".to_string()
                    } else {
                        max.to_string()
                    },
                    t_args.len()
                )));
            }
            let arg_types: Vec<_> = t_args.iter().map(|a| a.ty).collect();
            let ty = mapping.result_type.resolve(&arg_types);
            let nullable = t_args.iter().any(|a| a.nullable);
            return Ok(TExpr::new(
                TExprKind::ScalarFn {
                    name: name.to_string(),
                    args: t_args,
                },
                ty,
                nullable,
            ));
        }
        // Structural functions.
        let (ty, nullable) = match name {
            "MOD" => {
                if t_args.len() != 2 {
                    return Err(TranslateError::semantic("MOD expects two arguments"));
                }
                (
                    Some(SqlColumnType::Integer),
                    t_args.iter().any(|a| a.nullable),
                )
            }
            "COALESCE" => {
                if t_args.is_empty() {
                    return Err(TranslateError::semantic(
                        "COALESCE expects at least one argument",
                    ));
                }
                (
                    t_args.iter().find_map(|a| a.ty),
                    t_args.iter().all(|a| a.nullable),
                )
            }
            "NULLIF" => {
                if t_args.len() != 2 {
                    return Err(TranslateError::semantic("NULLIF expects two arguments"));
                }
                (t_args[0].ty, true)
            }
            _ => unreachable!("is_known_scalar covered above"),
        };
        Ok(TExpr::new(
            TExprKind::ScalarFn {
                name: name.to_string(),
                args: t_args,
            },
            ty,
            nullable,
        ))
    }

    fn prepare_subquery(
        &mut self,
        query: &Query,
        scope: &Scope<'_>,
        required_columns: usize,
    ) -> Result<PreparedQuery, TranslateError> {
        let sub = self.prepare_query(query, Some(scope))?;
        if required_columns > 0 && sub.output.len() != required_columns {
            return Err(TranslateError::semantic(format!(
                "subquery must return {required_columns} column(s), returns {}",
                sub.output.len()
            )));
        }
        Ok(sub)
    }
}

/// SQL-92 GROUP BY legality: in a grouped query every projected/HAVING
/// column must appear in the GROUP BY list or inside an aggregate.
fn check_grouped(expr: &TExpr, group_keys: &[TExpr]) -> Result<(), TranslateError> {
    if group_keys.iter().any(|k| k == expr) {
        return Ok(());
    }
    if expr.is_aggregate() {
        return Ok(());
    }
    match &expr.kind {
        TExprKind::Column { range_var, column } => Err(TranslateError::semantic(format!(
            "column {range_var}.{column} must appear in GROUP BY or inside an aggregate"
        ))),
        TExprKind::InSubquery { .. }
        | TExprKind::Exists { .. }
        | TExprKind::ScalarSubquery(_)
        | TExprKind::Quantified { .. } => Err(TranslateError::unsupported(
            "subqueries are not supported in grouped select lists or HAVING",
        )),
        _ => {
            let mut result = Ok(());
            expr.visit_children(&mut |child| {
                if result.is_ok() {
                    result = check_grouped(child, group_keys);
                }
            });
            result
        }
    }
}

fn literal_texpr(l: &Literal) -> TExpr {
    let (ty, nullable) = match l {
        Literal::Integer(_) => (Some(SqlColumnType::Integer), false),
        Literal::Decimal(_) => (Some(SqlColumnType::Decimal), false),
        Literal::Double(_) => (Some(SqlColumnType::Double), false),
        Literal::String(_) => (Some(SqlColumnType::Varchar), false),
        Literal::Date(_) => (Some(SqlColumnType::Date), false),
        Literal::Null => (None, true),
    };
    TExpr::new(TExprKind::Literal(l.clone()), ty, nullable)
}

/// SQL numeric promotion: integer < decimal < double (paper §3.5 (v):
/// "the resulting datatype is inferred by applying the SQL rules of
/// promotion and casting").
pub fn promote_types(a: SqlColumnType, b: SqlColumnType) -> SqlColumnType {
    use SqlColumnType as T;
    if a == b {
        return a;
    }
    let rank = |t: T| match t {
        T::Smallint => 1,
        T::Integer => 2,
        T::Bigint => 3,
        T::Decimal => 4,
        T::Real => 5,
        T::Double => 6,
        _ => 0,
    };
    if rank(a) > 0 && rank(b) > 0 {
        if rank(a) >= rank(b) {
            a
        } else {
            b
        }
    } else {
        // Non-numeric mixes: keep the left type (set-op metadata only).
        a
    }
}

fn type_name_to_column(t: SqlTypeName) -> SqlColumnType {
    match t {
        SqlTypeName::Smallint => SqlColumnType::Smallint,
        SqlTypeName::Integer => SqlColumnType::Integer,
        SqlTypeName::Bigint => SqlColumnType::Bigint,
        SqlTypeName::Decimal => SqlColumnType::Decimal,
        SqlTypeName::Real => SqlColumnType::Real,
        SqlTypeName::Double => SqlColumnType::Double,
        SqlTypeName::Char => SqlColumnType::Char,
        SqlTypeName::Varchar => SqlColumnType::Varchar,
        SqlTypeName::Date => SqlColumnType::Date,
    }
}
