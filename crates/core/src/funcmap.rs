//! The preconfigured SQL → XQuery function map (paper §3.5 (iii): "Many
//! SQL functions can be directly mapped to functions in the XQuery
//! Functions and Operators library. The translator uses a preconfigured
//! map of SQL and XQuery functions.").

use aldsp_catalog::SqlColumnType;

/// How a mapped function treats SQL NULL arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NullBehavior {
    /// The XQuery function already returns the empty sequence for empty
    /// input (our `fn-bea:sql-*` extensions), so no guard is needed.
    Propagates,
    /// The XQuery function coerces empty input to a default (`""`, `0`),
    /// so the generator must wrap nullable arguments in an emptiness
    /// guard to preserve SQL's NULL-in → NULL-out rule.
    NeedsGuard,
}

/// The declared return type of a mapped function. Every entry must carry
/// one — the stage-2 inference and the analyzer's type pass both consume
/// it, and a test below asserts the declaration is well-formed for every
/// dispatcher entry (no `None`-means-something implicit rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReturnType {
    /// A fixed SQL type, independent of the arguments.
    Fixed(SqlColumnType),
    /// The type of the argument at this index (numeric identities such as
    /// `ABS` and `ROUND` return their operand's type under SQL-92).
    SameAsArg(usize),
}

impl ReturnType {
    /// Resolves the declaration against the (inferred) argument types;
    /// `None` only when the declaration delegates to an argument whose
    /// type is itself statically unknown.
    pub fn resolve(self, arg_types: &[Option<SqlColumnType>]) -> Option<SqlColumnType> {
        match self {
            ReturnType::Fixed(t) => Some(t),
            ReturnType::SameAsArg(i) => arg_types.get(i).copied().flatten(),
        }
    }
}

/// One entry of the function map.
#[derive(Debug, Clone, Copy)]
pub struct FunctionMapping {
    /// SQL name (uppercased).
    pub sql_name: &'static str,
    /// Target XQuery function.
    pub xquery_name: &'static str,
    /// Argument count (min, max); `usize::MAX` for variadic.
    pub arity: (usize, usize),
    /// Declared result type.
    pub result_type: ReturnType,
    /// NULL handling.
    pub null_behavior: NullBehavior,
}

/// The map. `SUBSTRING`, `TRIM`, and `POSITION` have dedicated AST nodes
/// (special SQL-92 syntax) and are generated directly; everything callable
/// through ordinary function syntax goes through this table.
pub const FUNCTION_MAP: &[FunctionMapping] = &[
    FunctionMapping {
        sql_name: "UPPER",
        xquery_name: "fn:upper-case",
        arity: (1, 1),
        result_type: ReturnType::Fixed(SqlColumnType::Varchar),
        null_behavior: NullBehavior::NeedsGuard,
    },
    FunctionMapping {
        sql_name: "UCASE",
        xquery_name: "fn:upper-case",
        arity: (1, 1),
        result_type: ReturnType::Fixed(SqlColumnType::Varchar),
        null_behavior: NullBehavior::NeedsGuard,
    },
    FunctionMapping {
        sql_name: "LOWER",
        xquery_name: "fn:lower-case",
        arity: (1, 1),
        result_type: ReturnType::Fixed(SqlColumnType::Varchar),
        null_behavior: NullBehavior::NeedsGuard,
    },
    FunctionMapping {
        sql_name: "LCASE",
        xquery_name: "fn:lower-case",
        arity: (1, 1),
        result_type: ReturnType::Fixed(SqlColumnType::Varchar),
        null_behavior: NullBehavior::NeedsGuard,
    },
    FunctionMapping {
        sql_name: "CHAR_LENGTH",
        xquery_name: "fn:string-length",
        arity: (1, 1),
        result_type: ReturnType::Fixed(SqlColumnType::Integer),
        null_behavior: NullBehavior::NeedsGuard,
    },
    FunctionMapping {
        sql_name: "CHARACTER_LENGTH",
        xquery_name: "fn:string-length",
        arity: (1, 1),
        result_type: ReturnType::Fixed(SqlColumnType::Integer),
        null_behavior: NullBehavior::NeedsGuard,
    },
    FunctionMapping {
        sql_name: "LENGTH",
        xquery_name: "fn:string-length",
        arity: (1, 1),
        result_type: ReturnType::Fixed(SqlColumnType::Integer),
        null_behavior: NullBehavior::NeedsGuard,
    },
    FunctionMapping {
        sql_name: "CONCAT",
        xquery_name: "fn:concat",
        arity: (2, usize::MAX),
        result_type: ReturnType::Fixed(SqlColumnType::Varchar),
        null_behavior: NullBehavior::NeedsGuard,
    },
    FunctionMapping {
        sql_name: "ABS",
        xquery_name: "fn:abs",
        arity: (1, 1),
        result_type: ReturnType::SameAsArg(0),
        null_behavior: NullBehavior::Propagates,
    },
    FunctionMapping {
        sql_name: "ROUND",
        xquery_name: "fn:round",
        arity: (1, 1),
        result_type: ReturnType::SameAsArg(0),
        null_behavior: NullBehavior::Propagates,
    },
    FunctionMapping {
        sql_name: "FLOOR",
        xquery_name: "fn:floor",
        arity: (1, 1),
        result_type: ReturnType::SameAsArg(0),
        null_behavior: NullBehavior::Propagates,
    },
    FunctionMapping {
        sql_name: "CEILING",
        xquery_name: "fn:ceiling",
        arity: (1, 1),
        result_type: ReturnType::SameAsArg(0),
        null_behavior: NullBehavior::Propagates,
    },
];

/// Looks up a SQL function.
pub fn lookup(sql_name: &str) -> Option<&'static FunctionMapping> {
    FUNCTION_MAP.iter().find(|m| m.sql_name == sql_name)
}

/// SQL functions handled structurally by the generator rather than via
/// the table (`MOD` maps to the `mod` operator; `COALESCE` to nested
/// `fn-bea:if-empty`; `NULLIF` to a let-guarded conditional).
pub const STRUCTURAL_FUNCTIONS: &[&str] = &["MOD", "COALESCE", "NULLIF"];

/// True when `name` is a known scalar function (mapped or structural).
pub fn is_known_scalar(name: &str) -> bool {
    lookup(name).is_some() || STRUCTURAL_FUNCTIONS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_contains_core_entries() {
        assert_eq!(lookup("UPPER").unwrap().xquery_name, "fn:upper-case");
        assert_eq!(
            lookup("CHAR_LENGTH").unwrap().xquery_name,
            "fn:string-length"
        );
        assert!(lookup("NO_SUCH").is_none());
    }

    #[test]
    fn every_entry_declares_a_wellformed_return_type() {
        for m in FUNCTION_MAP {
            match m.result_type {
                ReturnType::Fixed(_) => {}
                ReturnType::SameAsArg(i) => assert!(
                    i < m.arity.0,
                    "{}: SameAsArg({i}) exceeds the minimum arity {}",
                    m.sql_name,
                    m.arity.0
                ),
            }
            // A fully-typed argument list always resolves to a type.
            let args = vec![Some(SqlColumnType::Decimal); m.arity.0.max(1)];
            assert!(
                m.result_type.resolve(&args).is_some(),
                "{} does not resolve a return type",
                m.sql_name
            );
        }
    }

    #[test]
    fn structural_functions_known() {
        assert!(is_known_scalar("MOD"));
        assert!(is_known_scalar("COALESCE"));
        assert!(is_known_scalar("UPPER"));
        assert!(!is_known_scalar("FOO"));
    }
}
