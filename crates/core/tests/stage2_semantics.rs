//! Focused stage-two tests: resolution rules, type inference, output
//! naming, and the validation matrix (paper §3.4.3: "the semantic rules
//! of the language are varied and many").

use aldsp_catalog::{
    ApplicationBuilder, CachedMetadataApi, InProcessMetadataApi, SqlColumnType, TableLocator,
};
use aldsp_core::{prepare, stage1, PreparedBody, TranslationOptions, Translator};

fn translator() -> Translator<CachedMetadataApi<InProcessMetadataApi>> {
    let app = ApplicationBuilder::new("APP")
        .project("P")
        .data_service("T")
        .physical_table("T", |t| {
            t.column("I", SqlColumnType::Integer, false)
                .column("D", SqlColumnType::Decimal, true)
                .column("R", SqlColumnType::Real, true)
                .column("S", SqlColumnType::Varchar, true)
                .column("DT", SqlColumnType::Date, false)
        })
        .finish_service()
        .data_service("U")
        .physical_table("U", |t| {
            t.column("I", SqlColumnType::Integer, false)
                .column("X", SqlColumnType::Varchar, true)
        })
        .finish_service()
        .finish_project()
        .build();
    Translator::new(CachedMetadataApi::new(InProcessMetadataApi::new(
        TableLocator::for_application(&app),
    )))
}

fn prepared(sql: &str) -> aldsp_core::PreparedQuery {
    let t = translator();
    let parsed = stage1::parse(sql).unwrap();
    prepare(&parsed, t.metadata()).unwrap_or_else(|e| panic!("prepare failed: {e}\nsql: {sql}"))
}

fn prepare_err(sql: &str) -> aldsp_core::TranslateError {
    let t = translator();
    let parsed = stage1::parse(sql).unwrap();
    prepare(&parsed, t.metadata()).expect_err(&format!("expected rejection: {sql}"))
}

// ---- type inference (paper §3.5 (v)) ----------------------------------

#[test]
fn arithmetic_promotion_lattice() {
    let q = prepared("SELECT I + I, I + D, D + R, I * 2, D / 2 FROM T");
    let types: Vec<_> = q.output.iter().map(|o| o.sql_type).collect();
    assert_eq!(
        types,
        vec![
            Some(SqlColumnType::Integer),
            Some(SqlColumnType::Decimal),
            Some(SqlColumnType::Real),
            Some(SqlColumnType::Integer),
            Some(SqlColumnType::Decimal),
        ]
    );
}

#[test]
fn aggregate_result_types() {
    let q = prepared("SELECT COUNT(*), COUNT(S), SUM(I), SUM(D), AVG(I), AVG(R), MIN(S) FROM T");
    let types: Vec<_> = q.output.iter().map(|o| o.sql_type).collect();
    assert_eq!(
        types,
        vec![
            Some(SqlColumnType::Bigint),
            Some(SqlColumnType::Bigint),
            Some(SqlColumnType::Integer),
            Some(SqlColumnType::Decimal),
            Some(SqlColumnType::Decimal),
            Some(SqlColumnType::Double),
            Some(SqlColumnType::Varchar),
        ]
    );
    // COUNT never NULL; SUM/MIN may be.
    assert!(!q.output[0].nullable);
    assert!(q.output[2].nullable);
}

#[test]
fn nullability_propagates_through_expressions() {
    let q = prepared("SELECT I + 1, D + 1, COALESCE(D, 0.0), S || 'x', UPPER(S) FROM T");
    let nullable: Vec<_> = q.output.iter().map(|o| o.nullable).collect();
    // I NOT NULL + literal → NOT NULL; D nullable → nullable;
    // COALESCE(D, literal) → NOT NULL; || and UPPER over nullable →
    // nullable.
    assert_eq!(nullable, vec![false, true, false, true, true]);
}

#[test]
fn case_type_from_first_typed_branch() {
    let q = prepared("SELECT CASE WHEN I > 0 THEN D ELSE NULL END FROM T");
    assert_eq!(q.output[0].sql_type, Some(SqlColumnType::Decimal));
    assert!(q.output[0].nullable);
}

#[test]
fn cast_pins_type() {
    let q = prepared("SELECT CAST(S AS INTEGER), CAST(I AS VARCHAR(5)) FROM T");
    assert_eq!(q.output[0].sql_type, Some(SqlColumnType::Integer));
    assert_eq!(q.output[1].sql_type, Some(SqlColumnType::Varchar));
}

// ---- output naming -----------------------------------------------------

#[test]
fn output_names_qualify_plain_columns() {
    let q = prepared("SELECT I, D X, I * 2 FROM T");
    assert_eq!(q.output[0].name, "T.I");
    assert_eq!(q.output[0].label, "I");
    assert_eq!(q.output[1].name, "X");
    assert_eq!(q.output[2].label, "EXPR3");
}

#[test]
fn duplicate_output_names_uniquified() {
    let q = prepared("SELECT I, I FROM T");
    assert_eq!(q.output[0].name, "T.I");
    assert_ne!(q.output[1].name, "T.I");
    assert_eq!(q.output[1].label, "I"); // label stays what JDBC reports
}

#[test]
fn alias_shadows_qualification() {
    let q = prepared("SELECT A.I FROM T A");
    assert_eq!(q.output[0].name, "A.I");
}

// ---- resolution & validation -------------------------------------------

#[test]
fn unqualified_ambiguity_across_tables() {
    let err = prepare_err("SELECT I FROM T, U");
    assert!(err.message.contains("ambiguous"), "{err}");
}

#[test]
fn qualified_reference_disambiguates() {
    let q = prepared("SELECT T.I, U.I FROM T, U");
    assert_eq!(q.output.len(), 2);
}

#[test]
fn correlated_resolution_reaches_outer_scope() {
    // U.X resolves inside the subquery; T.I correlates outward.
    prepared("SELECT I FROM T WHERE EXISTS (SELECT X FROM U WHERE U.I = T.I)");
}

#[test]
fn derived_table_cannot_see_siblings() {
    let err = prepare_err("SELECT * FROM T, (SELECT X FROM U WHERE U.I = T.I) AS V");
    assert!(err.message.contains("unknown column"), "{err}");
}

#[test]
fn group_by_rule_on_having() {
    let err = prepare_err("SELECT I FROM T GROUP BY I HAVING D > 1");
    assert!(err.message.contains("GROUP BY"), "{err}");
}

#[test]
fn group_by_expression_match_is_structural() {
    // `I + 1` in the projection matches the key `I + 1`.
    prepared("SELECT I + 1 FROM T GROUP BY I + 1");
    // But `1 + I` does not (structural, not algebraic, equality).
    let err = prepare_err("SELECT 1 + I FROM T GROUP BY I + 1");
    assert!(err.message.contains("GROUP BY"), "{err}");
}

#[test]
fn aggregates_rejected_in_where_and_on() {
    let err = prepare_err("SELECT I FROM T WHERE COUNT(*) > 1");
    assert!(err.message.contains("aggregate"), "{err}");
    let err = prepare_err("SELECT T.I FROM T INNER JOIN U ON COUNT(*) = 1");
    assert!(err.message.contains("aggregate"), "{err}");
}

#[test]
fn nested_aggregates_rejected() {
    let err = prepare_err("SELECT SUM(COUNT(*)) FROM T");
    assert!(err.message.contains("aggregate"), "{err}");
}

#[test]
fn subquery_column_counts_enforced() {
    let err = prepare_err("SELECT I FROM T WHERE I IN (SELECT I, X FROM U)");
    assert!(err.message.contains("column"), "{err}");
    let err = prepare_err("SELECT I FROM T WHERE I = (SELECT I, X FROM U)");
    assert!(err.message.contains("column"), "{err}");
}

#[test]
fn order_by_ordinal_bounds_checked() {
    let err = prepare_err("SELECT I FROM T ORDER BY 2");
    assert!(err.message.contains("ordinal"), "{err}");
    let err = prepare_err("SELECT I FROM T ORDER BY 0");
    assert!(err.message.contains("ordinal"), "{err}");
}

#[test]
fn order_by_matches_select_item_expression() {
    let q = prepared("SELECT I * 2 FROM T ORDER BY I * 2 DESC");
    assert_eq!(q.order_by.len(), 1);
    assert_eq!(q.order_by[0].column, 0);
    assert!(!q.order_by[0].ascending);
}

#[test]
fn set_op_output_merges_nullability_and_types() {
    let q = prepared("SELECT I FROM T UNION SELECT I FROM U");
    assert_eq!(q.output[0].sql_type, Some(SqlColumnType::Integer));
    // SMALLINT/DECIMAL promotion across sides:
    let q = prepared("SELECT I FROM T UNION SELECT D FROM T");
    assert_eq!(q.output[0].sql_type, Some(SqlColumnType::Decimal));
    assert!(q.output[0].nullable); // D side is nullable
}

#[test]
fn context_ids_assigned_in_document_order() {
    let q = prepared("SELECT V.A FROM (SELECT I A FROM T) AS V WHERE V.A IN (SELECT I FROM U)");
    let PreparedBody::Select(outer) = &q.body else {
        panic!()
    };
    assert_eq!(outer.ctx_id, 1);
    // The derived table is ctx 2 (FROM is traversed before WHERE).
    let aldsp_core::Rsn::Derived { query, .. } = &outer.from[0] else {
        panic!()
    };
    let PreparedBody::Select(inner) = &query.body else {
        panic!()
    };
    assert_eq!(inner.ctx_id, 2);
}

#[test]
fn unknown_scalar_function_unsupported() {
    let t = translator();
    let err = t
        .translate("SELECT FROBNICATE(I) FROM T", TranslationOptions::default())
        .unwrap_err();
    assert!(err.message.contains("FROBNICATE"), "{err}");
}
