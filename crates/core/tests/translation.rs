//! Translator integration tests: paper-example golden checks (E5 in
//! EXPERIMENTS.md) plus semantic-rejection tests. Execution-level
//! differential tests live in the workspace-level `tests/` (they need the
//! XQuery engine and the relational oracle).

use aldsp_catalog::{
    metadata::MetadataApi, ApplicationBuilder, CachedMetadataApi, InProcessMetadataApi,
    SqlColumnType, TableLocator,
};
use aldsp_core::{TranslationOptions, Translator, Transport};

/// The paper's universe: CUSTOMERS, PAYMENTS, ORDERS, PO_CUSTOMERS.
/// Name columns are NOT NULL here so golden output matches the paper's
/// unconditional element constructors.
fn translator() -> Translator<CachedMetadataApi<InProcessMetadataApi>> {
    let app = ApplicationBuilder::new("TESTAPP")
        .project("TestDataServices")
        .data_service("CUSTOMERS")
        .physical_table("CUSTOMERS", |t| {
            t.column("CUSTOMERID", SqlColumnType::Integer, false)
                .column("CUSTOMERNAME", SqlColumnType::Varchar, false)
        })
        .finish_service()
        .data_service("PAYMENTS")
        .physical_table("PAYMENTS", |t| {
            t.column("CUSTID", SqlColumnType::Integer, false).column(
                "PAYMENT",
                SqlColumnType::Decimal,
                false,
            )
        })
        .finish_service()
        .data_service("ORDERS")
        .physical_table("ORDERS", |t| {
            t.column("ORDERID", SqlColumnType::Integer, false)
                .column("CUSTID", SqlColumnType::Integer, false)
                .column("AMOUNT", SqlColumnType::Decimal, true)
        })
        .finish_service()
        .data_service("PO_CUSTOMERS")
        .physical_table("PO_CUSTOMERS", |t| {
            t.column("ORDERID", SqlColumnType::Integer, false)
                .column("CUSTOMERID", SqlColumnType::Integer, false)
                .column("CUSTOMERNAME", SqlColumnType::Varchar, false)
        })
        .finish_service()
        .finish_project()
        .build();
    let locator = TableLocator::for_application(&app);
    Translator::new(CachedMetadataApi::new(InProcessMetadataApi::new(locator)))
}

fn xml_query(sql: &str) -> String {
    translator()
        .translate(sql, TranslationOptions::with_transport(Transport::Xml))
        .unwrap_or_else(|e| panic!("translation failed for `{sql}`: {e}"))
        .xquery
}

fn text_query(sql: &str) -> String {
    translator()
        .translate(
            sql,
            TranslationOptions::with_transport(Transport::DelimitedText),
        )
        .unwrap()
        .xquery
}

// ---- paper golden examples ------------------------------------------

#[test]
fn example5_6_simple_select_star() {
    // Paper Examples 5/6: SELECT * FROM CUSTOMERS.
    let q = xml_query("SELECT * FROM CUSTOMERS");
    assert!(
        q.contains("import schema namespace ns0 = \"ld:TestDataServices/CUSTOMERS\" at \"ld:TestDataServices/schemas/CUSTOMERS.xsd\";"),
        "prolog import missing:\n{q}"
    );
    assert!(q.contains("for $var1FR0 in ns0:CUSTOMERS()"), "{q}");
    assert!(
        q.contains("<CUSTOMERS.CUSTOMERID>{fn:data($var1FR0/CUSTOMERID)}</CUSTOMERS.CUSTOMERID>"),
        "{q}"
    );
    assert!(q.starts_with("import schema"), "{q}");
    assert!(q.contains("<RECORDSET>{"), "{q}");
}

#[test]
fn aliases_rename_output_elements() {
    // Paper §3.5: SELECT CUSTOMERID ID, CUSTOMERNAME NAME FROM CUSTOMERS.
    let q = xml_query("SELECT CUSTOMERID ID, CUSTOMERNAME NAME FROM CUSTOMERS");
    assert!(q.contains("<ID>{fn:data($var1FR0/CUSTOMERID)}</ID>"), "{q}");
    assert!(
        q.contains("<NAME>{fn:data($var1FR0/CUSTOMERNAME)}</NAME>"),
        "{q}"
    );
}

#[test]
fn example7_8_subquery_via_let() {
    // Paper Example 7 → 8: derived table becomes a let-bound RECORDSET.
    let q = xml_query(
        "SELECT INFO.ID, INFO.NAME FROM (SELECT CUSTOMERID ID, CUSTOMERNAME NAME \
         FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10",
    );
    assert!(q.contains("let $tempvar1FR0 :="), "{q}");
    assert!(q.contains("for $var1FR1 in $tempvar1FR0/RECORD"), "{q}");
    // Inner query builds ID/NAME records.
    assert!(q.contains("<ID>{fn:data($var2FR0/CUSTOMERID)}</ID>"), "{q}");
    // The paper's where pattern: path compared against a cast literal.
    assert!(q.contains("where ($var1FR1/ID>xs:integer(10))"), "{q}");
    // Outer projection uses qualified output names.
    assert!(
        q.contains("<INFO.ID>{fn:data($var1FR1/ID)}</INFO.ID>"),
        "{q}"
    );
    assert!(
        q.contains("<INFO.NAME>{fn:data($var1FR1/NAME)}</INFO.NAME>"),
        "{q}"
    );
}

#[test]
fn example9_10_left_outer_join() {
    // Paper Example 9 → 10.
    let q = xml_query(
        "SELECT CUSTOMERS.CUSTOMERID, PAYMENTS.PAYMENT FROM CUSTOMERS \
         LEFT OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID=PAYMENTS.CUSTID",
    );
    // Two schema imports.
    assert!(q.contains("import schema namespace ns0"), "{q}");
    assert!(q.contains("import schema namespace ns1"), "{q}");
    // The filtered-let pattern with a relative path for the right side.
    assert!(
        q.contains("ns1:PAYMENTS()[($var1FR0/CUSTOMERID=CUSTID)]"),
        "{q}"
    );
    // The if-empty arms.
    assert!(q.contains("if (fn:empty($tempvar1FR1)) then"), "{q}");
    assert!(
        q.contains("<CUSTOMERS.CUSTOMERID>{fn:data($var1FR0/CUSTOMERID)}</CUSTOMERS.CUSTOMERID>"),
        "{q}"
    );
    // Matched rows add payment columns.
    assert!(q.contains("<PAYMENTS.PAYMENT>"), "{q}");
    // The view is iterated as RECORD rows by the outer query.
    assert!(q.contains("/RECORD"), "{q}");
}

#[test]
fn inner_join_is_double_for() {
    // Paper §3.4.2 / Example 12: inner joins become a double for + where.
    let q = xml_query(
        "SELECT * FROM CUSTOMERS INNER JOIN PO_CUSTOMERS \
         ON CUSTOMERS.CUSTOMERID = PO_CUSTOMERS.CUSTOMERID",
    );
    assert!(q.contains("for $var1FR0 in ns0:CUSTOMERS()"), "{q}");
    assert!(q.contains("for $var1FR1 in ns1:PO_CUSTOMERS()"), "{q}");
    assert!(
        q.contains("where ($var1FR0/CUSTOMERID=$var1FR1/CUSTOMERID)"),
        "{q}"
    );
}

#[test]
fn example11_12_group_by_with_aggregates() {
    // Paper Example 11 → 12: grouping via the BEA extension.
    let q = xml_query(
        "SELECT PO_CUSTOMERS.CUSTOMERID, COUNT(PO_CUSTOMERS.ORDERID) \
         FROM CUSTOMERS INNER JOIN PO_CUSTOMERS \
         ON CUSTOMERS.CUSTOMERID = PO_CUSTOMERS.CUSTOMERID \
         GROUP BY PO_CUSTOMERS.CUSTOMERID \
         ORDER BY PO_CUSTOMERS.CUSTOMERID",
    );
    assert!(q.contains("let $inter1 :="), "{q}");
    assert!(q.contains("for $varNewlet1 in $inter1/RECORD"), "{q}");
    assert!(q.contains("group $varNewlet1 as $var1Partition1 by"), "{q}");
    assert!(q.contains("as $var1GB1"), "{q}");
    assert!(q.contains("fn:count("), "{q}");
    // Ordering wrapper sorts the output rows.
    assert!(q.contains("order by"), "{q}");
}

#[test]
fn section4_text_transport_wrapper() {
    // Paper §4: the string-join wrapper.
    let q = text_query("SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS");
    assert!(q.contains("fn:string-join(("), "{q}");
    assert!(q.contains("let $actualQuery :="), "{q}");
    assert!(q.contains("for $tokenQuery in $actualQuery/RECORD"), "{q}");
    assert!(
        q.contains("fn-bea:if-empty(fn-bea:xml-escape(fn-bea:serialize-atomic(fn:data($tokenQuery/CUSTOMERS.CUSTOMERID)))"),
        "{q}"
    );
    // Column separator before each value, row separator at end.
    assert!(q.contains("\">\","), "{q}");
    assert!(q.contains("\"<\")), \"\")"), "{q}");
}

// ---- structure for other constructs -----------------------------------

#[test]
fn distinct_uses_distinct_records() {
    let q = xml_query("SELECT DISTINCT CUSTID FROM PAYMENTS");
    assert!(q.contains("fn-bea:distinct-records("), "{q}");
}

#[test]
fn order_by_wraps_with_casts() {
    let q = xml_query("SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERID DESC");
    assert!(
        q.contains("order by xs:integer($var1OB1/CUSTOMERS.CUSTOMERID) descending"),
        "{q}"
    );
}

#[test]
fn union_and_except_generate_record_helpers() {
    let q = xml_query("SELECT CUSTID FROM PAYMENTS UNION SELECT CUSTID FROM ORDERS");
    assert!(q.contains("fn-bea:distinct-records(("), "{q}");
    let q = xml_query("SELECT CUSTID FROM PAYMENTS EXCEPT ALL SELECT CUSTID FROM ORDERS");
    assert!(q.contains("fn-bea:except-all-records("), "{q}");
}

#[test]
fn in_subquery_and_exists() {
    let q = xml_query(
        "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS) \
         AND EXISTS (SELECT ORDERID FROM ORDERS WHERE ORDERS.CUSTID = CUSTOMERS.CUSTOMERID)",
    );
    assert!(q.contains("/RECORD/PAYMENTS.CUSTID)"), "{q}");
    assert!(q.contains("fn:exists("), "{q}");
    // Correlated reference to the outer row variable inside EXISTS.
    assert!(q.contains("$var1FR0/CUSTOMERID"), "{q}");
}

#[test]
fn like_and_functions_map() {
    let q = xml_query("SELECT UPPER(CUSTOMERNAME) FROM CUSTOMERS WHERE CUSTOMERNAME LIKE 'S%'");
    assert!(q.contains("fn:upper-case("), "{q}");
    assert!(
        q.contains("fn-bea:sql-like($var1FR0/CUSTOMERNAME, \"S%\")"),
        "{q}"
    );
}

#[test]
fn nullable_columns_construct_conditionally() {
    // AMOUNT is nullable: the result element must be constructed
    // conditionally so NULL stays an absent element.
    let q = xml_query("SELECT AMOUNT FROM ORDERS");
    assert!(
        q.contains("for $var1SL0 in fn:data($var1FR0/AMOUNT) return <ORDERS.AMOUNT>{$var1SL0}</ORDERS.AMOUNT>"),
        "{q}"
    );
}

#[test]
fn integer_division_gets_idiv_cast() {
    let q = xml_query("SELECT CUSTOMERID / 2 FROM CUSTOMERS");
    assert!(q.contains("xs:integer(("), "{q}");
    assert!(q.contains("idiv"), "{q}");
}

#[test]
fn parameters_become_external_variables() {
    let t = translator();
    let result = t
        .translate(
            "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID > ? AND CUSTOMERNAME = ?",
            TranslationOptions::default(),
        )
        .unwrap();
    assert_eq!(result.parameter_count, 2);
    assert!(result.xquery.contains("$sqlParam1"), "{}", result.xquery);
    assert!(result.xquery.contains("$sqlParam2"), "{}", result.xquery);
}

#[test]
fn result_metadata_reports_types() {
    let t = translator();
    let result = t
        .translate(
            "SELECT CUSTOMERID, CUSTOMERNAME NM, COUNT(*) FROM CUSTOMERS GROUP BY \
             CUSTOMERID, CUSTOMERNAME",
            TranslationOptions::default(),
        )
        .unwrap();
    assert_eq!(result.columns.len(), 3);
    assert_eq!(result.columns[0].label, "CUSTOMERID");
    assert_eq!(result.columns[0].sql_type, Some(SqlColumnType::Integer));
    assert_eq!(result.columns[1].label, "NM");
    assert_eq!(result.columns[2].sql_type, Some(SqlColumnType::Bigint));
    assert!(!result.columns[2].nullable);
}

// ---- rejection ---------------------------------------------------------

#[test]
fn unknown_table_rejected() {
    let t = translator();
    let err = t
        .translate("SELECT * FROM NO_SUCH", TranslationOptions::default())
        .unwrap_err();
    assert!(err.message.contains("NO_SUCH"), "{err}");
}

#[test]
fn unknown_column_rejected() {
    let t = translator();
    let err = t
        .translate("SELECT NOPE FROM CUSTOMERS", TranslationOptions::default())
        .unwrap_err();
    assert!(err.message.contains("NOPE"), "{err}");
}

#[test]
fn ambiguous_column_rejected() {
    let t = translator();
    let err = t
        .translate(
            "SELECT CUSTID FROM PAYMENTS, ORDERS",
            TranslationOptions::default(),
        )
        .unwrap_err();
    assert!(err.message.contains("ambiguous"), "{err}");
}

#[test]
fn group_by_rule_enforced() {
    // Paper §3.4.3: semantically incorrect despite valid syntax.
    let t = translator();
    let err = t
        .translate(
            "SELECT CUSTOMERID FROM CUSTOMERS GROUP BY CUSTOMERNAME",
            TranslationOptions::default(),
        )
        .unwrap_err();
    assert!(err.message.contains("GROUP BY"), "{err}");
}

#[test]
fn syntax_error_rejected_with_offset() {
    let t = translator();
    let err = t
        .translate("SELECT * FORM CUSTOMERS", TranslationOptions::default())
        .unwrap_err();
    assert!(err.offset.is_some(), "{err}");
}

#[test]
fn duplicate_range_variables_rejected() {
    let t = translator();
    assert!(t
        .translate(
            "SELECT * FROM CUSTOMERS, CUSTOMERS",
            TranslationOptions::default()
        )
        .is_err());
}

#[test]
fn set_op_arity_mismatch_rejected() {
    let t = translator();
    assert!(t
        .translate(
            "SELECT CUSTID FROM PAYMENTS UNION SELECT CUSTID, PAYMENT FROM PAYMENTS",
            TranslationOptions::default()
        )
        .is_err());
}

#[test]
fn order_by_non_output_column_rejected() {
    let t = translator();
    assert!(t
        .translate(
            "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY NO_SUCH",
            TranslationOptions::default()
        )
        .is_err());
}

#[test]
fn metadata_round_trips_are_cached() {
    let t = translator();
    t.translate("SELECT * FROM CUSTOMERS", TranslationOptions::default())
        .unwrap();
    t.translate("SELECT * FROM CUSTOMERS", TranslationOptions::default())
        .unwrap();
    // One fetch, one cache hit.
    assert_eq!(t.metadata().inner().round_trips(), 1);
    assert_eq!(t.metadata().stats().hits, 1);
}

#[test]
fn stage_timings_populated() {
    let t = translator();
    let result = t
        .translate("SELECT * FROM CUSTOMERS", TranslationOptions::default())
        .unwrap();
    // Stages actually ran (wall-clock may legitimately round to zero, so
    // just check the struct is plumbed; generation of this query must
    // produce nonempty output).
    assert!(!result.xquery.is_empty());
    let _ = result.timings;
}
