//! A logical data service — the paper's integration story (§2): "XQuery
//! can be used … to define new functions for higher-level views (logical
//! data services) that transform and integrate data from one or more of
//! the physical data services."
//!
//! Here a hand-written XQuery function integrates CUSTOMERS and PAYMENTS
//! into one flat `CUSTOMER_BALANCE` view; the JDBC driver then presents
//! that view as an ordinary SQL table (§2.3: flat functions are
//! presentable "as is").
//!
//! ```sh
//! cargo run --example logical_data_service
//! ```

use aldsp::catalog::{ApplicationBuilder, SqlColumnType};
use aldsp::driver::{Connection, DspServer};
use aldsp::relational::{Database, SqlValue, Table};
use std::sync::Arc;

fn main() {
    // The logical function's body: per customer, the sum of payments.
    // (This is developer-authored XQuery, not translator output.)
    let balance_body = r#"
import schema namespace c = "ld:Services/CUSTOMERS" at "ld:Services/schemas/CUSTOMERS.xsd";
import schema namespace p = "ld:Services/PAYMENTS" at "ld:Services/schemas/PAYMENTS.xsd";
for $cust in c:CUSTOMERS()
let $paid := p:PAYMENTS()[(xs:integer($cust/CUSTOMERID) = xs:integer(CUSTID))]
return
<CUSTOMER_BALANCE>
  <CUSTOMERID>{fn:data($cust/CUSTOMERID)}</CUSTOMERID>
  { for $n in fn:data($cust/CUSTOMERNAME) return <CUSTOMERNAME>{$n}</CUSTOMERNAME> }
  <BALANCE>{
    (let $vals := for $pp in $paid return xs:decimal(fn:data($pp/PAYMENT))
     return if (fn:empty($vals)) then 0.0 else fn:sum($vals))
  }</BALANCE>
</CUSTOMER_BALANCE>"#;

    let app = ApplicationBuilder::new("IntegrationApp")
        .project("Services")
        .data_service("CUSTOMERS")
        .physical_table("CUSTOMERS", |t| {
            t.column("CUSTOMERID", SqlColumnType::Integer, false)
                .column("CUSTOMERNAME", SqlColumnType::Varchar, true)
        })
        .finish_service()
        .data_service("PAYMENTS")
        .physical_table("PAYMENTS", |t| {
            t.column("CUSTID", SqlColumnType::Integer, false).column(
                "PAYMENT",
                SqlColumnType::Decimal,
                false,
            )
        })
        .finish_service()
        .data_service("CUSTOMER_BALANCE")
        .logical_table("CUSTOMER_BALANCE", balance_body, |t| {
            t.column("CUSTOMERID", SqlColumnType::Integer, false)
                .column("CUSTOMERNAME", SqlColumnType::Varchar, true)
                .column("BALANCE", SqlColumnType::Decimal, false)
        })
        .finish_service()
        .finish_project()
        .build();

    // Show the .ds file the platform would hold for the logical service.
    let logical_ds = &app.projects[0].data_services[2];
    println!("--- CUSTOMER_BALANCE.ds (developer-authored) ---");
    println!("{}", logical_ds.render_ds_file("Services"));

    // Physical data.
    let mut db = Database::new();
    let customers_schema = app.projects[0].data_services[0].functions[0].schema.clone();
    let payments_schema = app.projects[0].data_services[1].functions[0].schema.clone();
    let mut customers = Table::new(customers_schema);
    for (id, name) in [(55, Some("Joe")), (23, Some("Sue")), (7, None)] {
        customers.insert(vec![
            SqlValue::Int(id),
            name.map(|n| SqlValue::Str(n.into()))
                .unwrap_or(SqlValue::Null),
        ]);
    }
    db.add_table(customers);
    let mut payments = Table::new(payments_schema);
    for (cid, p) in [(55, 100.0), (23, 50.0), (23, 25.0)] {
        payments.insert(vec![SqlValue::Int(cid), SqlValue::Decimal(p)]);
    }
    db.add_table(payments);

    // SQL over the logical view — three layers deep: SQL → translated
    // XQuery → logical service body → physical functions.
    let conn = Connection::open(Arc::new(DspServer::new(app, db)));
    let mut rs = conn
        .create_statement()
        .execute_query(
            "SELECT CUSTOMERID, CUSTOMERNAME, BALANCE FROM CUSTOMER_BALANCE \
             WHERE BALANCE > 0 ORDER BY BALANCE DESC",
        )
        .expect("query over logical service");

    println!("--- SELECT over the logical view ---");
    println!(
        "{:<12} {:<14} {:>8}",
        "CUSTOMERID", "CUSTOMERNAME", "BALANCE"
    );
    while rs.next() {
        println!(
            "{:<12} {:<14} {:>8.2}",
            rs.get_i64(1).unwrap(),
            rs.get_string(2).unwrap().unwrap_or_else(|| "(null)".into()),
            rs.get_f64(3).unwrap()
        );
    }
}
