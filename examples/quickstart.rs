//! Quickstart: define a data-service application, load data, and query it
//! with SQL through the JDBC-style driver.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use aldsp::catalog::{ApplicationBuilder, SqlColumnType};
use aldsp::driver::{Connection, DspServer};
use aldsp::relational::{Database, SqlValue, Table};
use std::sync::Arc;

fn main() {
    // 1. Declare the DSP application: one project, one data service whose
    //    parameterless function is presented as the SQL table CUSTOMERS
    //    (the paper's Figure-2 artifact mapping).
    let app = ApplicationBuilder::new("QuickstartApp")
        .project("TestDataServices")
        .data_service("CUSTOMERS")
        .physical_table("CUSTOMERS", |t| {
            t.column("CUSTOMERID", SqlColumnType::Integer, false)
                .column("CUSTOMERNAME", SqlColumnType::Varchar, true)
        })
        .finish_service()
        .finish_project()
        .build();

    // 2. Load the physical data backing the data service.
    let mut db = Database::new();
    let schema = app.projects[0].data_services[0].functions[0].schema.clone();
    let mut table = Table::new(schema);
    for (id, name) in [(55, Some("Joe")), (23, Some("Sue")), (7, None)] {
        table.insert(vec![
            SqlValue::Int(id),
            name.map(|n| SqlValue::Str(n.into()))
                .unwrap_or(SqlValue::Null),
        ]);
    }
    db.add_table(table);

    // 3. Connect and query with plain SQL-92. Under the hood the driver
    //    translates to XQuery, executes it against the data service, and
    //    decodes the delimited-text result transport.
    let server = Arc::new(DspServer::new(app, db));
    let conn = Connection::open(Arc::clone(&server));

    let sql = "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS \
               WHERE CUSTOMERID > 10 ORDER BY CUSTOMERID";
    println!("SQL:\n  {sql}\n");

    // Peek at the generated XQuery (what the driver ships to the server).
    let translation = conn.create_statement().explain(sql).unwrap();
    println!("Generated XQuery:\n{}\n", translation.xquery);

    let mut rs = conn.create_statement().execute_query(sql).unwrap();
    println!("Results:");
    println!(
        "  {:<12} {}",
        rs.meta().column_label(1).unwrap(),
        rs.meta().column_label(2).unwrap()
    );
    while rs.next() {
        let id = rs.get_i64(1).unwrap();
        let name = rs.get_string(2).unwrap();
        println!("  {:<12} {}", id, name.as_deref().unwrap_or("(null)"));
    }
}
