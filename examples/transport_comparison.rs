//! The §4 experiment in miniature: ship the same result set as serialized
//! XML (materialize-and-parse) and as delimited text, and compare payload
//! sizes and end-to-end time. This is a demonstration; the rigorous sweep
//! is `cargo bench -p aldsp-bench` (E1) and the harness binary.
//!
//! ```sh
//! cargo run --release --example transport_comparison
//! ```

use aldsp::core::{TranslationOptions, Transport};
use aldsp::driver::{Connection, DspServer};
use aldsp::workload::{build_application, populate_database, Scale};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let sql = "SELECT CUSTOMERID, CUSTOMERNAME, REGION, CREDIT FROM CUSTOMERS";
    println!("query: {sql}\n");
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>10}",
        "rows", "xml bytes", "text bytes", "xml ms", "text ms"
    );

    for customers in [100usize, 1_000, 10_000] {
        let app = build_application();
        let db = populate_database(&app, Scale::of(customers), 7);
        let server = Arc::new(DspServer::new(app, db));

        let mut measurements = Vec::new();
        for transport in [Transport::Xml, Transport::DelimitedText] {
            let conn = Connection::open_with(
                Arc::clone(&server),
                TranslationOptions::with_transport(transport),
                std::time::Duration::ZERO,
            );
            // Warm the server-side materialization cache so we measure
            // transport cost, not table scans.
            conn.create_statement().execute_query(sql).unwrap();
            server.reset_stats();

            let start = Instant::now();
            let rs = conn.create_statement().execute_query(sql).unwrap();
            let elapsed = start.elapsed();
            let bytes = server.stats().bytes_shipped;
            measurements.push((rs.row_count(), bytes, elapsed));
        }
        let (rows, xml_bytes, xml_time) = measurements[0];
        let (_, text_bytes, text_time) = measurements[1];
        println!(
            "{:>10} {:>14} {:>14} {:>12.2} {:>10.2}",
            rows,
            xml_bytes,
            text_bytes,
            xml_time.as_secs_f64() * 1e3,
            text_time.as_secs_f64() * 1e3,
        );
    }

    println!(
        "\nThe delimited-text transport ships fewer bytes (no element markup\n\
         per value) and skips XML re-parsing in the driver — the effect the\n\
         paper reports as 'measurably improved' (§4)."
    );
}
