//! A miniature SQL reporting tool — the paper's motivating client (§1:
//! "notably reporting tools such as Crystal Reports or Business Objects").
//!
//! The tool knows nothing about XQuery or data services. It (1) discovers
//! catalogs/schemas/tables/columns through `DatabaseMetaData`, (2) builds
//! a parameterized report query, and (3) renders the result set — exactly
//! the flow a JDBC reporting tool performs.
//!
//! ```sh
//! cargo run --example reporting_tool
//! ```

use aldsp::driver::{Connection, DatabaseMetaData, DspServer};
use aldsp::relational::SqlValue;
use aldsp::workload::{build_application, populate_database, Scale};
use std::sync::Arc;

fn main() {
    // Server side: the workload universe at a small scale.
    let app = build_application();
    let db = populate_database(&app, Scale::of(40), 2026);
    let server = Arc::new(DspServer::new(app, db));

    // --- 1. metadata discovery (tool connect time) -----------------
    let meta = DatabaseMetaData::new(&server);
    println!("catalog: {}", meta.catalogs()[0]);
    for schema in meta.schemas() {
        println!("schema:  {schema}");
    }
    for table in meta.tables(None) {
        let columns: Vec<String> = meta
            .columns(&table.table)
            .iter()
            .map(|c| {
                format!(
                    "{} {}{}",
                    c.column,
                    c.sql_type.sql_name(),
                    if c.nullable { "" } else { " NOT NULL" }
                )
            })
            .collect();
        println!("table:   {} ({})", table.table, columns.join(", "));
    }

    // --- 2. the report: revenue by region for big customers --------
    let conn = Connection::open(Arc::clone(&server));
    let mut report = conn
        .prepare(
            "SELECT CUSTOMERS.REGION, COUNT(ORDERS.ORDERID) NUM_ORDERS, \
             SUM(ORDERS.AMOUNT) REVENUE \
             FROM CUSTOMERS INNER JOIN ORDERS \
             ON CUSTOMERS.CUSTOMERID = ORDERS.CUSTID \
             WHERE ORDERS.AMOUNT > ? \
             GROUP BY CUSTOMERS.REGION \
             ORDER BY CUSTOMERS.REGION",
        )
        .expect("report query translates");

    for threshold in [0, 250] {
        report.set(1, SqlValue::Int(threshold)).unwrap();
        let mut rs = report.execute_query().expect("report executes");

        println!("\n=== Revenue by region (orders over {threshold}) ===");
        println!("{:<8} {:>10} {:>12}", "REGION", "ORDERS", "REVENUE");
        while rs.next() {
            let region = rs.get_string(1).unwrap().unwrap_or_default();
            let orders = rs.get_i64(2).unwrap();
            let revenue = rs.get_f64(3).unwrap();
            let revenue_text = if rs.was_null() {
                "(null)".to_string()
            } else {
                format!("{revenue:.2}")
            };
            println!("{region:<8} {orders:>10} {revenue_text:>12}");
        }
    }

    // --- 3. a drill-down with NULL handling --------------------------
    let mut rs = conn
        .create_statement()
        .execute_query(
            "SELECT CUSTOMERID, COALESCE(CUSTOMERNAME, '(unnamed)') NAME, CREDIT \
             FROM CUSTOMERS WHERE CREDIT IS NOT NULL ORDER BY CREDIT DESC",
        )
        .unwrap();
    println!("\n=== Top customers by credit ===");
    let mut shown = 0;
    while rs.next() && shown < 5 {
        println!(
            "#{:<4} {:<20} {:>10.2}",
            rs.get_i64(1).unwrap(),
            rs.get_string(2).unwrap().unwrap(),
            rs.get_f64(3).unwrap()
        );
        shown += 1;
    }
}
