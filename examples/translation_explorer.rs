//! Translation explorer: prints the generated XQuery for each of the
//! paper's worked examples, plus the `.ds` and `.xsd` artifacts the
//! platform would hold for the data services involved (paper Example 2).
//!
//! ```sh
//! cargo run --example translation_explorer
//! ```

use aldsp::catalog::{CachedMetadataApi, InProcessMetadataApi, TableLocator};
use aldsp::core::{TranslationOptions, Translator, Transport};
use aldsp::workload::{build_application, paper_queries};

fn main() {
    let app = build_application();

    // The artifacts a data-service developer sees (paper §3.1).
    println!("===== data service artifacts =====");
    for project in &app.projects {
        for ds in &project.data_services {
            println!("--- {}.ds ---", ds.path_within(&project.name));
            println!("{}", ds.render_ds_file(&project.name));
        }
    }
    if let Some((project, ds, f)) = app.functions().next() {
        let _ = (project, ds);
        println!("--- {}.xsd ---", f.schema.row_element);
        println!("{}", f.schema.render_xsd());
    }

    let locator = TableLocator::for_application(&app);
    let translator = Translator::new(CachedMetadataApi::new(InProcessMetadataApi::new(locator)));

    println!("===== SQL → XQuery (XML transport) =====");
    for (name, sql) in paper_queries() {
        let translation = translator
            .translate(sql, TranslationOptions::with_transport(Transport::Xml))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        println!("--- {name} ---");
        println!("SQL:    {sql}");
        println!(
            "stages: parse {:?}, prepare {:?}, generate {:?}",
            translation.timings.parse, translation.timings.prepare, translation.timings.generate
        );
        println!("XQuery:\n{}\n", translation.xquery);
    }

    println!("===== SQL → XQuery (§4 delimited-text transport) =====");
    let (_, sql) = paper_queries()[1];
    let translation = translator
        .translate(sql, TranslationOptions::default())
        .unwrap();
    println!("SQL:    {sql}");
    println!("XQuery:\n{}", translation.xquery);
}
